//! Chaos integration tests: the serving stack under injected faults.
//!
//! Every test runs the same workload twice — fault-free and with a
//! deterministic [`FaultInjector`] — and asserts the strongest property
//! recovery must preserve: **faults change timing and counters, never
//! results**. Requests all complete (or fail with a typed error; nothing
//! hangs), and token counts/outputs are identical to the fault-free run.
//!
//! The fault seed defaults to 1 and can be overridden with the
//! `PENSIEVE_FAULT_SEED` environment variable; CI sweeps several seeds.

use pensieve_core::workers::ThreadedTpEngine;
use pensieve_core::{EngineConfig, RecoveryPolicy, SimServingEngine, WorkerError};
use pensieve_kernels::model::TinyModel;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration};
use pensieve_sim::{FaultConfig, FaultInjector};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::{run_closed_loop, DriverConfig};

/// Fault-stream seed: `PENSIEVE_FAULT_SEED` env var, default 1.
fn fault_seed() -> u64 {
    std::env::var("PENSIEVE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A single GPU with a KV budget small enough that the multi-turn
/// workload must swap against the CPU tier (where faults can bite), but
/// large enough to hold any single conversation's full context — a
/// context exceeding the whole budget is unserveable by design.
fn tight_hw(
    model: &ModelConfig,
    convs: &[pensieve_workload::dataset::Conversation],
) -> HardwareSpec {
    let longest = convs.iter().map(|c| c.total_tokens()).max().unwrap_or(0);
    let mut hw = HardwareSpec::azure_nc_a100(1);
    hw.gpu_kv_budget_bytes = (longest + 512) * model.kv_bytes_per_token();
    hw.cpu_cache_bytes_per_gpu = 16 << 30;
    hw
}

/// Per-conversation output-token sequences, in arrival order. This is
/// the run's "result" — independent of completion timing and of prefill
/// accounting, both of which faults are allowed to change (recovery
/// legitimately recomputes more context).
fn outputs_by_conv(responses: &[pensieve_core::Response], num_convs: usize) -> Vec<Vec<usize>> {
    let mut per_conv: Vec<Vec<_>> = vec![Vec::new(); num_convs];
    for r in responses {
        per_conv[r.conv.0 as usize].push((r.arrival, r.output_tokens));
    }
    per_conv
        .into_iter()
        .map(|mut v| {
            v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            v.into_iter().map(|(_, out)| out).collect()
        })
        .collect()
}

/// The headline chaos test: a closed-loop multi-turn workload completes
/// every request under PCIe failures, timeouts, CPU-chunk loss and
/// corruption, allocation faults and worker stalls — with per-request
/// token counts identical to the fault-free run, and the recovery
/// machinery visibly exercised in the counters.
#[test]
fn chaos_closed_loop_completes_with_identical_outputs() {
    let model = ModelConfig::opt_13b();
    let dataset = DatasetSpec::sharegpt();
    // Dense enough that conversations overlap and their chunks really get
    // demoted to the CPU tier (not just lazily copied) before they return.
    let convs = dataset.generate(32, 33);
    let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
    let driver = DriverConfig {
        request_rate: 12.0,
        mean_think_time: 20.0,
        seed: 21,
        system_prompt_tokens: 0,
    };
    let run = |faults: Option<FaultInjector>| {
        let mut builder = SimServingEngine::builder(
            EngineConfig::pensieve(),
            model.clone(),
            tight_hw(&model, &convs),
        )
        .recovery_policy(RecoveryPolicy {
            max_swap_in_retries: 2,
            ..RecoveryPolicy::default()
        });
        if let Some(f) = faults {
            builder = builder.fault_injector(f);
        }
        let mut e = builder.build();
        let result = run_closed_loop(&mut e, &convs, &driver);
        (result, e.counters().clone(), e.fault_counters().copied())
    };

    let (clean, clean_counters, _) = run(None);
    let mut chaos = FaultConfig::chaos(fault_seed());
    // Crank the PCIe failure rate so retries exhaust and the engine must
    // also take the recompute-fallback path, not just retry its way out.
    chaos.pcie_failure = 0.75;
    let (faulty, counters, faults) = run(Some(FaultInjector::new(chaos)));

    assert_eq!(
        clean.responses.len(),
        total_turns,
        "fault-free run must complete everything"
    );
    assert_eq!(
        faulty.responses.len(),
        total_turns,
        "every request must complete under chaos (no hangs, no losses)"
    );
    assert_eq!(
        outputs_by_conv(&clean.responses, convs.len()),
        outputs_by_conv(&faulty.responses, convs.len()),
        "faults must never change what is generated, only when"
    );

    let faults = faults.expect("injector was installed");
    assert!(faults.total() > 0, "chaos preset must inject faults");
    assert!(
        counters.swap_in_retries > 0,
        "PCIe failures must surface as swap-in retries: {counters:?}"
    );
    assert!(
        counters.recompute_fallbacks > 0,
        "exhausted retries must fall back to recomputation: {counters:?}"
    );
    assert_eq!(clean_counters.swap_in_retries, 0);
    assert_eq!(clean_counters.recompute_fallbacks, 0);
}

/// The functional engine (real math, real KV bytes) under stash loss and
/// corruption: the checksum catches corrupted swap-ins, both fault kinds
/// downgrade to recomputation, and generated tokens stay bit-identical.
#[test]
fn functional_engine_outputs_bit_identical_under_faults() {
    use pensieve_core::functional::{FunctionalConfig, FunctionalEngine};
    use pensieve_kvcache::SessionId;

    let cfg = ModelConfig::tiny_llama();
    let mem = FunctionalConfig {
        block_size: 4,
        pool_blocks: 16,
        stash_blocks: 64,
        free_watermark: 2,
    };
    let mut clean = FunctionalEngine::new(&cfg, 5, mem.clone());
    let mut faulty = FunctionalEngine::new(&cfg, 5, mem);
    let mut fc = FaultConfig::disabled(fault_seed());
    fc.cpu_chunk_loss = 0.7;
    fc.cpu_chunk_corruption = 0.7;
    faulty.set_fault_injector(FaultInjector::new(fc));

    let (a, b) = (SessionId(1), SessionId(2));
    for turn in 0..4u32 {
        for &conv in &[a, b] {
            let prompt: Vec<u32> = (0..6u32)
                .map(|i| (turn * 31 + conv.0 as u32 * 11 + i * 7) % cfg.vocab_size as u32)
                .collect();
            let want = clean.serve_turn(conv, &prompt, 4);
            let got = faulty.serve_turn(conv, &prompt, 4);
            assert_eq!(got, want, "conv {} turn {turn} diverged", conv.0);
        }
    }
    let (lost, corrupt) = faulty.fault_activity();
    assert!(
        lost + corrupt > 0,
        "the fault schedule must have hit the stash"
    );
    let (_, _, _, recomputed) = faulty.cache_activity();
    assert!(recomputed > 0, "faults must be absorbed by recomputation");
}

/// A dead tensor-parallel worker shard surfaces as a typed
/// [`WorkerError::ShardDisconnected`] — promptly, on every subsequent
/// call, and without hanging the scheduler.
#[test]
fn dead_worker_shard_fails_typed_and_fast() {
    let cfg = ModelConfig::tiny_llama();
    let model = TinyModel::new_random(&cfg, 7);
    let mut engine = ThreadedTpEngine::new(&model, 2, 4, 256);
    let prompt: Vec<u32> = (0..6).collect();
    engine
        .serve_turn(1, &prompt, 3)
        .expect("healthy fleet serves");

    engine.kill_shard(1);
    let err = engine
        .serve_turn(1, &prompt, 3)
        .expect_err("dead shard must fail the turn");
    assert!(
        matches!(err, WorkerError::ShardDisconnected { .. }),
        "unexpected error: {err}"
    );
    assert!(engine.is_poisoned(), "fleet must be marked failed");
    // Fail-stop: later turns fail immediately with the same typed error.
    let again = engine.serve_turn(2, &[1, 2, 3], 2).expect_err("still dead");
    assert!(matches!(again, WorkerError::ShardDisconnected { .. }));
}

/// Worker stalls delay iterations (visible in the simulated span) but
/// change nothing else; the engine's accounting of the stall shows up in
/// its counters.
#[test]
fn worker_stalls_only_cost_time() {
    let model = ModelConfig::opt_13b();
    let dataset = DatasetSpec::sharegpt();
    let convs = dataset.generate(8, 44);
    let driver = DriverConfig {
        request_rate: 4.0,
        mean_think_time: 2.0,
        seed: 3,
        system_prompt_tokens: 0,
    };
    let run = |stall: f64| {
        let mut fc = FaultConfig::disabled(fault_seed());
        fc.worker_stall = stall;
        fc.stall_duration = SimDuration::from_secs(20e-3);
        let mut e = SimServingEngine::builder(
            EngineConfig::pensieve(),
            model.clone(),
            tight_hw(&model, &convs),
        )
        .fault_injector(FaultInjector::new(fc))
        .build();
        let r = run_closed_loop(&mut e, &convs, &driver);
        (r, e.counters().clone())
    };
    let (calm, calm_counters) = run(0.0);
    let (stalled, stall_counters) = run(0.5);
    assert_eq!(calm.responses.len(), stalled.responses.len());
    assert_eq!(
        outputs_by_conv(&calm.responses, convs.len()),
        outputs_by_conv(&stalled.responses, convs.len()),
    );
    assert_eq!(calm_counters.worker_stalls, 0);
    assert!(stall_counters.worker_stalls > 0, "stalls must have fired");
    assert!(
        stalled.span > calm.span,
        "stalls must cost simulated time: {} vs {}",
        stalled.span,
        calm.span
    );
}

/// Regression for the typed-error conversion of the engine/cache/PCIe
/// hot paths: across a sweep of fault seeds with every fault kind
/// cranked well past the chaos preset, a full closed-loop run must
/// finish every request through the typed recovery paths. Any residual
/// `unwrap`/`expect` on those paths would surface here as a panic.
#[test]
fn aggressive_fault_seed_sweep_never_panics() {
    let model = ModelConfig::opt_13b();
    let dataset = DatasetSpec::sharegpt();
    let convs = dataset.generate(12, 55);
    let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
    let driver = DriverConfig {
        request_rate: 10.0,
        mean_think_time: 10.0,
        seed: 7,
        system_prompt_tokens: 0,
    };
    for seed in [fault_seed(), 2, 3, 5, 8, 13] {
        let mut fc = FaultConfig::chaos(seed);
        fc.pcie_failure = 0.80;
        fc.pcie_timeout = 0.25;
        fc.cpu_chunk_loss = 0.20;
        fc.cpu_chunk_corruption = 0.20;
        fc.gpu_alloc_failure = 0.25;
        fc.worker_stall = 0.20;
        let mut e = SimServingEngine::builder(
            EngineConfig::pensieve(),
            model.clone(),
            tight_hw(&model, &convs),
        )
        .recovery_policy(RecoveryPolicy {
            max_swap_in_retries: 1,
            ..RecoveryPolicy::default()
        })
        .fault_injector(FaultInjector::new(fc))
        .build();
        let result = run_closed_loop(&mut e, &convs, &driver);
        assert_eq!(
            result.responses.len(),
            total_turns,
            "seed {seed}: every request must complete (no hangs, no panics)"
        );
    }
}
