//! Integration tests of the functional (real-math) serving path.
//!
//! These are the strongest correctness checks in the repository: a
//! stateful engine that evicts, swaps, drops, and recomputes KV-tokens
//! must produce **token-identical** output to stateless recomputation.

use pensieve_core::functional::{FunctionalConfig, FunctionalEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::ModelConfig;

fn prompt(seed: u32, len: usize, vocab: u32) -> Vec<u32> {
    (0..len as u32)
        .map(|i| (seed * 131 + i * 17) % vocab)
        .collect()
}

/// Long-running three-way interleaving under heavy pool pressure: every
/// turn of every conversation must match stateless recompute exactly.
#[test]
fn interleaved_conversations_under_pressure_are_exact() {
    let cfg = ModelConfig::tiny_llama();
    let vocab = cfg.vocab_size as u32;
    let mut engine = FunctionalEngine::new(
        &cfg,
        31,
        FunctionalConfig {
            block_size: 4,
            pool_blocks: 20,
            stash_blocks: 8,
            free_watermark: 3,
        },
    );
    let convs: Vec<SessionId> = (1..=3).map(SessionId).collect();
    let mut transcripts: Vec<Vec<u32>> = vec![Vec::new(); convs.len()];
    for round in 0..4u32 {
        for (ci, &conv) in convs.iter().enumerate() {
            let p = prompt(round * 10 + ci as u32, 5 + (ci % 3), vocab);
            let generated = engine.serve_turn(conv, &p, 3);
            transcripts[ci].extend_from_slice(&p);
            let expect = engine.reference_decode(&transcripts[ci], 3);
            assert_eq!(
                generated, expect,
                "conv {ci} round {round}: stateful output diverged"
            );
            transcripts[ci].extend_from_slice(&generated);
        }
    }
    let (evicted, swapped_in, dropped, recomputed) = engine.cache_activity();
    assert!(evicted > 0, "test must exercise eviction");
    assert!(swapped_in > 0, "test must exercise swap-in");
    assert!(
        dropped > 0 && recomputed > 0,
        "test must exercise drop + recompute (dropped={dropped}, recomputed={recomputed})"
    );
    // The engine's durable transcript matches ours.
    for (ci, &conv) in convs.iter().enumerate() {
        assert_eq!(engine.history(conv), transcripts[ci]);
    }
}

/// The OPT-style architecture (learned positions, LayerNorm, plain MLP)
/// is exact under the same pressure.
#[test]
fn opt_architecture_exact_under_pressure() {
    let cfg = ModelConfig::tiny_opt();
    let vocab = cfg.vocab_size as u32;
    let mut engine = FunctionalEngine::new(
        &cfg,
        32,
        FunctionalConfig {
            block_size: 4,
            pool_blocks: 16,
            stash_blocks: 4,
            free_watermark: 2,
        },
    );
    let (a, b) = (SessionId(1), SessionId(2));
    let mut ta: Vec<u32> = Vec::new();
    let mut tb: Vec<u32> = Vec::new();
    for round in 0..3u32 {
        let pa = prompt(round, 6, vocab);
        let ga = engine.serve_turn(a, &pa, 3);
        ta.extend_from_slice(&pa);
        assert_eq!(ga, engine.reference_decode(&ta, 3), "conv a round {round}");
        ta.extend_from_slice(&ga);

        let pb = prompt(100 + round, 7, vocab);
        let gb = engine.serve_turn(b, &pb, 2);
        tb.extend_from_slice(&pb);
        assert_eq!(gb, engine.reference_decode(&tb, 2), "conv b round {round}");
        tb.extend_from_slice(&gb);
    }
}

/// Determinism: the same seed and workload produce the same transcript.
#[test]
fn functional_engine_is_deterministic() {
    let cfg = ModelConfig::tiny_llama();
    let run = || {
        let mut e = FunctionalEngine::new(&cfg, 77, FunctionalConfig::default());
        let conv = SessionId(1);
        let mut out = Vec::new();
        for round in 0..3u32 {
            let p = prompt(round, 5, cfg.vocab_size as u32);
            out.extend(e.serve_turn(conv, &p, 4));
        }
        out
    };
    assert_eq!(run(), run());
}
