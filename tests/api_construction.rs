//! Guards the builder-only construction contract.
//!
//! After the `EngineBuilder` / `Request::builder()` redesign, the only
//! place allowed to construct a `SimServingEngine` directly is the engine
//! module itself, and the only places allowed to write a `Request` struct
//! literal are the request module (the builder's own body) plus its
//! in-module tests. Everything else must go through the builders, so the
//! validation they perform cannot be bypassed. This test walks the
//! workspace sources and fails on any new offender.

use std::path::{Path, PathBuf};

/// Source roots scanned for offending construction sites.
const ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR for the root package is the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Returns true when `text[idx..]` starts a `Request { .. }` struct
/// literal, as opposed to a type position (`-> Request {`, `impl Request
/// {`, `struct Request {`, ...).
fn is_struct_literal(text: &str, idx: usize, name: &str) -> bool {
    // Word boundary on the left (rejects RunningRequest, RequestId, ...).
    if text[..idx].chars().next_back().is_some_and(is_ident_char) {
        return false;
    }
    let after = &text[idx + name.len()..];
    // Word boundary on the right, then the literal's opening brace.
    if after.chars().next().is_some_and(is_ident_char) {
        return false;
    }
    if !after.trim_start().starts_with('{') {
        return false;
    }
    // Look left past whitespace for contexts where `Name {` is not a
    // struct-literal expression.
    let before = text[..idx].trim_end();
    if before.ends_with("->") {
        return false; // function return type followed by the body brace
    }
    for kw in ["struct", "impl", "enum", "trait", "for", "dyn", "as"] {
        if before.ends_with(kw)
            && !before[..before.len() - kw.len()]
                .chars()
                .next_back()
                .is_some_and(is_ident_char)
        {
            return false;
        }
    }
    true
}

fn find_offenders(needle: &str, allowed: &[&str], literal_check: bool) -> Vec<String> {
    let root = workspace_root();
    let mut files = Vec::new();
    for r in ROOTS {
        rust_sources(&root.join(r), &mut files);
    }
    files.sort();
    let mut offenders = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if allowed.iter().any(|a| rel == *a) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let mut search_from = 0;
        while let Some(pos) = text[search_from..].find(needle) {
            let idx = search_from + pos;
            search_from = idx + needle.len();
            let hit = if literal_check {
                is_struct_literal(&text, idx, needle)
            } else {
                !text[..idx].chars().next_back().is_some_and(is_ident_char)
            };
            if hit {
                let line = text[..idx].matches('\n').count() + 1;
                offenders.push(format!("{rel}:{line}"));
            }
        }
    }
    offenders
}

#[test]
fn requests_are_only_built_through_the_builder() {
    let offenders = find_offenders(
        "Request",
        &["crates/core/src/request.rs", "tests/api_construction.rs"],
        true,
    );
    assert!(
        offenders.is_empty(),
        "Request struct literals outside crates/core/src/request.rs — \
         use Request::builder() instead:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn engines_are_only_built_through_the_builder() {
    let offenders = find_offenders(
        "SimServingEngine::new(",
        &["crates/core/src/engine.rs", "tests/api_construction.rs"],
        false,
    );
    assert!(
        offenders.is_empty(),
        "direct SimServingEngine::new calls — use SimServingEngine::builder():\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn caches_are_only_built_through_the_builder() {
    // After the content-addressed sharing redesign, `TieredKvCache::new`
    // is crate-private: every caller goes through
    // `TieredKvCache::builder()` so the eviction policy, deep tiers, and
    // recorder are wired in one validated place.
    let offenders = find_offenders(
        "TieredKvCache::new(",
        &["crates/kvcache/src/tiered.rs", "tests/api_construction.rs"],
        false,
    );
    assert!(
        offenders.is_empty(),
        "direct TieredKvCache::new calls — use TieredKvCache::builder():\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn legacy_session_keyed_fetch_store_stays_deleted() {
    // `RawTokenStore` (session-keyed `fetch` of a contiguous private
    // slice) was replaced by the content-addressed `TokenChunkStore` +
    // `SessionView` read surface; the old name must not creep back.
    let offenders = find_offenders("RawTokenStore", &["tests/api_construction.rs"], false);
    assert!(
        offenders.is_empty(),
        "RawTokenStore references found — use TokenChunkStore + SessionView:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn engine_level_setter_pairs_stay_deleted() {
    // The ad-hoc `with_*`/`set_*` pairs on the engine were collapsed into
    // `EngineBuilder`; make sure they do not creep back in at call sites.
    for needle in [
        ".with_fault_injector(",
        ".with_recovery_policy(",
        ".with_recorder(",
    ] {
        let offenders = find_offenders(needle, &["tests/api_construction.rs"], false);
        assert!(
            offenders.is_empty(),
            "`{needle}` call sites found — use EngineBuilder:\n  {}",
            offenders.join("\n  ")
        );
    }
}
