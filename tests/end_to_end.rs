//! Cross-crate integration tests: the full serving stack, end to end.

use pensieve_core::{EngineConfig, Request, RequestId, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::{run_closed_loop, DriverConfig};

fn engine(cfg: EngineConfig, model: ModelConfig, gpus: usize) -> SimServingEngine {
    SimServingEngine::builder(cfg, model, HardwareSpec::azure_nc_a100(gpus)).build()
}

fn req(id: u64, conv: u64, at: SimTime, prompt: usize, out: usize, hist: usize) -> Request {
    Request::builder()
        .id(RequestId(id))
        .session(SessionId(conv))
        .arrival(at)
        .prompt_tokens(prompt)
        .output_tokens(out)
        .history_tokens(hist)
        .build()
        .expect("test request is well-formed")
}

/// The headline claim: under a multi-turn workload, Pensieve sustains a
/// given latency at higher throughput than the stateless baselines.
#[test]
fn pensieve_beats_stateless_baselines_on_sharegpt() {
    let dataset = DatasetSpec::sharegpt();
    let rate = 8.0;
    let convs = dataset.generate(((rate / dataset.mean_turns) * 120.0) as usize, 99);
    let p90_of = |cfg: EngineConfig| {
        let mut e = engine(cfg, ModelConfig::llama2_13b(), 1);
        run_closed_loop(
            &mut e,
            &convs,
            &DriverConfig {
                request_rate: rate,
                mean_think_time: 60.0,
                seed: 5,
                system_prompt_tokens: 0,
            },
        )
        .summary()
        .p90_normalized
    };
    let pensieve = p90_of(EngineConfig::pensieve());
    let vllm = p90_of(EngineConfig::vllm());
    let trt = p90_of(EngineConfig::tensorrt_llm());
    assert!(
        pensieve < vllm,
        "Pensieve p90 {pensieve} must beat vLLM {vllm}"
    );
    assert!(
        pensieve < trt,
        "Pensieve p90 {pensieve} must beat TRT {trt}"
    );
    assert!(
        trt < vllm,
        "TRT p90 {trt} must beat vLLM {vllm} (paper §6.2)"
    );
}

/// GQA models benefit more (paper §6.2): the Pensieve/vLLM latency gap is
/// wider for Llama 2-13B (KV 4x smaller) than for OPT-13B.
#[test]
fn gqa_widens_pensieve_advantage() {
    let dataset = DatasetSpec::sharegpt();
    let rate = 6.0;
    let convs = dataset.generate(((rate / dataset.mean_turns) * 100.0) as usize, 17);
    let gap = |model: ModelConfig| {
        let run = |cfg: EngineConfig| {
            let mut e = engine(cfg, model.clone(), 1);
            run_closed_loop(
                &mut e,
                &convs,
                &DriverConfig {
                    request_rate: rate,
                    mean_think_time: 60.0,
                    seed: 6,
                    system_prompt_tokens: 0,
                },
            )
            .summary()
            .p90_normalized
        };
        run(EngineConfig::vllm()) / run(EngineConfig::pensieve())
    };
    let opt = gap(ModelConfig::opt_13b());
    let llama = gap(ModelConfig::llama2_13b());
    assert!(
        llama > 1.0 && opt > 1.0,
        "Pensieve must win on both models (opt {opt}, llama {llama})"
    );
}

/// Multi-GPU serving works and Pensieve's advantage persists (Figure 11).
#[test]
fn four_gpu_models_serve_correctly() {
    let dataset = DatasetSpec::sharegpt();
    let rate = 2.0;
    let convs = dataset.generate(((rate / dataset.mean_turns) * 80.0) as usize, 23);
    let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
    for model in [ModelConfig::opt_66b(), ModelConfig::llama2_70b()] {
        let mut e = engine(EngineConfig::pensieve(), model.clone(), 4);
        let result = run_closed_loop(
            &mut e,
            &convs,
            &DriverConfig {
                request_rate: rate,
                mean_think_time: 60.0,
                seed: 8,
                system_prompt_tokens: 0,
            },
        );
        assert_eq!(result.responses.len(), total_turns, "{}", model.name);
        let s = result.summary();
        assert!(
            s.p90_normalized > 0.0 && s.p90_normalized < 2.0,
            "{} implausible p90 {}",
            model.name,
            s.p90_normalized
        );
    }
}

/// A conversation whose context was partially dropped is restored by
/// recomputation, transparently to the caller.
#[test]
fn dropped_context_is_recomputed_transparently() {
    // GPU-cache-only variant: evictions drop tokens outright.
    let mut e = engine(
        EngineConfig::pensieve_gpu_cache(),
        ModelConfig::opt_13b(),
        1,
    );
    // Conversation A builds history.
    e.submit(req(1, 1, SimTime::ZERO, 2000, 50, 0));
    e.run_until_idle();
    let t1 = e.drain_responses().remove(0);
    // Conversation B floods the GPU cache (52K-token capacity).
    for i in 0..3u64 {
        e.submit(req(
            10 + i,
            2 + i,
            t1.finish + SimDuration::from_secs(1.0 + i as f64),
            15_000,
            20,
            0,
        ));
    }
    e.run_until_idle();
    e.drain_responses();
    // A returns; some or all of its context was dropped and recomputed.
    e.submit(req(
        20,
        1,
        e.now() + SimDuration::from_secs(5.0),
        30,
        40,
        2050,
    ));
    e.run_until_idle();
    let t2 = e.drain_responses().remove(0);
    assert_eq!(t2.output_tokens, 40);
    assert!(
        e.cache_stats().recomputed_tokens > 0 || t2.cached_history_tokens > 0,
        "history must be either cached or recomputed"
    );
    // Work is conserved: prefill covers whatever was not cached.
    assert_eq!(
        t2.prefill_tokens + t2.cached_history_tokens,
        2050 + 30,
        "prefill + cached must cover history + prompt"
    );
}

/// The engine survives a pathological burst (everything arrives at once)
/// without losing or duplicating requests.
#[test]
fn burst_arrivals_conserve_requests() {
    let mut e = engine(EngineConfig::pensieve(), ModelConfig::llama2_13b(), 1);
    for i in 0..50u64 {
        e.submit(req(
            i,
            i,
            SimTime::ZERO,
            100 + (i as usize * 37) % 400,
            20 + (i as usize * 13) % 100,
            0,
        ));
    }
    e.run_until_idle();
    let rs = e.drain_responses();
    assert_eq!(rs.len(), 50);
    let mut ids: Vec<u64> = rs.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 50, "no duplicate completions");
}
