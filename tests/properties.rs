//! Property-based tests over the core data structures and kernels.

use pensieve_kernels::attention::contiguous::fused_contiguous;
use pensieve_kernels::attention::multi::{
    paged_multi_token, paged_multi_token_par, paged_multi_token_ref,
};
use pensieve_kernels::attention::multiround::multi_round_single_token;
use pensieve_kernels::attention::naive::naive_attention;
use pensieve_kernels::attention::single::paged_single_token_batch;
use pensieve_kernels::ops::{matmul, matmul_par, matmul_ref};
use pensieve_kernels::paged::gather_contiguous;
use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
use pensieve_core::{FunctionalConfig, FunctionalEngine};
use pensieve_kvcache::{CacheConfig, LruPolicy, SessionId, TieredKvCache};
use pensieve_model::{CostModel, HardwareSpec, ModelConfig, ProfiledCostTable, SeqShape, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random paged context and query for a given shape.
fn build_case(
    seed: u64,
    q_len: usize,
    ctx: usize,
    heads: usize,
    kv_heads: usize,
    d: usize,
    block: usize,
) -> (AttnConfig, PagedKvCache, BlockTable, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = AttnConfig::new(heads, kv_heads, d);
    let layout = KvLayout {
        num_kv_heads: kv_heads,
        head_dim: d,
        block_size: block,
    };
    let mut pool = PagedKvCache::new(layout, 1, ctx.div_ceil(block) + 1);
    let mut table = BlockTable::new(block);
    let tf = layout.token_floats();
    for _ in 0..ctx {
        let (b, s) = table.append_token(&mut pool).unwrap();
        let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
        let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
        pool.write_token(0, b, s, &k, &v);
    }
    let q = Matrix::from_vec(
        q_len,
        cfg.q_width(),
        (0..q_len * cfg.q_width())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect(),
    );
    (cfg, pool, table, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four attention kernels agree with the naive reference on
    /// arbitrary shapes (including GQA and ragged block tails).
    #[test]
    fn attention_kernels_agree(
        seed in 0u64..1000,
        q_len in 1usize..12,
        extra_ctx in 0usize..40,
        head_split in 0usize..3,
        block in prop::sample::select(vec![2usize, 4, 8, 16]),
    ) {
        let (heads, kv_heads) = [(4, 4), (4, 2), (8, 1)][head_split];
        let d = 8;
        let ctx = q_len + extra_ctx;
        let (cfg, pool, table, q) = build_case(seed, q_len, ctx, heads, kv_heads, d, block);
        let layer = pool.layer(0);
        let seq = AttnSeq { q_start: 0, q_len, context_len: ctx, table: &table };

        let multi = paged_multi_token(&cfg, &q, &layer, &[seq]);
        let rounds = multi_round_single_token(&cfg, &q, &layer, &[seq]);
        let (k, v) = gather_contiguous(&layer, &table, ctx);
        let fused = fused_contiguous(&cfg, &q, &k, &v);
        let reference = naive_attention(&cfg, &q, &k, &v);

        prop_assert!(multi.max_abs_diff(&reference) < 1e-4);
        prop_assert!(rounds.max_abs_diff(&reference) < 1e-4);
        prop_assert!(fused.max_abs_diff(&reference) < 1e-4);
    }

    /// The cache-blocked GEMM and its data-parallel variant reproduce the
    /// scalar reference **bit-for-bit** on arbitrary shapes, straddling
    /// both the small-volume fallback and the packing tile boundaries.
    #[test]
    fn blocked_and_parallel_matmul_bit_identical(
        seed in 0u64..1000,
        m in 1usize..40,
        k in prop::sample::select(vec![1usize, 3, 63, 64, 65, 130]),
        n in prop::sample::select(vec![1usize, 7, 127, 128, 129]),
        threads in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_vec(
            m, k, (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect());
        let b = Matrix::from_vec(
            k, n, (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect());
        let reference = matmul_ref(&a, &b);
        prop_assert_eq!(&matmul(&a, &b), &reference);
        prop_assert_eq!(&matmul_par(&a, &b, threads), &reference);
    }

    /// The blocked and data-parallel attention kernels reproduce the
    /// scalar reference **bit-for-bit** across random shapes, GQA ratios,
    /// block sizes, and thread counts; decode batches (`q_len == 1`) also
    /// cover the batched single-token fast path.
    #[test]
    fn blocked_and_parallel_attention_bit_identical(
        seed in 0u64..1000,
        q_len in 1usize..12,
        extra_ctx in 0usize..40,
        head_split in 0usize..4,
        block in prop::sample::select(vec![2usize, 4, 8, 16]),
        threads in 2usize..4,
    ) {
        let (heads, kv_heads) = [(4, 4), (4, 2), (8, 1), (6, 3)][head_split];
        let ctx = q_len + extra_ctx;
        let (cfg, pool, table, q) = build_case(seed, q_len, ctx, heads, kv_heads, 8, block);
        let layer = pool.layer(0);
        let seq = AttnSeq { q_start: 0, q_len, context_len: ctx, table: &table };

        let reference = paged_multi_token_ref(&cfg, &q, &layer, &[seq]);
        prop_assert_eq!(&paged_multi_token(&cfg, &q, &layer, &[seq]), &reference);
        prop_assert_eq!(&paged_multi_token_par(&cfg, &q, &layer, &[seq], threads), &reference);
        if q_len == 1 {
            prop_assert_eq!(&paged_single_token_batch(&cfg, &q, &layer, &[seq]), &reference);
        }
    }

    /// §4.3.4 dropped-token recomputation layout: two sub-requests sharing
    /// one block table with different context lengths stay bit-identical
    /// to the scalar reference under the blocked and parallel kernels.
    #[test]
    fn subrequest_attention_bit_identical(
        seed in 0u64..1000,
        dropped in 1usize..8,
        prompt in 1usize..8,
        gap in 0usize..24,
        threads in 2usize..4,
    ) {
        // Context layout: [kept history][dropped tokens][gap][prompt].
        let ctx = dropped + gap + prompt + 3;
        let (cfg, pool, table, q) = build_case(seed, dropped + prompt, ctx, 4, 2, 8, 4);
        let layer = pool.layer(0);
        let seqs = [
            // Recomputed dropped tokens, mid-context.
            AttnSeq { q_start: 0, q_len: dropped, context_len: dropped + 3, table: &table },
            // The new prompt chunk at the end of the same table.
            AttnSeq { q_start: dropped, q_len: prompt, context_len: ctx, table: &table },
        ];
        let reference = paged_multi_token_ref(&cfg, &q, &layer, &seqs);
        prop_assert_eq!(&paged_multi_token(&cfg, &q, &layer, &seqs), &reference);
        prop_assert_eq!(&paged_multi_token_par(&cfg, &q, &layer, &seqs, threads), &reference);
    }

    /// Causality: perturbing KV beyond a query row's visible range never
    /// changes that row's output.
    #[test]
    fn causal_masking_blocks_future_leakage(
        seed in 0u64..1000,
        q_len in 2usize..8,
        extra in 1usize..16,
    ) {
        let ctx = q_len + extra;
        let (cfg, mut pool, table, q) = build_case(seed, q_len, ctx, 4, 2, 8, 4);
        let base = paged_multi_token(&cfg, &q, &pool.layer(0), &[AttnSeq {
            q_start: 0, q_len, context_len: ctx, table: &table,
        }]);
        // Perturb the final context token (visible only to the last row).
        let (b, s) = table.position(ctx - 1);
        let tf = pool.layout().token_floats();
        pool.write_token(0, b, s, &vec![9.0; tf], &vec![-9.0; tf]);
        let alt = paged_multi_token(&cfg, &q, &pool.layer(0), &[AttnSeq {
            q_start: 0, q_len, context_len: ctx, table: &table,
        }]);
        for j in 0..q_len - 1 {
            for c in 0..cfg.q_width() {
                prop_assert!((base[(j, c)] - alt[(j, c)]).abs() < 1e-6,
                    "row {j} saw a future token");
            }
        }
    }

    /// Tiered-cache conservation: tokens never appear or vanish across an
    /// arbitrary sequence of appends, swaps, suspends, and restores.
    #[test]
    fn cache_conserves_tokens(
        ops in prop::collection::vec((0u8..5, 0u64..4, 1usize..100), 1..60),
    ) {
        let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, 2048, 1024))
            .policy(Box::new(LruPolicy))
            .build();
        let mut expected: std::collections::HashMap<u64, usize> = Default::default();
        let mut t = 0.0f64;
        for (op, conv_raw, n) in ops {
            t += 1.0;
            let now = SimTime::from_secs(t);
            let conv = SessionId(conv_raw);
            match op {
                0 => {
                    // Append (restore first so the trailing chunk is GPU).
                    if cache.commit_restore(conv, now).is_ok()
                        && cache.append_tokens(conv, n, now).is_ok()
                    {
                        *expected.entry(conv_raw).or_default() += n;
                    }
                }
                1 => { cache.unpin(conv); }
                2 => { cache.suspend(conv, now); }
                3 => { let _ = cache.maybe_swap_out(now); }
                _ => { let _ = cache.plan_restore(conv); }
            }
            for (&c, &tokens) in &expected {
                prop_assert_eq!(
                    cache.conversation_tokens(SessionId(c)),
                    tokens,
                    "token count drifted for conversation {}", c
                );
            }
            prop_assert!(cache.gpu_slots_used() <= 2048);
            prop_assert!(cache.cpu_used() <= 1024);
        }
    }

    /// Eviction and fault operations never touch a conversation pinned by
    /// the active batch: between `commit_restore` and `suspend` its whole
    /// context stays GPU-resident, even while other conversations are
    /// swapped out, force-evicted, lost, corrupted, or force-dropped
    /// around it — including by the fault-injection entry points.
    #[test]
    fn eviction_never_evicts_pinned_chunks(
        ops in prop::collection::vec((0u8..7, 0u64..4, 1usize..64), 1..60),
    ) {
        let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, 1024, 4096))
            .policy(Box::new(LruPolicy))
            .build();
        let mut pinned: std::collections::HashSet<u64> = Default::default();
        let mut t = 0.0f64;
        for (op, conv_raw, n) in ops {
            t += 1.0;
            let now = SimTime::from_secs(t);
            let conv = SessionId(conv_raw);
            match op {
                0 => {
                    // Admission: restore pins; the append may fail on a
                    // full GPU without unpinning.
                    if cache.commit_restore(conv, now).is_ok() {
                        pinned.insert(conv_raw);
                        let _ = cache.append_tokens(conv, n, now);
                    }
                }
                1 => {
                    cache.suspend(conv, now);
                    pinned.remove(&conv_raw);
                }
                2 => { let _ = cache.maybe_swap_out(now); }
                3 => {
                    // Backpressure eviction on behalf of some conversation.
                    let _ = cache.swap_out_until_for(n, Some(conv), now);
                }
                4 | 5 => {
                    // Injected chunk loss/corruption against a CPU copy.
                    let targets = cache.cpu_resident_chunks();
                    if !targets.is_empty() {
                        let (c, idx, _) = targets[n % targets.len()];
                        if op == 4 {
                            cache.mark_chunk_lost(c, idx).unwrap();
                        } else {
                            cache.mark_chunk_corrupt(c, idx).unwrap();
                        }
                    }
                }
                _ => {
                    // Swap-in retry exhaustion: force-drop CPU chunks.
                    let _ = cache.drop_cpu_chunks(conv, now);
                }
            }
            for &c in &pinned {
                let plan = cache.plan_restore(SessionId(c));
                prop_assert_eq!(
                    plan.swap_in_tokens + plan.recompute_tokens,
                    0,
                    "active conversation {} lost GPU residency", c
                );
            }
            prop_assert!(cache.gpu_slots_used() <= 1024);
        }
    }

    /// A restore plan always accounts for exactly the tracked tokens, and
    /// committing it makes everything GPU-resident.
    #[test]
    fn restore_plans_are_complete(
        appends in prop::collection::vec(1usize..200, 1..6),
    ) {
        let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, 4096, 512))
            .policy(Box::new(LruPolicy))
            .build();
        let conv = SessionId(1);
        let mut t = 0.0;
        for n in &appends {
            t += 1.0;
            cache.commit_restore(conv, SimTime::from_secs(t)).unwrap();
            cache.append_tokens(conv, *n, SimTime::from_secs(t)).unwrap();
        }
        cache.suspend(conv, SimTime::from_secs(t + 1.0));
        let total: usize = appends.iter().sum();
        let plan = cache.plan_restore(conv);
        prop_assert_eq!(
            plan.gpu_hit_tokens + plan.revalidate_tokens
                + plan.swap_in_tokens + plan.recompute_tokens,
            total
        );
        let plan = cache.commit_restore(conv, SimTime::from_secs(t + 2.0)).unwrap();
        prop_assert_eq!(plan.new_gpu_slots() + plan.gpu_hit_tokens + plan.revalidate_tokens, total);
        let after = cache.plan_restore(conv);
        prop_assert!(after.is_full_gpu_hit());
    }

    /// The profiled cost table is monotone in context length, so the
    /// retention-value policy always prefers leading chunks.
    #[test]
    fn profiled_cost_is_monotone(chunk in prop::sample::select(vec![8usize, 16, 32, 64])) {
        let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
        let table = ProfiledCostTable::profile(&cost, chunk, 16384);
        let mut prev = table.chunk_cost(chunk);
        let mut l = chunk * 2;
        while l <= 16384 {
            let c = table.chunk_cost(l);
            prop_assert!(c >= prev, "cost not monotone at context {}", l);
            prev = c;
            l += chunk.max(97);
        }
    }

    /// Forking one conversation into N branches over the shared
    /// content-addressed store never changes a single output token:
    /// every branch decodes bit-identically to stateless recomputation
    /// of its full (logically private) history, while the store holds
    /// the shared prefix physically once.
    #[test]
    fn forked_sessions_decode_bit_identical_to_unshared(
        seed in 0u64..100,
        forks in 2usize..5,
        parent_turns in 1usize..3,
        prompt_len in 3usize..8,
    ) {
        let cfg = ModelConfig::tiny_llama();
        let mut e = FunctionalEngine::new(&cfg, seed, FunctionalConfig::default());
        let parent = SessionId(1);
        let prompt = |salt: u32| -> Vec<u32> {
            (0..prompt_len as u32)
                .map(|i| (seed as u32 ^ (salt * 131 + i * 17)) % cfg.vocab_size as u32)
                .collect()
        };
        for turn in 0..parent_turns {
            e.serve_turn(parent, &prompt(turn as u32), 2);
        }
        let base = e.history(parent);
        for k in 0..forks {
            let child = SessionId(100 + k as u64);
            e.fork_conversation(parent, child).expect("fresh child fork");
            let p = prompt(50 + k as u32);
            let got = e.serve_turn(child, &p, 3);
            let mut full = base.clone();
            full.extend_from_slice(&p);
            prop_assert_eq!(&got, &e.reference_decode(&full, 3),
                "fork {} diverged from stateless recomputation", k);
        }
        // The branches really share the parent prefix physically.
        let (physical, logical) = e.store_dedup();
        prop_assert!(physical < logical,
            "expected dedup: physical {} >= logical {}", physical, logical);
    }

    /// Batch cost is superadditive-ish: a unified batch never costs more
    /// than running its halves separately (the Figure-13 rationale).
    #[test]
    fn unified_batch_never_slower_than_split(
        prefill_len in 1usize..512,
        decodes in 1usize..48,
        ctx in 64usize..4096,
    ) {
        let cost = CostModel::new(ModelConfig::llama2_13b(), HardwareSpec::azure_nc_a100(1));
        let prefill = SeqShape::prefill(prefill_len, 0);
        let decode_shapes: Vec<SeqShape> =
            (0..decodes).map(|_| SeqShape::decode(ctx)).collect();
        let mut all = decode_shapes.clone();
        all.push(prefill);
        let unified = cost.batch_step_time(&pensieve_model::BatchShape::new(all));
        let split = cost.batch_step_time(&pensieve_model::BatchShape::new(vec![prefill]))
            + cost.batch_step_time(&pensieve_model::BatchShape::new(decode_shapes));
        prop_assert!(unified.as_secs() <= split.as_secs() * 1.0001);
    }
}
