//! Chatbot fleet simulation: a ShareGPT-like workload served end to end.
//!
//! Generates a synthetic multi-turn chatbot workload calibrated to the
//! paper's ShareGPT statistics, then serves it closed-loop (Poisson
//! conversation starts, exponential think time, causal turn ordering) on
//! all four systems from the paper's Figure 10 and prints a comparison.
//!
//! Run with: `cargo run --release --example chatbot_serving`

use pensieve_core::{EngineConfig, SimServingEngine};
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::{run_closed_loop, DriverConfig};

fn main() {
    let dataset = DatasetSpec::sharegpt();
    let request_rate = 6.0;
    let n = ((request_rate / dataset.mean_turns) * 300.0) as usize;
    let convs = dataset.generate(n, 2024);
    let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
    println!(
        "workload: {} conversations, {} total requests, ~{:.1} req/s offered, think time 60 s\n",
        convs.len(),
        total_turns,
        request_rate
    );

    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>10}",
        "system", "tp (req/s)", "p90 (ms/tok)", "ttft (ms)", "hit rate"
    );
    for cfg in EngineConfig::figure10_systems() {
        let name = cfg.name.clone();
        let mut engine = SimServingEngine::builder(
            cfg,
            ModelConfig::llama2_13b(),
            HardwareSpec::azure_nc_a100(1),
        )
        .build();
        let result = run_closed_loop(
            &mut engine,
            &convs,
            &DriverConfig {
                request_rate,
                mean_think_time: 60.0,
                seed: 7,
                system_prompt_tokens: 0,
            },
        );
        let s = result.summary();
        println!(
            "{:<22} {:>10.2} {:>14.1} {:>14.1} {:>9.0}%",
            name,
            s.throughput_rps,
            s.p90_normalized * 1e3,
            s.mean_ttft * 1e3,
            engine.cache_stats().hit_rate() * 100.0
        );
    }
    println!(
        "\nStateful serving avoids re-prefilling each conversation's history, so\n\
         Pensieve holds lower latency at the same offered load (paper Figure 10)."
    );
}
