//! Quickstart: serve a three-turn conversation statefully and watch the
//! cache do its job.
//!
//! Builds a Pensieve serving engine for OPT-13B on a simulated A100,
//! submits three turns of one conversation (with think time between
//! turns), and contrasts the prefill work against a stateless vLLM-style
//! baseline serving the same trace.
//!
//! Run with: `cargo run --release --example quickstart`

use pensieve_core::{EngineConfig, Request, RequestId, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};

fn main() {
    let turns = [
        // (prompt tokens, output tokens)
        (120usize, 180usize),
        (40, 220),
        (35, 160),
    ];

    for engine_cfg in [EngineConfig::pensieve(), EngineConfig::vllm()] {
        println!("=== {} ===", engine_cfg.name);
        let mut engine = SimServingEngine::builder(
            engine_cfg,
            ModelConfig::opt_13b(),
            HardwareSpec::azure_nc_a100(1),
        )
        .build();
        let conv = SessionId(1);
        let mut history = 0usize;
        let mut at = SimTime::ZERO;
        for (i, &(prompt, output)) in turns.iter().enumerate() {
            let request = Request::builder()
                .id(RequestId(i as u64))
                .session(conv)
                .arrival(at)
                .prompt_tokens(prompt)
                .output_tokens(output)
                .history_tokens(history)
                .build()
                .expect("turn is well-formed");
            engine.submit(request);
            engine.run_until_idle();
            let resp = engine.drain_responses().remove(0);
            println!(
                "turn {}: history {:>4} tokens | prefilled {:>4} | served from cache {:>4} | \
                 ttft {:>6.1} ms | latency {:>6.2} s",
                i + 1,
                history,
                resp.prefill_tokens,
                resp.cached_history_tokens,
                resp.ttft().as_millis(),
                resp.latency().as_secs()
            );
            history += prompt + output;
            // The user reads the response and thinks for a while.
            at = resp.finish + SimDuration::from_secs(20.0);
        }
        let stats = engine.cache_stats();
        println!(
            "cache: {} tokens reused from GPU, {} swapped in, {} recomputed\n",
            stats.gpu_hit_tokens, stats.swapped_in_tokens, stats.recomputed_tokens
        );
    }
    println!(
        "Pensieve prefills only each new prompt (plus the previous turn's final\n\
         token); the stateless baseline re-prefills the entire history every turn."
    );
}
