//! Tensor-parallel serving across real worker threads (paper Figure 7).
//!
//! Shards the tiny transformer Megatron-style across worker threads —
//! each owning its slice of the attention heads *and its own paged
//! KV-cache partition* (§4.4.2) — and serves a multi-turn conversation.
//! Outputs are verified token-for-token against the unsharded model, and
//! against the single-threaded tensor-parallel orchestrator (the
//! fixed-order all-reduce makes them bit-identical).
//!
//! Run with: `cargo run --release --example tensor_parallel`

use pensieve_core::workers::ThreadedTpEngine;
use pensieve_kernels::model::TinyModel;
use pensieve_kernels::ops::argmax;
use pensieve_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::tiny_llama();
    let model = TinyModel::new_random(&cfg, 2025);
    let mut engine = ThreadedTpEngine::new(&model, 2, 4, 256);
    println!(
        "model: {} ({} heads, {} KV heads) sharded over {} worker threads\n",
        cfg.name,
        cfg.num_heads,
        cfg.num_kv_heads,
        engine.num_shards()
    );

    let conv = 1u64;
    let mut transcript: Vec<u32> = Vec::new();
    for turn in 0..3u32 {
        let prompt: Vec<u32> = (0..6u32)
            .map(|i| (turn * 29 + i * 5 + 3) % cfg.vocab_size as u32)
            .collect();
        let generated = engine
            .serve_turn(conv, &prompt, 5)
            .expect("healthy fleet serves the turn");
        transcript.extend_from_slice(&prompt);

        // Stateless single-model reference.
        let mut ctx = transcript.clone();
        let mut expect = Vec::new();
        for _ in 0..5 {
            let logits = model.forward_dense(&ctx);
            let t = argmax(&logits) as u32;
            expect.push(t);
            ctx.push(t);
        }
        assert_eq!(generated, expect, "sharded output diverged");
        transcript.extend_from_slice(&generated);
        println!(
            "turn {}: prompt {:?} -> generated {:?}  (matches unsharded model)",
            turn + 1,
            prompt,
            generated
        );
    }
    println!(
        "\nEach worker stored only its KV-head slice of every token; the\n\
         scheduler did the replicated work and the two per-layer all-reduces."
    );
}
