//! Kernel numerics: the four Figure-12 attention kernels agree bitwise-ish.
//!
//! Builds a paged KV context spread across non-contiguous blocks, runs a
//! ragged batch (one decode request + one prefill request + one
//! sub-request pair sharing a context) through all four kernel
//! implementations, and prints the maximum pairwise deviation.
//!
//! Run with: `cargo run --release --example kernel_numerics`

use pensieve_kernels::attention::contiguous::fused_contiguous;
use pensieve_kernels::attention::copyout::copyout_attention;
use pensieve_kernels::attention::multi::paged_multi_token;
use pensieve_kernels::attention::multiround::multi_round_single_token;
use pensieve_kernels::paged::gather_contiguous;
use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(12);
    let cfg = AttnConfig::new(8, 2, 16); // GQA group size 4.
    let layout = KvLayout {
        num_kv_heads: 2,
        head_dim: 16,
        block_size: 8,
    };
    let mut pool = PagedKvCache::new(layout, 1, 64);
    let tf = layout.token_floats();
    let mut fill = |pool: &mut PagedKvCache, tokens: usize| {
        let mut t = BlockTable::new(8);
        for _ in 0..tokens {
            let (b, s) = t.append_token(pool).expect("pool sized");
            let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        t
    };
    let decode_ctx = fill(&mut pool, 37);
    let prefill_ctx = fill(&mut pool, 52);
    let shared_ctx = fill(&mut pool, 30);

    let mut rng = StdRng::seed_from_u64(13);
    // Query rows: 1 decode + 12 prefill + (6 recompute + 4 prompt).
    let total_q = 1 + 12 + 6 + 4;
    let q = Matrix::from_vec(
        total_q,
        cfg.q_width(),
        (0..total_q * cfg.q_width())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect(),
    );
    let seqs = [
        AttnSeq {
            q_start: 0,
            q_len: 1,
            context_len: 37,
            table: &decode_ctx,
        },
        AttnSeq {
            q_start: 1,
            q_len: 12,
            context_len: 52,
            table: &prefill_ctx,
        },
        // Sub-request pair (paper Figure 8d): a recomputed leading range
        // attending to itself, and the new prompt attending to everything.
        AttnSeq {
            q_start: 13,
            q_len: 6,
            context_len: 6,
            table: &shared_ctx,
        },
        AttnSeq {
            q_start: 19,
            q_len: 4,
            context_len: 30,
            table: &shared_ctx,
        },
    ];

    let layer = pool.layer(0);
    let pensieve = paged_multi_token(&cfg, &q, &layer, &seqs);
    let copyout = copyout_attention(&cfg, &q, &layer, &seqs);
    let multiround = multi_round_single_token(&cfg, &q, &layer, &seqs);

    // Ideal contiguous reference, sequence by sequence.
    let mut ideal = Matrix::zeros(total_q, cfg.q_width());
    for seq in &seqs {
        let (k, v) = gather_contiguous(&layer, seq.table, seq.context_len);
        let mut qs = Matrix::zeros(seq.q_len, cfg.q_width());
        for j in 0..seq.q_len {
            qs.row_mut(j).copy_from_slice(q.row(seq.q_start + j));
        }
        let out = fused_contiguous(&cfg, &qs, &k, &v);
        for j in 0..seq.q_len {
            ideal.row_mut(seq.q_start + j).copy_from_slice(out.row(j));
        }
    }

    println!("ragged batch: decode(q=1,ctx=37) + prefill(q=12,ctx=52) + sub-requests(6@6, 4@30)");
    println!(
        "max |pensieve - ideal|      = {:.2e}",
        pensieve.max_abs_diff(&ideal)
    );
    println!(
        "max |copyout  - ideal|      = {:.2e}",
        copyout.max_abs_diff(&ideal)
    );
    println!(
        "max |multiround - ideal|    = {:.2e}",
        multiround.max_abs_diff(&ideal)
    );
    assert!(pensieve.max_abs_diff(&ideal) < 1e-5);
    assert!(copyout.max_abs_diff(&ideal) < 1e-5);
    assert!(multiround.max_abs_diff(&ideal) < 1e-5);
    println!("\nAll four kernels agree on a ragged mixed prefill/decode batch with");
    println!("GQA and shared sub-request contexts over non-contiguous KV blocks.");
}
