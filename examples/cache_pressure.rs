//! Cache pressure anatomy: watch chunks move between tiers.
//!
//! Uses the *functional* engine — a tiny transformer doing real math over
//! the paged KV pool — with a deliberately small GPU pool and host stash,
//! so a handful of interleaved conversations force the full Pensieve
//! lifecycle: ahead-of-time eviction, swap-in on return, dropping under
//! stash pressure, and recomputation of dropped prefixes as sub-requests
//! (paper Figure 8). Every turn's output is verified against stateless
//! recomputation from scratch.
//!
//! Run with: `cargo run --release --example cache_pressure`

use pensieve_core::functional::{FunctionalConfig, FunctionalEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::tiny_llama();
    let mut engine = FunctionalEngine::new(
        &cfg,
        2026,
        FunctionalConfig {
            block_size: 4,
            pool_blocks: 16, // Tiny "GPU": 64 tokens.
            stash_blocks: 6, // Tiny "CPU": 24 tokens.
            free_watermark: 3,
        },
    );

    let conversations = [SessionId(1), SessionId(2), SessionId(3)];
    let vocab = cfg.vocab_size as u32;
    let mut verified = 0usize;
    for round in 0..3u32 {
        for (ci, &conv) in conversations.iter().enumerate() {
            let prompt: Vec<u32> = (0..6u32)
                .map(|i| (round * 37 + ci as u32 * 11 + i * 3) % vocab)
                .collect();
            let generated = engine.serve_turn(conv, &prompt, 4);

            // Verify against a from-scratch stateless decode.
            let mut full = engine.history(conv);
            full.truncate(full.len() - generated.len());
            let expect = engine.reference_decode(&full, 4);
            assert_eq!(generated, expect, "stateful output diverged!");
            verified += 1;

            let (out, inn, dropped, recomputed) = engine.cache_activity();
            println!(
                "round {} conv {}: generated {:?} | cumulative: {} blocks evicted, \
                 {} swapped in, {} dropped, {} tokens recomputed",
                round + 1,
                ci + 1,
                generated,
                out,
                inn,
                dropped,
                recomputed
            );
        }
    }
    let (out, inn, dropped, recomputed) = engine.cache_activity();
    println!(
        "\nAll {verified} turns produced token-identical output to stateless recompute,\n\
         across {out} evictions, {inn} swap-ins, {dropped} drops and {recomputed} recomputed tokens."
    );
    assert!(out > 0 && inn > 0, "expected cache pressure in this config");
}
