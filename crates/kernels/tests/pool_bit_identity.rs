//! Property tests: the pooled kernels are **bit-identical** to their
//! serial forms at every pool width.
//!
//! The eviction/merge correctness arguments (DESIGN.md §8) hinge on this:
//! partition results are merged sequentially in a fixed order, so the
//! pool's width is a latency knob and nothing else. The ungated entries
//! (`matmul_pool_ungated`, `paged_multi_token_pool_ungated`) are driven
//! directly so shapes far below the dispatch thresholds still exercise
//! the partitioned merge — the gated entries would just fall back to
//! serial on test-sized work, proving nothing.
//!
//! Shapes and element values are derived from proptest-drawn seeds via
//! the same seeded-RNG pattern the kernel unit tests use, keeping the
//! failure cases replayable from a single `u64`.

use pensieve_kernels::attention::multi::{
    paged_multi_token, paged_multi_token_pool, paged_multi_token_pool_ungated,
};
use pensieve_kernels::ops::{matmul, matmul_pool, matmul_pool_ungated};
use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every pool width the CI thread matrix sweeps.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect(),
    )
}

fn build_context(rng: &mut StdRng, kv: &mut PagedKvCache, tokens: usize) -> BlockTable {
    let mut table = BlockTable::new(kv.layout().block_size);
    let tf = kv.layout().token_floats();
    for _ in 0..tokens {
        let (b, s) = table.append_token(kv).expect("enough blocks");
        let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
        let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
        kv.write_token(0, b, s, &k, &v);
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GEMM: partitioned rows merged in order equal the serial product
    /// exactly, at every width, gated or not.
    #[test]
    fn gemm_pool_is_bit_identical_across_widths(
        seed in 0u64..u64::MAX,
        m in 1usize..48,
        k in 1usize..32,
        n in 1usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let serial = matmul(&a, &b);
        for width in WIDTHS {
            let pool = crossbeam::pool::Pool::new(width);
            prop_assert_eq!(
                &matmul_pool_ungated(&a, &b, &pool), &serial,
                "ungated GEMM differs at width {}", width
            );
            prop_assert_eq!(
                &matmul_pool(&a, &b, &pool), &serial,
                "gated GEMM differs at width {}", width
            );
        }
    }

    /// Attention: per-sequence partitions merged in sequence order equal
    /// the serial slab walk exactly, at every width, on ragged
    /// prefill/decode mixes.
    #[test]
    fn attention_pool_is_bit_identical_across_widths(
        seed in 0u64..u64::MAX,
        heads_pow in 0usize..3,     // 1, 2, 4 query heads per KV head
        kv_heads in 1usize..3,
        d in prop::sample::select(vec![2usize, 4, 8]),
        block_size in prop::sample::select(vec![2usize, 4, 8]),
        seq_shapes in prop::collection::vec((1usize..5, 0usize..24), 1..6),
    ) {
        let num_heads = kv_heads << heads_pow;
        let cfg = AttnConfig::new(num_heads, kv_heads, d);
        let layout = KvLayout { num_kv_heads: kv_heads, head_dim: d, block_size };
        let mut rng = StdRng::seed_from_u64(seed);
        // context_len >= q_len; blocks sized for the worst case.
        let shapes: Vec<(usize, usize)> = seq_shapes
            .iter()
            .map(|&(q_len, extra)| (q_len, q_len + extra))
            .collect();
        let total_blocks: usize = shapes
            .iter()
            .map(|&(_, ctx)| ctx.div_ceil(block_size) + 1)
            .sum();
        let mut kv = PagedKvCache::new(layout, 1, total_blocks + 2);
        let tables: Vec<BlockTable> = shapes
            .iter()
            .map(|&(_, ctx)| build_context(&mut rng, &mut kv, ctx))
            .collect();
        let total_q: usize = shapes.iter().map(|&(q_len, _)| q_len).sum();
        let q = random_matrix(&mut rng, total_q, cfg.q_width());
        let mut q_start = 0;
        let seqs: Vec<AttnSeq<'_>> = shapes
            .iter()
            .zip(&tables)
            .map(|(&(q_len, ctx), table)| {
                let s = AttnSeq { q_start, q_len, context_len: ctx, table };
                q_start += q_len;
                s
            })
            .collect();
        let layer = kv.layer(0);
        let serial = paged_multi_token(&cfg, &q, &layer, &seqs);
        for width in WIDTHS {
            let pool = crossbeam::pool::Pool::new(width);
            prop_assert_eq!(
                &paged_multi_token_pool_ungated(&cfg, &q, &layer, &seqs, &pool), &serial,
                "ungated attention differs at width {}", width
            );
            prop_assert_eq!(
                &paged_multi_token_pool(&cfg, &q, &layer, &seqs, &pool), &serial,
                "gated attention differs at width {}", width
            );
        }
    }
}
