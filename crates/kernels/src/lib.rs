//! CPU reference implementations of Pensieve's GPU kernels.
//!
//! The paper's key kernel contribution is *multi-token attention over a
//! non-contiguous (paged) KV cache* (§4.4). This crate implements that
//! kernel and every comparator from the paper's Figure 12 microbenchmark in
//! portable Rust, together with the paged KV storage they operate on and a
//! tiny-but-complete functional transformer used to validate the whole
//! serving stack end to end (stateful serving must produce bit-identical
//! logits to stateless recomputation).
//!
//! Modules:
//!
//! * [`tensor`] — a minimal dense `f32` matrix.
//! * [`ops`] — matmul, softmax, RMSNorm/LayerNorm, SiLU/ReLU, RoPE.
//! * [`paged`] — block pool, block tables, gather.
//! * [`attention`] — the five attention kernels.
//! * [`model`] — the functional transformer (OPT-style and Llama-style).

pub mod attention;
pub mod model;
pub mod ops;
pub mod paged;
pub mod tensor;
pub mod tp;

pub use attention::{AttnConfig, AttnSeq};
pub use paged::{BlockId, BlockTable, KvLayout, OutOfBlocks, PagedKvCache};
pub use tensor::Matrix;

// Re-exported because the `*_pool` kernel entry points take it by
// reference — facade users must be able to name the pool type without a
// direct dependency on the `crossbeam` shim.
pub use crossbeam::pool::Pool;
