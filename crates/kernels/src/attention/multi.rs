//! Pensieve's multi-token attention kernel over a paged KV cache (§4.4).
//!
//! Generalizes single-token PagedAttention to *multiple* query tokens per
//! request: the underlying computation becomes two matrix-matrix products
//! (paper Figure 9, right) with causal masking fused into the kernel, and
//! the batched form accepts a **ragged** query tensor — every request may
//! contribute a different number of query tokens, including 1, which is
//! exactly how Pensieve unifies prefill and generation in one invocation
//! (§4.4.1).
//!
//! The kernel streams each sequence's paged context exactly **once**,
//! updating the online-softmax state of every visible query row as each
//! KV block is visited. Reusing each loaded K/V row across all query
//! tokens is the CPU analogue of the data-reuse / tiling opportunity the
//! extra query dimension gives the GPU kernel; the multi-round straw-man
//! ([`super::multiround`]) forfeits it by re-walking the context per token.

use super::{dot, AttnConfig, AttnSeq, OnlineSoftmax};
use crate::ops::dot_lanes;
use crate::paged::KvLayerView;
use crate::tensor::Matrix;

fn check_batch(cfg: &AttnConfig, q: &Matrix, seqs: &[AttnSeq<'_>]) {
    assert_eq!(q.cols(), cfg.q_width());
    for seq in seqs {
        seq.check();
        assert!(
            seq.q_start + seq.q_len <= q.rows(),
            "query range beyond batch tensor"
        );
    }
}

/// Batched multi-token causal attention over paged KV.
///
/// `q` is the batch's concatenated query matrix
/// (`[total_q_tokens, num_heads * head_dim]`); each [`AttnSeq`] locates one
/// (sub-)request's rows and context. Returns a matrix of the same shape as
/// `q`, rows aligned with it.
///
/// Sub-requests sharing a block table (dropped-token recomputation,
/// §4.3.4) are simply passed as separate `seqs` entries; no copying occurs.
///
/// # Panics
///
/// Panics if any sequence fails [`AttnSeq::check`], query ranges exceed
/// `q`, or widths disagree with `cfg`.
///
/// # Examples
///
/// ```
/// use pensieve_kernels::attention::multi::paged_multi_token;
/// use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
///
/// let cfg = AttnConfig::new(2, 1, 4); // GQA: 2 query heads share 1 KV head.
/// let layout = KvLayout { num_kv_heads: 1, head_dim: 4, block_size: 2 };
/// let mut pool = PagedKvCache::new(layout, 1, 4);
/// let mut table = BlockTable::new(2);
/// for i in 0..5 {
///     let (b, s) = table.append_token(&mut pool).unwrap();
///     pool.write_token(0, b, s, &[i as f32; 4], &[1.0; 4]);
/// }
/// // A 2-token prefill chunk at the end of the 5-token context.
/// let q = Matrix::zeros(2, cfg.q_width());
/// let seq = AttnSeq { q_start: 0, q_len: 2, context_len: 5, table: &table };
/// let out = paged_multi_token(&cfg, &q, &pool.layer(0), &[seq]);
/// // Zero queries => uniform attention => output is the mean of V rows.
/// assert!((out[(0, 0)] - 1.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn paged_multi_token(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
) -> Matrix {
    check_batch(cfg, q, seqs);
    let mut out = Matrix::zeros(q.rows(), cfg.q_width());
    for seq in seqs {
        let local = attend_seq(cfg, q, layer, seq);
        merge_seq(seq, &local, &mut out);
    }
    out
}

/// Scalar reference for [`paged_multi_token`]: per-token `dot` calls, no
/// slab access, no score batching. Kept as the accumulation-order-defining
/// implementation the blocked and parallel kernels are tested against
/// bit-for-bit.
///
/// # Panics
///
/// Same conditions as [`paged_multi_token`].
#[must_use]
pub fn paged_multi_token_ref(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
) -> Matrix {
    check_batch(cfg, q, seqs);
    let mut out = Matrix::zeros(q.rows(), cfg.q_width());
    for seq in seqs {
        attend_one_seq_ref(cfg, q, layer, seq, &mut out);
    }
    out
}

/// [`paged_multi_token`] with its per-sequence partitions fanned out over
/// `threads` scoped workers.
///
/// Each partition is one (sub-)request: a disjoint band of output rows,
/// computed independently into a partition-local buffer by the same
/// blocked kernel, then merged back **sequentially in sequence order** —
/// so the result is bit-identical to the serial kernel (and to
/// [`paged_multi_token_ref`]) at every thread count, including when two
/// sub-requests name overlapping query rows (last writer wins in both).
///
/// # Panics
///
/// Same conditions as [`paged_multi_token`].
#[must_use]
pub fn paged_multi_token_par(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
    threads: usize,
) -> Matrix {
    if threads <= 1 {
        check_batch(cfg, q, seqs);
        return paged_multi_token(cfg, q, layer, seqs);
    }
    paged_multi_token_pool(cfg, q, layer, seqs, &crossbeam::pool::Pool::global(threads))
}

/// Minimum per-partition work (in score-accumulate units, see
/// [`attn_work_units`]) below which [`paged_multi_token_pool`] stays
/// serial. Calibrated on the committed bench shapes: a 32-way generation
/// batch at 1 k context (one query token per sequence, ~17 M units total)
/// splits into partitions far below this bound and used to *regress* at
/// 4 threads once dispatch overhead was charged, while a 256-token
/// prefill chunk at the same context (~134 M units) clears it at every
/// bench thread count. `tests::generation_shape_stays_serial` pins both
/// decisions.
pub const ATTN_MIN_PART_UNITS: u64 = 16 * 1024 * 1024;

/// Estimated work of an attention batch: one unit per (query row,
/// context position, output column) triple, summed over sequences. A
/// deliberately coarse FLOP proxy — relative cost across batch shapes is
/// all the serial-fallback decision needs.
#[must_use]
pub fn attn_work_units(cfg: &AttnConfig, seqs: &[AttnSeq<'_>]) -> u64 {
    seqs.iter()
        .map(|s| s.q_len as u64 * s.context_len as u64 * cfg.q_width() as u64)
        .sum()
}

/// [`paged_multi_token_par`] against an explicit persistent [`Pool`]
/// handle — the form the model layers use so every kernel call in an
/// engine shares one set of parked workers.
///
/// Serial fallback: when the per-partition share of the batch's
/// estimated work ([`attn_work_units`]` / threads`) falls below
/// [`ATTN_MIN_PART_UNITS`], the batch runs on the calling thread. Small
/// generation batches (one query token per sequence) land under the
/// threshold, so they never pay partition dispatch; prefill chunks clear
/// it and fan out. Both paths are bit-identical, so the decision affects
/// time only.
///
/// [`Pool`]: crossbeam::pool::Pool
///
/// # Panics
///
/// Same conditions as [`paged_multi_token`].
#[must_use]
pub fn paged_multi_token_pool(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
    pool: &crossbeam::pool::Pool,
) -> Matrix {
    let threads = pool.threads();
    if threads <= 1
        || seqs.is_empty()
        || attn_work_units(cfg, seqs) / (threads as u64) < ATTN_MIN_PART_UNITS
    {
        return paged_multi_token(cfg, q, layer, seqs);
    }
    paged_multi_token_pool_ungated(cfg, q, layer, seqs, pool)
}

/// [`paged_multi_token_pool`] without the work-size gate: always fans
/// one partition per sequence out over the pool (inline when the pool
/// is serial). The cross-width bit-identity property tests drive this
/// directly so batches far below [`ATTN_MIN_PART_UNITS`] still exercise
/// the partitioned merge; production callers want the gated entry.
///
/// [`Pool`]: crossbeam::pool::Pool
///
/// # Panics
///
/// Same conditions as [`paged_multi_token`].
#[must_use]
pub fn paged_multi_token_pool_ungated(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
    pool: &crossbeam::pool::Pool,
) -> Matrix {
    check_batch(cfg, q, seqs);
    let locals = pool.map_partitions(seqs.len(), |si| attend_seq(cfg, q, layer, &seqs[si]));
    let mut out = Matrix::zeros(q.rows(), cfg.q_width());
    for (si, local) in locals.iter().enumerate() {
        merge_seq(&seqs[si], local, &mut out);
    }
    out
}

/// Computes one sequence partition: the attention output of `seq`'s query
/// rows across **all** heads, returned as a `[q_len, q_width]`
/// partition-local matrix.
///
/// This is the blocked inner kernel: the context is streamed **once**,
/// each KV block read as a contiguous `[block_size, kv_width]` slab whose
/// every row serves all KV heads before the walk moves on (the reference
/// and the old per-KV-head partitioning re-walk the paged context per
/// head, multiplying DRAM traffic by `num_kv_heads`). Per slot and KV
/// head, one loaded K row scores all visible (query row, grouped head)
/// pairs at SIMD width via [`dot_lanes`] over a per-KV-head transposed
/// query pack. Each softmax state still receives its scores one per
/// visible position in ascending-`t` order with [`dot`]'s exact
/// accumulation order, so outputs are bit-identical to the scalar
/// reference.
fn attend_seq(cfg: &AttnConfig, q: &Matrix, layer: &KvLayerView<'_>, seq: &AttnSeq<'_>) -> Matrix {
    let d = cfg.head_dim;
    let tf = layer.layout().token_floats();
    let block_size = layer.layout().block_size;
    let num_blocks = seq.context_len.div_ceil(block_size);
    let group = cfg.group_size();
    // Context position of query row j is offset + j.
    let offset = seq.context_len - seq.q_len;

    // Per-KV-head transposed query packs — `qt[kvh][i*np + j*group + g]`
    // is element `i` of query row `j`, head `kvh*group + g`. Lanes are
    // ordered by j then g so a causal lower bound on j is a suffix of the
    // lane range, and padded to the SIMD chunk width (pad lanes hold zero
    // queries and their scores are never read). The transposed layout
    // lets [`dot_lanes`] score every pair against one loaded K row at
    // SIMD width while each lane keeps [`dot`]'s accumulation order.
    let n = seq.q_len * group;
    let np = n.next_multiple_of(crate::ops::SCORE_LANES);
    let mut qt = vec![0.0f32; cfg.num_kv_heads * d * np];
    for j in 0..seq.q_len {
        let qrow = q.row(seq.q_start + j);
        for h in 0..cfg.num_heads {
            let (kvh, g) = (h / group, h % group);
            let pack = &mut qt[kvh * d * np..(kvh + 1) * d * np];
            for (i, &v) in qrow[h * d..(h + 1) * d].iter().enumerate() {
                pack[i * np + j * group + g] = v;
            }
        }
    }
    // States for lane `j*group + g` of each KV head, KV-head-major.
    let mut states: Vec<OnlineSoftmax> = (0..cfg.num_kv_heads * n)
        .map(|_| OnlineSoftmax::new(d))
        .collect();
    let mut scores = vec![0.0f32; np];

    for bi in 0..num_blocks {
        let b = seq.table.block_at(bi);
        let kslab = layer.k_block(b);
        let vslab = layer.v_block(b);
        let t0 = bi * block_size;
        let slots = block_size.min(seq.context_len - t0);
        for slot in 0..slots {
            let t = t0 + slot;
            // Lanes that see position t: offset + j >= t. All n lanes are
            // scored (the masked prefix is a few lanes on the last `q_len`
            // positions only); masked lanes are never folded into a state.
            let lo = t.saturating_sub(offset) * group;
            let ktoken = &kslab[slot * tf..(slot + 1) * tf];
            let vtoken = &vslab[slot * tf..(slot + 1) * tf];
            for kvh in 0..cfg.num_kv_heads {
                let krow = &ktoken[kvh * d..(kvh + 1) * d];
                let vrow = &vtoken[kvh * d..(kvh + 1) * d];
                dot_lanes(krow, &qt[kvh * d * np..(kvh + 1) * d * np], &mut scores);
                let head_states = &mut states[kvh * n..(kvh + 1) * n];
                for (state, &s) in head_states[lo..].iter_mut().zip(&scores[lo..]) {
                    state.update(s * cfg.scale, vrow);
                }
            }
        }
    }

    let mut local = Matrix::zeros(seq.q_len, cfg.q_width());
    for j in 0..seq.q_len {
        let orow = local.row_mut(j);
        for h in 0..cfg.num_heads {
            let (kvh, g) = (h / group, h % group);
            states[kvh * n + j * group + g].finish(&mut orow[h * d..(h + 1) * d]);
        }
    }
    local
}

/// Writes one partition-local result into its band of output rows.
fn merge_seq(seq: &AttnSeq<'_>, local: &Matrix, out: &mut Matrix) {
    for j in 0..seq.q_len {
        out.row_mut(seq.q_start + j).copy_from_slice(local.row(j));
    }
}

/// Streams one sequence's context, updating all its query rows (scalar
/// reference path).
fn attend_one_seq_ref(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seq: &AttnSeq<'_>,
    out: &mut Matrix,
) {
    let d = cfg.head_dim;
    let block_size = layer.layout().block_size;
    let num_blocks = seq.context_len.div_ceil(block_size);
    // Context position of query row j is offset + j.
    let offset = seq.context_len - seq.q_len;

    // Online-softmax state for every (query row, query head).
    let mut states: Vec<OnlineSoftmax> = (0..seq.q_len * cfg.num_heads)
        .map(|_| OnlineSoftmax::new(d))
        .collect();

    let mut t = 0;
    'outer: for bi in 0..num_blocks {
        let b = seq.table.block_at(bi);
        for slot in 0..block_size {
            if t >= seq.context_len {
                break 'outer;
            }
            // Query rows that see position t: offset + j >= t.
            let j_lo = t.saturating_sub(offset);
            if j_lo < seq.q_len {
                for kvh in 0..cfg.num_kv_heads {
                    let krow = layer.k_head(b, slot, kvh);
                    let vrow = layer.v_head(b, slot, kvh);
                    let h_lo = kvh * cfg.group_size();
                    let h_hi = h_lo + cfg.group_size();
                    // One K/V load serves every visible query row and every
                    // query head in the GQA group.
                    for j in j_lo..seq.q_len {
                        let qrow = q.row(seq.q_start + j);
                        for h in h_lo..h_hi {
                            let score = dot(&qrow[h * d..(h + 1) * d], krow) * cfg.scale;
                            states[j * cfg.num_heads + h].update(score, vrow);
                        }
                    }
                }
            }
            t += 1;
        }
    }

    for j in 0..seq.q_len {
        let orow = out.row_mut(seq.q_start + j);
        for h in 0..cfg.num_heads {
            states[j * cfg.num_heads + h].finish(&mut orow[h * d..(h + 1) * d]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_attention;
    use super::*;
    use crate::paged::{gather_contiguous, BlockTable, KvLayout, PagedKvCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_context(rng: &mut StdRng, pool: &mut PagedKvCache, tokens: usize) -> BlockTable {
        let mut table = BlockTable::new(pool.layout().block_size);
        let tf = pool.layout().token_floats();
        for _ in 0..tokens {
            let (b, s) = table.append_token(pool).unwrap();
            let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        table
    }

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        )
    }

    /// Pins the serial-fallback decision on the committed bench shapes
    /// (`bench_kernels`: 32 sequences, 1 k context, 8 heads x 64 dim):
    /// the one-query-per-sequence generation batch must stay serial at
    /// every bench thread count — parallel dispatch used to *regress*
    /// it — while the 8-query prefill batch must fan out.
    #[test]
    fn generation_shape_stays_serial() {
        let cfg = AttnConfig::new(8, 8, 64); // q_width 512, as benched
        let table = BlockTable::new(16);
        let gen: Vec<AttnSeq<'_>> = (0..32)
            .map(|i| AttnSeq {
                q_start: i,
                q_len: 1,
                context_len: 1024,
                table: &table,
            })
            .collect();
        let gen_units = attn_work_units(&cfg, &gen);
        let prefill: Vec<AttnSeq<'_>> = (0..32)
            .map(|i| AttnSeq {
                q_start: i * 8,
                q_len: 8,
                context_len: 1024,
                table: &table,
            })
            .collect();
        let prefill_units = attn_work_units(&cfg, &prefill);
        for threads in [2u64, 4, 8] {
            assert!(
                gen_units / threads < ATTN_MIN_PART_UNITS,
                "generation batch must fall back to serial at {threads} threads"
            );
            assert!(
                prefill_units / threads >= ATTN_MIN_PART_UNITS,
                "prefill batch must fan out at {threads} threads"
            );
        }
    }

    /// A batch under the work threshold must never touch the pool (zero
    /// dispatch overhead — the pool's task counter stays put) and must
    /// still produce the serial kernel's exact bits.
    #[test]
    fn small_batches_never_touch_the_pool() {
        let mut rng = StdRng::seed_from_u64(29);
        let cfg = AttnConfig::new(2, 2, 4);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 4,
            block_size: 4,
        };
        let mut kv = PagedKvCache::new(layout, 1, 32);
        let tables: Vec<BlockTable> = (0..4)
            .map(|_| build_context(&mut rng, &mut kv, 12))
            .collect();
        let q = random_matrix(&mut rng, 4, cfg.q_width());
        let seqs: Vec<AttnSeq<'_>> = tables
            .iter()
            .enumerate()
            .map(|(i, table)| AttnSeq {
                q_start: i,
                q_len: 1,
                context_len: 12,
                table,
            })
            .collect();
        let pool = crossbeam::pool::Pool::new(4);
        let before = pool.stats().tasks_total;
        let got = paged_multi_token_pool(&cfg, &q, &kv.layer(0), &seqs, &pool);
        assert_eq!(
            pool.stats().tasks_total,
            before,
            "a sub-threshold batch must bypass pool dispatch entirely"
        );
        let serial = paged_multi_token(&cfg, &q, &kv.layer(0), &seqs);
        assert_eq!(got, serial, "fallback is bit-identical");
    }

    #[test]
    fn matches_naive_across_shapes() {
        let mut rng = StdRng::seed_from_u64(21);
        // (q_len, ctx, heads, kv_heads, d, block_size)
        for &(q_len, ctx, heads, kv_heads, d, bs) in &[
            (1usize, 7usize, 2usize, 2usize, 4usize, 4usize),
            (4, 4, 2, 2, 4, 4),    // Pure self-attention prefill.
            (3, 19, 4, 1, 8, 4),   // GQA, ragged block tail.
            (8, 40, 8, 2, 16, 16), // Paper micro-bench shape (scaled).
            (16, 16, 1, 1, 2, 2),
        ] {
            let cfg = AttnConfig::new(heads, kv_heads, d);
            let layout = KvLayout {
                num_kv_heads: kv_heads,
                head_dim: d,
                block_size: bs,
            };
            let mut pool = PagedKvCache::new(layout, 1, ctx.div_ceil(bs) + 2);
            let table = build_context(&mut rng, &mut pool, ctx);
            let q = random_matrix(&mut rng, q_len, cfg.q_width());
            let seq = AttnSeq {
                q_start: 0,
                q_len,
                context_len: ctx,
                table: &table,
            };
            let got = paged_multi_token(&cfg, &q, &pool.layer(0), &[seq]);
            let (k, v) = gather_contiguous(&pool.layer(0), &table, ctx);
            let expect = naive_attention(&cfg, &q, &k, &v);
            assert!(
                got.max_abs_diff(&expect) < 1e-5,
                "mismatch q={q_len} ctx={ctx} h={heads}/{kv_heads} d={d} bs={bs}"
            );
        }
    }

    /// A ragged batch mixing prefill and decode requests (paper Figure 6).
    #[test]
    fn ragged_batch_mixing_prefill_and_decode() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = AttnConfig::new(4, 2, 8);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 8,
            block_size: 4,
        };
        let mut pool = PagedKvCache::new(layout, 1, 64);
        // Request 0: decode, 1 query token, context 9 (spans chunks 3,1 in
        // the figure; physical scatter comes free from allocation order).
        let t0 = build_context(&mut rng, &mut pool, 9);
        // Request 1: prefill, 5 query tokens, context 20.
        let t1 = build_context(&mut rng, &mut pool, 20);
        let q = random_matrix(&mut rng, 6, cfg.q_width());
        let seqs = [
            AttnSeq {
                q_start: 0,
                q_len: 1,
                context_len: 9,
                table: &t0,
            },
            AttnSeq {
                q_start: 1,
                q_len: 5,
                context_len: 20,
                table: &t1,
            },
        ];
        let got = paged_multi_token(&cfg, &q, &pool.layer(0), &seqs);

        // Check each request against naive on its own gathered context.
        let (k0, v0) = gather_contiguous(&pool.layer(0), &t0, 9);
        let q0 = Matrix::from_vec(1, cfg.q_width(), q.row(0).to_vec());
        let e0 = naive_attention(&cfg, &q0, &k0, &v0);
        for c in 0..cfg.q_width() {
            assert!((got[(0, c)] - e0[(0, c)]).abs() < 1e-5);
        }
        let (k1, v1) = gather_contiguous(&pool.layer(0), &t1, 20);
        let mut q1 = Matrix::zeros(5, cfg.q_width());
        for j in 0..5 {
            q1.row_mut(j).copy_from_slice(q.row(1 + j));
        }
        let e1 = naive_attention(&cfg, &q1, &k1, &v1);
        for j in 0..5 {
            for c in 0..cfg.q_width() {
                assert!((got[(1 + j, c)] - e1[(j, c)]).abs() < 1e-5);
            }
        }
    }

    /// Sub-requests sharing one context (dropped-token recomputation,
    /// Figure 8d): the recomputed leading range attends to itself, the new
    /// prompt attends to the entire context — results must equal a single
    /// contiguous-query request covering both ranges.
    #[test]
    fn sub_requests_share_context() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = AttnConfig::new(2, 2, 4);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 4,
            block_size: 4,
        };
        // Context: 6 dropped-and-recomputed tokens, 8 cached tokens,
        // 5 new prompt tokens -> 19 total.
        let (dropped, cached, prompt) = (6usize, 8usize, 5usize);
        let ctx = dropped + cached + prompt;
        let mut pool = PagedKvCache::new(layout, 1, 16);
        let table = build_context(&mut rng, &mut pool, ctx);
        // Query rows: the dropped range then the prompt range, concatenated
        // (Figure 8a). The middle (cached) range contributes no queries.
        let q = random_matrix(&mut rng, dropped + prompt, cfg.q_width());
        let seqs = [
            AttnSeq {
                q_start: 0,
                q_len: dropped,
                context_len: dropped,
                table: &table,
            },
            AttnSeq {
                q_start: dropped,
                q_len: prompt,
                context_len: ctx,
                table: &table,
            },
        ];
        let got = paged_multi_token(&cfg, &q, &pool.layer(0), &seqs);

        let (k, v) = gather_contiguous(&pool.layer(0), &table, ctx);
        // Expected: dropped range self-attention over positions 0..dropped.
        let kd = Matrix::from_vec(
            dropped,
            cfg.kv_width(),
            (0..dropped).flat_map(|t| k.row(t).to_vec()).collect(),
        );
        let vd = Matrix::from_vec(
            dropped,
            cfg.kv_width(),
            (0..dropped).flat_map(|t| v.row(t).to_vec()).collect(),
        );
        let qd = Matrix::from_vec(
            dropped,
            cfg.q_width(),
            (0..dropped).flat_map(|j| q.row(j).to_vec()).collect(),
        );
        let ed = naive_attention(&cfg, &qd, &kd, &vd);
        for j in 0..dropped {
            for c in 0..cfg.q_width() {
                assert!((got[(j, c)] - ed[(j, c)]).abs() < 1e-5, "dropped row {j}");
            }
        }
        // Expected: prompt range attends to the whole context.
        let qp = Matrix::from_vec(
            prompt,
            cfg.q_width(),
            (0..prompt)
                .flat_map(|j| q.row(dropped + j).to_vec())
                .collect(),
        );
        let ep = naive_attention(&cfg, &qp, &k, &v);
        for j in 0..prompt {
            for c in 0..cfg.q_width() {
                assert!(
                    (got[(dropped + j, c)] - ep[(j, c)]).abs() < 1e-5,
                    "prompt row {j}"
                );
            }
        }
    }

    /// §4.4.2: tensor parallelism shards KV heads across workers; each
    /// worker runs the same kernel on its shard and the concatenated
    /// outputs equal the unsharded computation. (Sharding is along the
    /// feature dimension, so it is invisible to eviction decisions.)
    #[test]
    fn head_sharding_matches_unsharded() {
        let mut rng = StdRng::seed_from_u64(24);
        let heads = 8usize;
        let kv_heads = 4usize;
        let d = 8usize;
        let shards = 2usize;
        let (q_len, ctx) = (5usize, 21usize);
        let cfg = AttnConfig::new(heads, kv_heads, d);
        let layout = KvLayout {
            num_kv_heads: kv_heads,
            head_dim: d,
            block_size: 4,
        };
        let mut pool = PagedKvCache::new(layout, 1, 8);
        let table = build_context(&mut rng, &mut pool, ctx);
        let q = random_matrix(&mut rng, q_len, cfg.q_width());
        let seq = AttnSeq {
            q_start: 0,
            q_len,
            context_len: ctx,
            table: &table,
        };
        let full = paged_multi_token(&cfg, &q, &pool.layer(0), &[seq]);

        // Per shard: slice this shard's query heads and KV heads into
        // shard-local pools/matrices and run the same kernel.
        let shard_cfg = AttnConfig::new(heads / shards, kv_heads / shards, d);
        let shard_layout = KvLayout {
            num_kv_heads: kv_heads / shards,
            head_dim: d,
            block_size: 4,
        };
        for shard in 0..shards {
            let mut spool = PagedKvCache::new(shard_layout, 1, 8);
            let mut stable = BlockTable::new(4);
            for t in 0..ctx {
                let (b, s) = stable.append_token(&mut spool).unwrap();
                let (fb, fs) = table.position(t);
                let view = pool.layer(0);
                let mut k = Vec::new();
                let mut v = Vec::new();
                for h in 0..kv_heads / shards {
                    k.extend_from_slice(view.k_head(fb, fs, shard * kv_heads / shards + h));
                    v.extend_from_slice(view.v_head(fb, fs, shard * kv_heads / shards + h));
                }
                spool.write_token(0, b, s, &k, &v);
            }
            let hpw = heads / shards; // Query heads per worker.
            let mut sq = Matrix::zeros(q_len, shard_cfg.q_width());
            for j in 0..q_len {
                let src = q.row(j);
                sq.row_mut(j)
                    .copy_from_slice(&src[shard * hpw * d..(shard + 1) * hpw * d]);
            }
            let sseq = AttnSeq {
                q_start: 0,
                q_len,
                context_len: ctx,
                table: &stable,
            };
            let out = paged_multi_token(&shard_cfg, &sq, &spool.layer(0), &[sseq]);
            for j in 0..q_len {
                for c in 0..shard_cfg.q_width() {
                    let full_c = shard * hpw * d + c;
                    assert!(
                        (out[(j, c)] - full[(j, full_c)]).abs() < 1e-5,
                        "shard {shard} row {j} col {c} diverged"
                    );
                }
            }
        }
    }

    /// The blocked kernel and its parallel fan-out must be *bit-identical*
    /// to the scalar reference, across ragged batches, GQA ratios, block
    /// sizes, and the shared-table sub-request layout (§4.3.4).
    #[test]
    fn blocked_and_parallel_bit_identical_to_ref() {
        let mut rng = StdRng::seed_from_u64(25);
        for &(heads, kv_heads, d, bs) in &[
            (4usize, 2usize, 8usize, 4usize),
            (8, 2, 16, 16),
            (6, 1, 4, 8),
            (3, 3, 32, 2),
        ] {
            let cfg = AttnConfig::new(heads, kv_heads, d);
            let layout = KvLayout {
                num_kv_heads: kv_heads,
                head_dim: d,
                block_size: bs,
            };
            let mut pool = PagedKvCache::new(layout, 1, 128);
            // Ragged batch: decode, prefill chunk, and two sub-requests
            // sharing one table (dropped-token recomputation).
            let t0 = build_context(&mut rng, &mut pool, 9);
            let t1 = build_context(&mut rng, &mut pool, 33);
            let shared = build_context(&mut rng, &mut pool, 21);
            let (dropped, prompt) = (6usize, 4usize);
            let q = random_matrix(&mut rng, 1 + 8 + dropped + prompt, cfg.q_width());
            let seqs = [
                AttnSeq {
                    q_start: 0,
                    q_len: 1,
                    context_len: 9,
                    table: &t0,
                },
                AttnSeq {
                    q_start: 1,
                    q_len: 8,
                    context_len: 33,
                    table: &t1,
                },
                AttnSeq {
                    q_start: 9,
                    q_len: dropped,
                    context_len: dropped,
                    table: &shared,
                },
                AttnSeq {
                    q_start: 9 + dropped,
                    q_len: prompt,
                    context_len: 21,
                    table: &shared,
                },
            ];
            let reference = paged_multi_token_ref(&cfg, &q, &pool.layer(0), &seqs);
            let blocked = paged_multi_token(&cfg, &q, &pool.layer(0), &seqs);
            assert_eq!(blocked, reference, "blocked != ref h={heads}/{kv_heads}");
            for threads in [1usize, 2, 3, 4] {
                let par = paged_multi_token_par(&cfg, &q, &pool.layer(0), &seqs, threads);
                assert_eq!(par, reference, "par({threads}) != ref h={heads}/{kv_heads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "block table")]
    fn rejects_context_beyond_table() {
        let cfg = AttnConfig::new(1, 1, 2);
        let table = BlockTable::new(4);
        let layout = KvLayout {
            num_kv_heads: 1,
            head_dim: 2,
            block_size: 4,
        };
        let pool = PagedKvCache::new(layout, 1, 1);
        let q = Matrix::zeros(1, 2);
        let seq = AttnSeq {
            q_start: 0,
            q_len: 1,
            context_len: 5,
            table: &table,
        };
        let _ = paged_multi_token(&cfg, &q, &pool.layer(0), &[seq]);
    }
}
