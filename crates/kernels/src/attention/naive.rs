//! Naive reference attention: materializes the full score matrix.
//!
//! Used as ground truth by every other kernel's tests. O(q·l) memory,
//! two-pass softmax — deliberately the most obviously-correct formulation.

use super::AttnConfig;
use crate::ops::softmax_row;
use crate::tensor::Matrix;

/// Causal attention of `q` (`[q_len, num_heads * head_dim]`) over
/// contiguous `k`/`v` (`[context_len, num_kv_heads * head_dim]`).
///
/// Query token `j` attends to context positions
/// `0 ..= context_len - q_len + j`. Returns `[q_len, num_heads * head_dim]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `q_len > context_len`.
#[must_use]
pub fn naive_attention(cfg: &AttnConfig, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    let q_len = q.rows();
    let ctx = k.rows();
    assert!(q_len <= ctx, "query longer than context");
    assert_eq!(q.cols(), cfg.q_width());
    assert_eq!(k.cols(), cfg.kv_width());
    assert_eq!(v.cols(), cfg.kv_width());
    assert_eq!(k.rows(), v.rows());

    let d = cfg.head_dim;
    let offset = ctx - q_len;
    let mut out = Matrix::zeros(q_len, cfg.q_width());

    for h in 0..cfg.num_heads {
        let kvh = cfg.kv_head_for(h);
        for j in 0..q_len {
            let visible = offset + j + 1;
            let qrow = &q.row(j)[h * d..(h + 1) * d];
            let mut scores = vec![0.0f32; visible];
            for (t, sc) in scores.iter_mut().enumerate() {
                let krow = &k.row(t)[kvh * d..(kvh + 1) * d];
                *sc = qrow.iter().zip(krow).map(|(a, b)| a * b).sum::<f32>() * cfg.scale;
            }
            softmax_row(&mut scores);
            let orow = &mut out.row_mut(j)[h * d..(h + 1) * d];
            for (t, &p) in scores.iter().enumerate() {
                let vrow = &v.row(t)[kvh * d..(kvh + 1) * d];
                for (o, &vv) in orow.iter_mut().zip(vrow) {
                    *o += p * vv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With a single key the output is exactly that key's value row.
    #[test]
    fn single_token_returns_value() {
        let cfg = AttnConfig::new(1, 1, 2);
        let q = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let k = Matrix::from_vec(1, 2, vec![0.3, 0.7]);
        let v = Matrix::from_vec(1, 2, vec![5.0, -2.0]);
        let out = naive_attention(&cfg, &q, &k, &v);
        assert_eq!(out.as_slice(), &[5.0, -2.0]);
    }

    /// Uniform scores average the visible values; causality limits them.
    #[test]
    fn causal_masking_limits_visibility() {
        let cfg = AttnConfig::new(1, 1, 1);
        // Zero queries -> all scores 0 -> uniform weights over visible keys.
        let q = Matrix::zeros(2, 1);
        let k = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let v = Matrix::from_vec(3, 1, vec![3.0, 6.0, 9.0]);
        let out = naive_attention(&cfg, &q, &k, &v);
        // Query 0 sees positions 0..=1 (offset 1): mean(3,6) = 4.5.
        assert!((out[(0, 0)] - 4.5).abs() < 1e-6);
        // Query 1 sees all three: mean = 6.
        assert!((out[(1, 0)] - 6.0).abs() < 1e-6);
    }

    /// GQA: both query heads in a group read the same KV head.
    #[test]
    fn gqa_heads_share_kv() {
        let cfg = AttnConfig::new(2, 1, 2);
        let q = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let k = Matrix::from_vec(1, 2, vec![0.2, 0.8]);
        let v = Matrix::from_vec(1, 2, vec![4.0, 7.0]);
        let out = naive_attention(&cfg, &q, &k, &v);
        assert_eq!(&out.row(0)[0..2], &out.row(0)[2..4]);
    }

    #[test]
    #[should_panic(expected = "query longer than context")]
    fn rejects_query_longer_than_context() {
        let cfg = AttnConfig::new(1, 1, 1);
        let q = Matrix::zeros(3, 1);
        let k = Matrix::zeros(2, 1);
        let v = Matrix::zeros(2, 1);
        let _ = naive_attention(&cfg, &q, &k, &v);
    }
}
