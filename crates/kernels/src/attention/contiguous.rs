//! Fused attention over a *contiguous* KV cache — the Figure-12 "Ideal".
//!
//! Single streaming pass over the context using online softmax (never
//! materializing the score matrix), with causal masking fused in. This is
//! the performance ceiling the paged multi-token kernel is compared
//! against: same algorithm, but K/V indexing is direct instead of going
//! through a block table.

use super::{dot, AttnConfig, OnlineSoftmax};
use crate::tensor::Matrix;

/// Fused causal attention over contiguous `k`/`v`.
///
/// Shapes and masking semantics are identical to
/// [`naive_attention`](super::naive::naive_attention): `q` is
/// `[q_len, num_heads * head_dim]`, `k`/`v` are
/// `[context_len, num_kv_heads * head_dim]`, and query token `j` sees
/// positions `0 ..= context_len - q_len + j`.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `q_len > context_len`.
#[must_use]
pub fn fused_contiguous(cfg: &AttnConfig, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    let q_len = q.rows();
    let ctx = k.rows();
    assert!(q_len <= ctx, "query longer than context");
    assert_eq!(q.cols(), cfg.q_width());
    assert_eq!(k.cols(), cfg.kv_width());
    assert_eq!(v.cols(), cfg.kv_width());
    assert_eq!(k.rows(), v.rows());

    let d = cfg.head_dim;
    let offset = ctx - q_len;
    let mut out = Matrix::zeros(q_len, cfg.q_width());

    // Per (query row, head) online-softmax state, streamed over the
    // context so each K/V row is read exactly once.
    let mut states: Vec<OnlineSoftmax> = (0..q_len * cfg.num_heads)
        .map(|_| OnlineSoftmax::new(d))
        .collect();

    for t in 0..ctx {
        let krow = k.row(t);
        let vrow = v.row(t);
        // Query rows that can see position t: j >= t - offset.
        let j_lo = t.saturating_sub(offset);
        for j in j_lo..q_len {
            let qrow = q.row(j);
            for h in 0..cfg.num_heads {
                let kvh = cfg.kv_head_for(h);
                let score =
                    dot(&qrow[h * d..(h + 1) * d], &krow[kvh * d..(kvh + 1) * d]) * cfg.scale;
                states[j * cfg.num_heads + h].update(score, &vrow[kvh * d..(kvh + 1) * d]);
            }
        }
    }

    for j in 0..q_len {
        let orow = out.row_mut(j);
        for h in 0..cfg.num_heads {
            states[j * cfg.num_heads + h].finish(&mut orow[h * d..(h + 1) * d]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_attention;
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        )
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(q_len, ctx, heads, kv_heads, d) in &[
            (1usize, 1usize, 1usize, 1usize, 4usize),
            (1, 17, 4, 4, 8),
            (5, 5, 2, 2, 4),
            (8, 33, 8, 2, 16),
            (16, 64, 4, 1, 8),
        ] {
            let cfg = AttnConfig::new(heads, kv_heads, d);
            let q = random_matrix(&mut rng, q_len, cfg.q_width());
            let k = random_matrix(&mut rng, ctx, cfg.kv_width());
            let v = random_matrix(&mut rng, ctx, cfg.kv_width());
            let expect = naive_attention(&cfg, &q, &k, &v);
            let got = fused_contiguous(&cfg, &q, &k, &v);
            assert!(
                got.max_abs_diff(&expect) < 1e-5,
                "mismatch for q={q_len} ctx={ctx} heads={heads}/{kv_heads} d={d}"
            );
        }
    }

    /// Changing a key the mask hides must not change the output.
    #[test]
    fn masked_positions_are_ignored() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = AttnConfig::new(2, 2, 4);
        let q = random_matrix(&mut rng, 3, cfg.q_width());
        let k = random_matrix(&mut rng, 6, cfg.kv_width());
        let v = random_matrix(&mut rng, 6, cfg.kv_width());
        let base = fused_contiguous(&cfg, &q, &k, &v);
        // Query row 0 sees positions 0..=3; perturb positions 4 and 5.
        let mut k2 = k.clone();
        let mut v2 = v.clone();
        for t in 4..6 {
            for x in k2.row_mut(t) {
                *x += 100.0;
            }
            for x in v2.row_mut(t) {
                *x -= 100.0;
            }
        }
        let alt = fused_contiguous(&cfg, &q, &k2, &v2);
        for c in 0..cfg.q_width() {
            assert!(
                (base[(0, c)] - alt[(0, c)]).abs() < 1e-6,
                "row 0 leaked future"
            );
        }
    }
}
