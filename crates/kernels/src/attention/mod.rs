//! Attention kernels over contiguous and paged (non-contiguous) KV caches.
//!
//! This module reproduces the four implementations compared in the paper's
//! Figure 12, plus a naive ground-truth reference:
//!
//! | Kernel | KV layout | Queries/request | Paper role |
//! |---|---|---|---|
//! | [`naive::naive_attention`] | contiguous | multi | ground truth for tests |
//! | [`contiguous::fused_contiguous`] | contiguous | multi | "Ideal" (blue bar) |
//! | [`copyout::copyout_attention`] | paged → copied | multi | "CopyOut+Attention" (orange) |
//! | [`multiround::multi_round_single_token`] | paged | 1 per round | "Multi-round PagedAttention" (green) |
//! | [`multi::paged_multi_token`] | paged | multi | **Pensieve's kernel** |
//!
//! All kernels implement *causal* attention for a query chunk positioned at
//! the **end** of its context: query token `j` (0-based within a chunk of
//! `q_len`) attends to context positions `0 ..= context_len - q_len + j`.
//! Setting `q_len == context_len` gives standard self-attention prefill;
//! `q_len == 1` gives the generation step. The paper's "sub-request" trick
//! for recomputed dropped tokens (§4.3.4, Figure 8) maps onto this rule by
//! issuing two [`AttnSeq`] entries that share one block table with
//! different `context_len`s.
//!
//! Grouped-Query Attention is supported throughout: query head `h` reads
//! KV head `h / (num_heads / num_kv_heads)`.

pub mod contiguous;
pub mod copyout;
pub mod multi;
pub mod multiround;
pub mod naive;
pub mod single;

use crate::paged::BlockTable;

/// Head geometry shared by all attention kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttnConfig {
    /// Number of query heads.
    pub num_heads: usize,
    /// Number of KV heads (`<= num_heads`, divides it).
    pub num_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Score scale, conventionally `1 / sqrt(head_dim)`.
    pub scale: f32,
}

impl AttnConfig {
    /// Creates a config with the conventional `1/sqrt(head_dim)` scale.
    ///
    /// # Panics
    ///
    /// Panics if `num_kv_heads` does not divide `num_heads`.
    #[must_use]
    pub fn new(num_heads: usize, num_kv_heads: usize, head_dim: usize) -> Self {
        assert!(
            num_kv_heads > 0 && num_heads.is_multiple_of(num_kv_heads),
            "kv heads must divide query heads"
        );
        AttnConfig {
            num_heads,
            num_kv_heads,
            head_dim,
            scale: 1.0 / (head_dim as f32).sqrt(),
        }
    }

    /// GQA group size (query heads per KV head).
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.num_heads / self.num_kv_heads
    }

    /// KV head serving query head `h`.
    #[must_use]
    pub fn kv_head_for(&self, h: usize) -> usize {
        h / self.group_size()
    }

    /// Width of a query/output row: `num_heads * head_dim`.
    #[must_use]
    pub fn q_width(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// Width of a K/V row: `num_kv_heads * head_dim`.
    #[must_use]
    pub fn kv_width(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }
}

/// One (sub-)request in a batched paged-attention invocation.
///
/// `q_start`/`q_len` locate the request's query rows inside the batch's
/// concatenated query matrix; `table` and `context_len` describe the KV
/// context it attends to. Two sub-requests may share the same `table`
/// (dropped-token recomputation, §4.3.4).
#[derive(Debug, Clone, Copy)]
pub struct AttnSeq<'a> {
    /// First row of this request inside the batch query matrix.
    pub q_start: usize,
    /// Number of query tokens (>= 1 for prefill chunks, == 1 for decode).
    pub q_len: usize,
    /// Context length visible to the *last* query token, inclusive of the
    /// query tokens themselves.
    pub context_len: usize,
    /// Logical-to-physical block mapping holding the context's KV-tokens.
    pub table: &'a BlockTable,
}

impl AttnSeq<'_> {
    /// Number of context positions visible to query token `j`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `j >= q_len`.
    #[must_use]
    pub fn visible(&self, j: usize) -> usize {
        debug_assert!(j < self.q_len);
        self.context_len - self.q_len + j + 1
    }

    /// Validates the shape invariants against a block table.
    ///
    /// # Panics
    ///
    /// Panics if `q_len` is zero, exceeds `context_len`, or the table holds
    /// fewer tokens than `context_len`.
    pub fn check(&self) {
        assert!(self.q_len > 0, "empty query range");
        assert!(
            self.q_len <= self.context_len,
            "query longer than its context"
        );
        assert!(
            self.table.len() >= self.context_len,
            "block table ({} tokens) shorter than context ({})",
            self.table.len(),
            self.context_len
        );
    }
}

/// Numerical state of one query row's online softmax.
///
/// Used by the fused kernels to process the context in a single streaming
/// pass without materializing the attention-score matrix (the paper fuses
/// causal masking into the kernel for the same reason).
#[derive(Debug, Clone)]
pub(crate) struct OnlineSoftmax {
    /// Running maximum of the scores seen so far.
    pub m: f32,
    /// Running sum of `exp(score - m)`.
    pub s: f32,
    /// Running weighted sum of V rows, scaled by `exp(-m)` implicitly.
    pub acc: Vec<f32>,
}

impl OnlineSoftmax {
    pub(crate) fn new(head_dim: usize) -> Self {
        OnlineSoftmax {
            m: f32::NEG_INFINITY,
            s: 0.0,
            acc: vec![0.0; head_dim],
        }
    }

    /// Folds one (score, value-row) pair into the state.
    #[inline]
    pub(crate) fn update(&mut self, score: f32, v: &[f32]) {
        if score > self.m {
            let corr = if self.m == f32::NEG_INFINITY {
                0.0
            } else {
                (self.m - score).exp()
            };
            self.s *= corr;
            for a in self.acc.iter_mut() {
                *a *= corr;
            }
            self.m = score;
        }
        let p = (score - self.m).exp();
        self.s += p;
        for (a, &vv) in self.acc.iter_mut().zip(v) {
            *a += p * vv;
        }
    }

    /// Writes the normalized output into `out`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if no score was folded in (division by zero).
    pub(crate) fn finish(&self, out: &mut [f32]) {
        debug_assert!(self.s > 0.0, "finish() before any update()");
        let inv = 1.0 / self.s;
        for (o, &a) in out.iter_mut().zip(&self.acc) {
            *o = a * inv;
        }
    }
}

// The shared scalar inner products live in `ops`; attention kernels use the
// same definitions so their scores are bit-comparable with the GEMM path.
pub(crate) use crate::ops::{dot, dot4};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_derives_geometry() {
        let c = AttnConfig::new(8, 2, 16);
        assert_eq!(c.group_size(), 4);
        assert_eq!(c.kv_head_for(0), 0);
        assert_eq!(c.kv_head_for(3), 0);
        assert_eq!(c.kv_head_for(4), 1);
        assert_eq!(c.q_width(), 128);
        assert_eq!(c.kv_width(), 32);
        assert!((c.scale - 0.25).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "kv heads must divide")]
    fn config_rejects_bad_group() {
        let _ = AttnConfig::new(8, 3, 16);
    }

    #[test]
    fn visibility_rule() {
        let table = BlockTable::new(4);
        let seq = AttnSeq {
            q_start: 0,
            q_len: 3,
            context_len: 10,
            table: &table,
        };
        // Last token sees everything, earlier ones progressively less.
        assert_eq!(seq.visible(2), 10);
        assert_eq!(seq.visible(1), 9);
        assert_eq!(seq.visible(0), 8);
    }

    #[test]
    fn online_softmax_matches_direct() {
        let scores = [0.5f32, -1.0, 2.0, 0.0];
        let values = [[1.0f32, 0.0], [0.0, 1.0], [2.0, 2.0], [-1.0, 3.0]];
        let mut st = OnlineSoftmax::new(2);
        for (s, v) in scores.iter().zip(values.iter()) {
            st.update(*s, v);
        }
        let mut out = [0.0f32; 2];
        st.finish(&mut out);
        // Direct softmax computation.
        let max = 2.0f32;
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let mut expect = [0.0f32; 2];
        for (e, v) in exps.iter().zip(values.iter()) {
            expect[0] += e / sum * v[0];
            expect[1] += e / sum * v[1];
        }
        assert!((out[0] - expect[0]).abs() < 1e-6);
        assert!((out[1] - expect[1]).abs() < 1e-6);
    }

    #[test]
    fn online_softmax_order_invariant() {
        let scores = [3.0f32, 1.0, -2.0, 0.5];
        let vals = [[1.0f32], [2.0], [3.0], [4.0]];
        let run = |order: &[usize]| {
            let mut st = OnlineSoftmax::new(1);
            for &i in order {
                st.update(scores[i], &vals[i]);
            }
            let mut out = [0.0f32];
            st.finish(&mut out);
            out[0]
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 2, 1, 0]);
        assert!((a - b).abs() < 1e-6);
    }
}
