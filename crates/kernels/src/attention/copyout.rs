//! "CopyOut+Attention" straw-man (Figure 12, orange bar).
//!
//! Gathers the paged context into freshly allocated contiguous buffers,
//! then runs the ideal fused kernel. Correct, but pays a memory-copy cost
//! proportional to the number of past KV-tokens on every invocation — the
//! overhead Pensieve's kernel exists to avoid.

use super::contiguous::fused_contiguous;
use super::{AttnConfig, AttnSeq};
use crate::paged::{gather_contiguous, KvLayerView};
use crate::tensor::Matrix;

/// Batched attention that copies each sequence's paged KV out to
/// contiguous memory before attending.
///
/// Semantics identical to
/// [`paged_multi_token`](super::multi::paged_multi_token).
///
/// # Panics
///
/// Panics under the same shape conditions as the fused kernels.
#[must_use]
pub fn copyout_attention(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
) -> Matrix {
    assert_eq!(q.cols(), cfg.q_width());
    let mut out = Matrix::zeros(q.rows(), cfg.q_width());
    for seq in seqs {
        seq.check();
        // The copy the straw-man pays for: O(context_len) per request.
        let (k, v) = gather_contiguous(layer, seq.table, seq.context_len);
        let mut qs = Matrix::zeros(seq.q_len, cfg.q_width());
        for j in 0..seq.q_len {
            qs.row_mut(j).copy_from_slice(q.row(seq.q_start + j));
        }
        let res = fused_contiguous(cfg, &qs, &k, &v);
        for j in 0..seq.q_len {
            out.row_mut(seq.q_start + j).copy_from_slice(res.row(j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::multi::paged_multi_token;
    use super::*;
    use crate::paged::{BlockTable, KvLayout, PagedKvCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn agrees_with_paged_multi_token() {
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = AttnConfig::new(4, 2, 8);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 8,
            block_size: 4,
        };
        let mut pool = PagedKvCache::new(layout, 1, 32);
        let mut tables: Vec<BlockTable> = Vec::new();
        let ctxs = [13usize, 6, 25];
        for &ctx in &ctxs {
            let mut table = BlockTable::new(4);
            for _ in 0..ctx {
                let (b, s) = table.append_token(&mut pool).unwrap();
                let k: Vec<f32> = (0..16).map(|_| rng.random_range(-1.0..1.0)).collect();
                let v: Vec<f32> = (0..16).map(|_| rng.random_range(-1.0..1.0)).collect();
                pool.write_token(0, b, s, &k, &v);
            }
            tables.push(table);
        }
        let q_lens = [2usize, 1, 4];
        let total_q: usize = q_lens.iter().sum();
        let q = Matrix::from_vec(
            total_q,
            cfg.q_width(),
            (0..total_q * cfg.q_width())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        );
        let mut seqs = Vec::new();
        let mut start = 0;
        for i in 0..3 {
            seqs.push(AttnSeq {
                q_start: start,
                q_len: q_lens[i],
                context_len: ctxs[i],
                table: &tables[i],
            });
            start += q_lens[i];
        }
        let a = copyout_attention(&cfg, &q, &pool.layer(0), &seqs);
        let b = paged_multi_token(&cfg, &q, &pool.layer(0), &seqs);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }
}
