//! "Multi-round PagedAttention" straw-man (Figure 12, green bar).
//!
//! Processes a multi-token prompt by invoking the single-token paged
//! kernel once per query token, truncating the visible context to enforce
//! causality. This is the "naive hack" the paper describes in §3.2: it is
//! correct, but gives up the parallelization/data-reuse opportunity of the
//! query dimension — the context is re-walked `q_len` times — so its cost
//! grows linearly with the number of prompt tokens.
//!
//! The straw-man is deliberately pinned to the *scalar reference*
//! single-token kernel ([`paged_single_token_ref`]) so the Figure-12
//! baseline stays fixed as the fast paths evolve; `BENCH_kernels.json`
//! speedups are measured against this implementation.

use super::single::paged_single_token_ref;
use super::{AttnConfig, AttnSeq};
use crate::paged::KvLayerView;
use crate::tensor::Matrix;

/// Batched multi-token attention implemented as repeated rounds of the
/// single-token kernel.
///
/// Semantics identical to
/// [`paged_multi_token`](super::multi::paged_multi_token).
///
/// # Panics
///
/// Panics under the same shape conditions as the fused kernels.
#[must_use]
pub fn multi_round_single_token(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
) -> Matrix {
    assert_eq!(q.cols(), cfg.q_width());
    let mut out = Matrix::zeros(q.rows(), cfg.q_width());
    for seq in seqs {
        seq.check();
        // One full single-token invocation per prompt token: each round
        // re-walks the block table from the beginning.
        for j in 0..seq.q_len {
            let round = AttnSeq {
                q_start: seq.q_start + j,
                q_len: 1,
                context_len: seq.visible(j),
                table: seq.table,
            };
            paged_single_token_ref(
                cfg,
                q.row(seq.q_start + j),
                layer,
                &round,
                out.row_mut(seq.q_start + j),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::multi::paged_multi_token;
    use super::*;
    use crate::paged::{BlockTable, KvLayout, PagedKvCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn agrees_with_paged_multi_token() {
        let mut rng = StdRng::seed_from_u64(41);
        let cfg = AttnConfig::new(2, 1, 4);
        let layout = KvLayout {
            num_kv_heads: 1,
            head_dim: 4,
            block_size: 4,
        };
        let mut pool = PagedKvCache::new(layout, 1, 16);
        let mut table = BlockTable::new(4);
        for _ in 0..23 {
            let (b, s) = table.append_token(&mut pool).unwrap();
            let k: Vec<f32> = (0..4).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..4).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        for q_len in [1usize, 2, 7] {
            let q = Matrix::from_vec(
                q_len,
                cfg.q_width(),
                (0..q_len * cfg.q_width())
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect(),
            );
            let seq = AttnSeq {
                q_start: 0,
                q_len,
                context_len: 23,
                table: &table,
            };
            let a = multi_round_single_token(&cfg, &q, &pool.layer(0), &[seq]);
            let b = paged_multi_token(&cfg, &q, &pool.layer(0), &[seq]);
            assert!(a.max_abs_diff(&b) < 1e-5, "q_len={q_len}");
        }
    }
}
