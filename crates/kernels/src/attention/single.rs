//! Single-token paged attention — our vLLM `PagedAttention` analogue.
//!
//! Computes attention for exactly **one** query token per request over a
//! paged KV cache (paper Figure 9, left). The underlying computation is two
//! matrix-vector products, so there is no query dimension to parallelize or
//! tile over — which is precisely why the paper cannot use this kernel for
//! prefill and builds the multi-token kernel instead.

use super::{dot, AttnConfig, AttnSeq, OnlineSoftmax};
use crate::paged::KvLayerView;
use crate::tensor::Matrix;

/// Attention for one query token (`q_row`, `[num_heads * head_dim]`) over
/// the first `context_len` tokens of a paged context.
///
/// Writes the result into `out` (`[num_heads * head_dim]`).
///
/// # Panics
///
/// Panics if slice widths disagree with `cfg`, `context_len` is zero, or
/// the block table is shorter than `context_len`.
pub fn paged_single_token(
    cfg: &AttnConfig,
    q_row: &[f32],
    layer: &KvLayerView<'_>,
    seq: &AttnSeq<'_>,
    out: &mut [f32],
) {
    assert_eq!(q_row.len(), cfg.q_width());
    assert_eq!(out.len(), cfg.q_width());
    assert!(seq.context_len > 0, "empty context");
    assert!(
        seq.table.len() >= seq.context_len,
        "block table shorter than context"
    );

    let d = cfg.head_dim;
    let block_size = layer.layout().block_size;
    let num_blocks = seq.context_len.div_ceil(block_size);

    for h in 0..cfg.num_heads {
        let kvh = cfg.kv_head_for(h);
        let qh = &q_row[h * d..(h + 1) * d];
        let mut st = OnlineSoftmax::new(d);
        let mut t = 0;
        'outer: for bi in 0..num_blocks {
            let b = seq.table.block_at(bi);
            for slot in 0..block_size {
                if t >= seq.context_len {
                    break 'outer;
                }
                let score = dot(qh, layer.k_head(b, slot, kvh)) * cfg.scale;
                st.update(score, layer.v_head(b, slot, kvh));
                t += 1;
            }
        }
        st.finish(&mut out[h * d..(h + 1) * d]);
    }
}

/// Batched single-token attention: one query row per request.
///
/// `q` holds one row per sequence in `seqs` order; each sequence must have
/// `q_len == 1`. Returns `[seqs.len(), num_heads * head_dim]`.
///
/// # Panics
///
/// Panics if any sequence has `q_len != 1` or shapes are inconsistent.
#[must_use]
pub fn paged_single_token_batch(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
) -> Matrix {
    assert_eq!(q.rows(), seqs.len());
    let mut out = Matrix::zeros(seqs.len(), cfg.q_width());
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(seq.q_len, 1, "single-token kernel requires q_len == 1");
        paged_single_token(cfg, q.row(i), layer, seq, out.row_mut(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_attention;
    use super::*;
    use crate::paged::{gather_contiguous, BlockTable, KvLayout, PagedKvCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fills a paged context with random KV and returns the table.
    fn build_context(rng: &mut StdRng, pool: &mut PagedKvCache, tokens: usize) -> BlockTable {
        let mut table = BlockTable::new(pool.layout().block_size);
        let tf = pool.layout().token_floats();
        for _ in 0..tokens {
            let (b, s) = table.append_token(pool).unwrap();
            let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        table
    }

    #[test]
    fn matches_naive_for_one_query_token() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = AttnConfig::new(4, 2, 8);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 8,
            block_size: 4,
        };
        for ctx in [1usize, 3, 4, 5, 17, 64] {
            let mut pool = PagedKvCache::new(layout, 1, 32);
            let table = build_context(&mut rng, &mut pool, ctx);
            let q = Matrix::from_vec(
                1,
                cfg.q_width(),
                (0..cfg.q_width())
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect(),
            );
            let seq = AttnSeq {
                q_start: 0,
                q_len: 1,
                context_len: ctx,
                table: &table,
            };
            let got = paged_single_token_batch(&cfg, &q, &pool.layer(0), &[seq]);
            let (k, v) = gather_contiguous(&pool.layer(0), &table, ctx);
            let expect = naive_attention(&cfg, &q, &k, &v);
            assert!(got.max_abs_diff(&expect) < 1e-5, "ctx={ctx}");
        }
    }

    /// Tokens beyond `context_len` in the table must be invisible.
    #[test]
    fn respects_context_len_shorter_than_table() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = AttnConfig::new(2, 2, 4);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 4,
            block_size: 4,
        };
        let mut pool = PagedKvCache::new(layout, 1, 8);
        let table = build_context(&mut rng, &mut pool, 10);
        let q = Matrix::from_vec(
            1,
            cfg.q_width(),
            (0..cfg.q_width())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        );
        let seq = AttnSeq {
            q_start: 0,
            q_len: 1,
            context_len: 6,
            table: &table,
        };
        let got = paged_single_token_batch(&cfg, &q, &pool.layer(0), &[seq]);
        let (k, v) = gather_contiguous(&pool.layer(0), &table, 6);
        let expect = naive_attention(&cfg, &q, &k, &v);
        assert!(got.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "q_len == 1")]
    fn rejects_multi_token_queries() {
        let cfg = AttnConfig::new(1, 1, 2);
        let layout = KvLayout {
            num_kv_heads: 1,
            head_dim: 2,
            block_size: 2,
        };
        let mut pool = PagedKvCache::new(layout, 1, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let table = build_context(&mut rng, &mut pool, 2);
        let q = Matrix::zeros(1, 2);
        let seq = AttnSeq {
            q_start: 0,
            q_len: 2,
            context_len: 2,
            table: &table,
        };
        let _ = paged_single_token_batch(&cfg, &q, &pool.layer(0), &[seq]);
    }
}
