//! Single-token paged attention — our vLLM `PagedAttention` analogue.
//!
//! Computes attention for exactly **one** query token per request over a
//! paged KV cache (paper Figure 9, left). The underlying computation is two
//! matrix-vector products, so there is no query dimension to parallelize or
//! tile over — which is precisely why the paper cannot use this kernel for
//! prefill and builds the multi-token kernel instead.
//!
//! Two implementations are provided: [`paged_single_token_ref`], the
//! per-head context walk kept as the straw-man/reference (it re-reads every
//! K/V block once per query head), and [`paged_single_token`], which walks
//! the context once as contiguous `[block_size, kv_width]` slabs and reuses
//! each loaded K/V row across the whole GQA group. Their outputs are
//! **bit-identical**: every online-softmax state sees the same scores in
//! the same (ascending-`t`) order.

use super::{dot, dot4, AttnConfig, AttnSeq, OnlineSoftmax};
use crate::paged::KvLayerView;
use crate::tensor::Matrix;

fn check_single(cfg: &AttnConfig, q_row: &[f32], seq: &AttnSeq<'_>, out: &[f32]) {
    assert_eq!(q_row.len(), cfg.q_width());
    assert_eq!(out.len(), cfg.q_width());
    assert!(seq.context_len > 0, "empty context");
    assert!(
        seq.table.len() >= seq.context_len,
        "block table shorter than context"
    );
}

/// Scalar reference for [`paged_single_token`]: one full context walk per
/// query head, per-token `dot` calls.
///
/// This is the accumulation-order-defining implementation the blocked
/// kernel is tested against bit-for-bit, and the per-round cost model of
/// the multi-round straw-man ([`super::multiround`]).
///
/// # Panics
///
/// Panics if slice widths disagree with `cfg`, `context_len` is zero, or
/// the block table is shorter than `context_len`.
pub fn paged_single_token_ref(
    cfg: &AttnConfig,
    q_row: &[f32],
    layer: &KvLayerView<'_>,
    seq: &AttnSeq<'_>,
    out: &mut [f32],
) {
    check_single(cfg, q_row, seq, out);
    let d = cfg.head_dim;
    let block_size = layer.layout().block_size;
    let num_blocks = seq.context_len.div_ceil(block_size);

    for h in 0..cfg.num_heads {
        let kvh = cfg.kv_head_for(h);
        let qh = &q_row[h * d..(h + 1) * d];
        let mut st = OnlineSoftmax::new(d);
        let mut t = 0;
        'outer: for bi in 0..num_blocks {
            let b = seq.table.block_at(bi);
            for slot in 0..block_size {
                if t >= seq.context_len {
                    break 'outer;
                }
                let score = dot(qh, layer.k_head(b, slot, kvh)) * cfg.scale;
                st.update(score, layer.v_head(b, slot, kvh));
                t += 1;
            }
        }
        st.finish(&mut out[h * d..(h + 1) * d]);
    }
}

/// Attention for one query token (`q_row`, `[num_heads * head_dim]`) over
/// the first `context_len` tokens of a paged context — blocked fast path.
///
/// Walks the context **once**: each KV block is read as a contiguous
/// `[block_size, kv_width]` slab, each loaded K/V row is reused across
/// every query head of its GQA group, and each head scores a block's slots
/// four at a time as interleaved independent accumulator chains (see
/// [`dot4`]; f32 multiplication commutes bit-for-bit, so each lane equals
/// the reference `dot`). Bit-identical to [`paged_single_token_ref`]: each
/// head's softmax state receives the same score sequence in ascending-`t`
/// order.
///
/// Writes the result into `out` (`[num_heads * head_dim]`).
///
/// # Panics
///
/// Panics if slice widths disagree with `cfg`, `context_len` is zero, or
/// the block table is shorter than `context_len`.
pub fn paged_single_token(
    cfg: &AttnConfig,
    q_row: &[f32],
    layer: &KvLayerView<'_>,
    seq: &AttnSeq<'_>,
    out: &mut [f32],
) {
    check_single(cfg, q_row, seq, out);
    let d = cfg.head_dim;
    let tf = layer.layout().token_floats();
    let block_size = layer.layout().block_size;
    let num_blocks = seq.context_len.div_ceil(block_size);
    let group = cfg.group_size();

    let mut states: Vec<OnlineSoftmax> =
        (0..cfg.num_heads).map(|_| OnlineSoftmax::new(d)).collect();
    let mut scores = vec![0.0f32; block_size];

    for bi in 0..num_blocks {
        let b = seq.table.block_at(bi);
        let kslab = layer.k_block(b);
        let vslab = layer.v_block(b);
        let t0 = bi * block_size;
        let slots = block_size.min(seq.context_len - t0);
        for kvh in 0..cfg.num_kv_heads {
            let h_lo = kvh * group;
            for g in 0..group {
                let h = h_lo + g;
                let qh = &q_row[h * d..(h + 1) * d];
                // Score this head against the whole block, four slots at a
                // time: the four dot chains are independent and overlap in
                // the pipeline, and f32 multiplication is commutative
                // bit-for-bit, so `dot4(qh, k_t..)` lane `c` equals
                // `dot(qh, k_{t+c})` exactly.
                let krow = |slot: usize| &kslab[slot * tf + kvh * d..slot * tf + (kvh + 1) * d];
                let mut slot = 0;
                while slot + 4 <= slots {
                    let s4 = dot4(
                        qh,
                        krow(slot),
                        krow(slot + 1),
                        krow(slot + 2),
                        krow(slot + 3),
                    );
                    scores[slot..slot + 4].copy_from_slice(&s4);
                    slot += 4;
                }
                while slot < slots {
                    scores[slot] = dot(qh, krow(slot));
                    slot += 1;
                }
                // Fold in ascending-t order — the same score sequence the
                // reference's per-head context walk produces.
                for (slot, &s) in scores[..slots].iter().enumerate() {
                    let vrow = &vslab[slot * tf + kvh * d..slot * tf + (kvh + 1) * d];
                    states[h].update(s * cfg.scale, vrow);
                }
            }
        }
    }
    for h in 0..cfg.num_heads {
        states[h].finish(&mut out[h * d..(h + 1) * d]);
    }
}

/// Batched single-token attention: one query row per request.
///
/// `q` holds one row per sequence in `seqs` order; each sequence must have
/// `q_len == 1`. Returns `[seqs.len(), num_heads * head_dim]`.
///
/// # Panics
///
/// Panics if any sequence has `q_len != 1` or shapes are inconsistent.
#[must_use]
pub fn paged_single_token_batch(
    cfg: &AttnConfig,
    q: &Matrix,
    layer: &KvLayerView<'_>,
    seqs: &[AttnSeq<'_>],
) -> Matrix {
    assert_eq!(q.rows(), seqs.len());
    let mut out = Matrix::zeros(seqs.len(), cfg.q_width());
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(seq.q_len, 1, "single-token kernel requires q_len == 1");
        paged_single_token(cfg, q.row(i), layer, seq, out.row_mut(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_attention;
    use super::*;
    use crate::paged::{gather_contiguous, BlockTable, KvLayout, PagedKvCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fills a paged context with random KV and returns the table.
    fn build_context(rng: &mut StdRng, pool: &mut PagedKvCache, tokens: usize) -> BlockTable {
        let mut table = BlockTable::new(pool.layout().block_size);
        let tf = pool.layout().token_floats();
        for _ in 0..tokens {
            let (b, s) = table.append_token(pool).unwrap();
            let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        table
    }

    #[test]
    fn matches_naive_for_one_query_token() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = AttnConfig::new(4, 2, 8);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 8,
            block_size: 4,
        };
        for ctx in [1usize, 3, 4, 5, 17, 64] {
            let mut pool = PagedKvCache::new(layout, 1, 32);
            let table = build_context(&mut rng, &mut pool, ctx);
            let q = Matrix::from_vec(
                1,
                cfg.q_width(),
                (0..cfg.q_width())
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect(),
            );
            let seq = AttnSeq {
                q_start: 0,
                q_len: 1,
                context_len: ctx,
                table: &table,
            };
            let got = paged_single_token_batch(&cfg, &q, &pool.layer(0), &[seq]);
            let (k, v) = gather_contiguous(&pool.layer(0), &table, ctx);
            let expect = naive_attention(&cfg, &q, &k, &v);
            assert!(got.max_abs_diff(&expect) < 1e-5, "ctx={ctx}");
        }
    }

    /// Tokens beyond `context_len` in the table must be invisible.
    #[test]
    fn respects_context_len_shorter_than_table() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = AttnConfig::new(2, 2, 4);
        let layout = KvLayout {
            num_kv_heads: 2,
            head_dim: 4,
            block_size: 4,
        };
        let mut pool = PagedKvCache::new(layout, 1, 8);
        let table = build_context(&mut rng, &mut pool, 10);
        let q = Matrix::from_vec(
            1,
            cfg.q_width(),
            (0..cfg.q_width())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        );
        let seq = AttnSeq {
            q_start: 0,
            q_len: 1,
            context_len: 6,
            table: &table,
        };
        let got = paged_single_token_batch(&cfg, &q, &pool.layer(0), &[seq]);
        let (k, v) = gather_contiguous(&pool.layer(0), &table, 6);
        let expect = naive_attention(&cfg, &q, &k, &v);
        assert!(got.max_abs_diff(&expect) < 1e-5);
    }

    /// The blocked fast path must be bit-identical to the per-head
    /// reference walk for every context/geometry combination.
    #[test]
    fn blocked_bit_identical_to_ref() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(heads, kv_heads, d, bs) in &[
            (4usize, 2usize, 8usize, 4usize),
            (8, 1, 16, 16),
            (6, 6, 4, 2),
            (8, 2, 32, 8),
        ] {
            let cfg = AttnConfig::new(heads, kv_heads, d);
            let layout = KvLayout {
                num_kv_heads: kv_heads,
                head_dim: d,
                block_size: bs,
            };
            for ctx in [1usize, bs - 1, bs, bs + 1, 5 * bs + 3] {
                let ctx = ctx.max(1);
                let mut pool = PagedKvCache::new(layout, 1, 64);
                let table = build_context(&mut rng, &mut pool, ctx);
                let q: Vec<f32> = (0..cfg.q_width())
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect();
                let seq = AttnSeq {
                    q_start: 0,
                    q_len: 1,
                    context_len: ctx,
                    table: &table,
                };
                let mut fast = vec![0.0f32; cfg.q_width()];
                let mut reference = vec![0.0f32; cfg.q_width()];
                paged_single_token(&cfg, &q, &pool.layer(0), &seq, &mut fast);
                paged_single_token_ref(&cfg, &q, &pool.layer(0), &seq, &mut reference);
                assert_eq!(fast, reference, "h={heads}/{kv_heads} d={d} ctx={ctx}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "q_len == 1")]
    fn rejects_multi_token_queries() {
        let cfg = AttnConfig::new(1, 1, 2);
        let layout = KvLayout {
            num_kv_heads: 1,
            head_dim: 2,
            block_size: 2,
        };
        let mut pool = PagedKvCache::new(layout, 1, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let table = build_context(&mut rng, &mut pool, 2);
        let q = Matrix::zeros(1, 2);
        let seq = AttnSeq {
            q_start: 0,
            q_len: 2,
            context_len: 2,
            table: &table,
        };
        let _ = paged_single_token_batch(&cfg, &q, &pool.layer(0), &[seq]);
    }
}
