//! A minimal row-major matrix type for the CPU kernels.
//!
//! The kernels in this crate only need dense 2-D `f32` storage with cheap
//! row access; a full tensor library would be overkill and would obscure
//! the memory-access patterns the Figure-12 experiment is about.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full row-major backing slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The full mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let cells: Vec<String> = self.row(r)[..self.cols.min(8)]
                .iter()
                .map(|v| format!("{v:+.4}"))
                .collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m[(0, 1)] = 5.0;
        m.row_mut(1)[2] = 7.0;
        assert_eq!(m[(0, 1)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn max_abs_diff_finds_largest() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.5, 2.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
