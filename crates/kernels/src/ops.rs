//! Elementary neural-network operators used by the functional transformer.
//!
//! The hot operator is [`matmul`]: a cache-blocked GEMM whose output is
//! **bit-identical** to the scalar reference [`matmul_ref`] (same
//! per-element accumulation order, only the iteration schedule and memory
//! layout change). [`matmul_par`] additionally fans the row dimension out
//! over a scoped worker pool; rows are disjoint output partitions, so it
//! too is bit-identical. The remaining operators are straightforward
//! scalar implementations — they are not on the critical path.

use crate::tensor::Matrix;

/// Inner-dimension rows per packed panel of `B`.
///
/// A `GEMM_KC x GEMM_NC` panel holds 64 x 128 f32 = 32 KiB — sized to stay
/// resident in a typical L1d cache while every row of `A` streams against
/// it, which is the data reuse the scalar triple loop forfeits once `B`
/// outgrows L1/L2.
const GEMM_KC: usize = 64;
/// Columns per packed panel of `B` (see [`GEMM_KC`]).
const GEMM_NC: usize = 128;
/// Unroll depth over the inner dimension: keeps each output element in a
/// register across four sequential accumulations (the adds stay in the
/// reference order, so results do not change) and quarters the traffic on
/// the `C` row.
const GEMM_PU: usize = 4;
/// Below this `m * k * n` volume the packing overhead outweighs the cache
/// blocking; the (bit-identical) scalar reference is used instead.
const GEMM_MIN_VOLUME: usize = 16 * 1024;

/// Scalar dot product, accumulating left to right.
///
/// The single shared definition of the kernels' inner product: the
/// attention kernels (blocked and reference) and any score computation use
/// this exact accumulation order, which is what makes their outputs
/// comparable bit-for-bit.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Four independent dot products of one shared row `k` against `q0..q3`,
/// each accumulating left to right exactly like [`dot`].
///
/// The four accumulator chains have no data dependence on each other, so
/// they overlap in the pipeline — roughly 4x the throughput of four
/// sequential [`dot`] calls on a latency-bound inner product — while each
/// lane's result stays bit-identical to `dot(qN, k)`.
///
/// # Panics
///
/// Panics in debug builds if any slice length differs from `k`'s.
#[inline]
#[must_use]
pub fn dot4(k: &[f32], q0: &[f32], q1: &[f32], q2: &[f32], q3: &[f32]) -> [f32; 4] {
    let n = k.len();
    debug_assert!(q0.len() == n && q1.len() == n && q2.len() == n && q3.len() == n);
    let (q0, q1, q2, q3) = (&q0[..n], &q1[..n], &q2[..n], &q3[..n]);
    let mut s = [0.0f32; 4];
    for (i, &kv) in k.iter().enumerate() {
        s[0] += q0[i] * kv;
        s[1] += q1[i] * kv;
        s[2] += q2[i] * kv;
        s[3] += q3[i] * kv;
    }
    s
}

/// Lane width of [`dot_lanes`]: accumulators for one chunk live in a
/// fixed-size array the compiler keeps in two 4-wide (or one 8-wide) SIMD
/// registers across the whole inner-product loop.
pub const SCORE_LANES: usize = 8;

/// Scores one K row against `n` query vectors packed **transposed**,
/// writing `scores[j] = dot(q_j, k)` bit-for-bit.
///
/// `qt` holds the queries column-major: `qt[i * n + j]` is element `i` of
/// query `j`, with `n` padded to a multiple of [`SCORE_LANES`] (pad lanes
/// read zeros and produce garbage scores the caller ignores). Each
/// `scores[j]` accumulates `qt[i*n+j] * k[i]` with `i` ascending — the
/// exact operand values and order of [`dot`] (f32 multiplication is
/// commutative bit-for-bit) — but the lanes of a chunk are independent,
/// contiguous, and register-resident, so the compiler vectorizes across
/// queries instead of serializing one latency-bound chain. This is the
/// widest inner product available to the attention kernels: one K-row load
/// scores every visible (query row, grouped head) pair at SIMD width.
///
/// # Panics
///
/// Panics in debug builds if `scores.len()` is not a positive multiple of
/// [`SCORE_LANES`] or `qt.len() != k.len() * scores.len()`.
#[inline]
pub fn dot_lanes(k: &[f32], qt: &[f32], scores: &mut [f32]) {
    let n = scores.len();
    debug_assert!(n > 0 && n.is_multiple_of(SCORE_LANES));
    debug_assert_eq!(qt.len(), k.len() * n);
    for j0 in (0..n).step_by(SCORE_LANES) {
        let mut acc = [0.0f32; SCORE_LANES];
        for (i, &kv) in k.iter().enumerate() {
            let row = &qt[i * n + j0..i * n + j0 + SCORE_LANES];
            for (a, &qv) in acc.iter_mut().zip(row) {
                *a += qv * kv;
            }
        }
        scores[j0..j0 + SCORE_LANES].copy_from_slice(&acc);
    }
}

/// `C = A * B` where `A` is `[m, k]` and `B` is `[k, n]` — the scalar
/// reference implementation.
///
/// Kept deliberately naive: this triple loop defines the accumulation
/// order (`p` ascending per output element) that the blocked and parallel
/// variants must reproduce exactly, and the property tests compare them
/// against it bit-for-bit.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &av) in arow.iter().enumerate() {
            let brow = b.row(p);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = A * B` — cache-blocked GEMM, bit-identical to [`matmul_ref`].
///
/// `B` is packed into `[GEMM_KC, GEMM_NC]` column-tiles that stay L1
/// resident while all rows of `A` stream against them, and the inner
/// dimension is unrolled [`GEMM_PU`]-wide so each `C` element stays in a
/// register across the unrolled accumulations. For every output element
/// the additions happen in the same ascending-`p` order as the reference,
/// so the result is exactly equal, not merely close.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    if a.rows() * a.cols() * b.cols() < GEMM_MIN_VOLUME {
        return matmul_ref(a, b);
    }
    matmul_rows(a, b, 0, a.rows())
}

/// `C = A * B` with the row dimension fanned out over `threads` workers.
///
/// Rows of `C` are disjoint output partitions computed independently by
/// the blocked kernel and copied back in partition order, so the result is
/// bit-identical to [`matmul`] (and therefore to [`matmul_ref`]) at every
/// thread count.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul_par(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    if threads <= 1 {
        assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
        return matmul(a, b);
    }
    matmul_pool(a, b, &crossbeam::pool::Pool::global(threads))
}

/// [`matmul_par`] against an explicit persistent [`Pool`] handle — the
/// form the model layers use so every kernel call in an engine shares one
/// set of parked workers.
///
/// Serial fallback: the product stays on the calling thread when any
/// per-partition share of the multiply-accumulate volume
/// (`m * k * n / parts`) would fall below [`GEMM_MIN_VOLUME`], or when
/// there are too few rows to split — partition dispatch costs more than
/// it saves on small generation-step products.
///
/// [`Pool`]: crossbeam::pool::Pool
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul_pool(a: &Matrix, b: &Matrix, pool: &crossbeam::pool::Pool) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let threads = pool.threads();
    let m = a.rows();
    let volume = a.rows() * a.cols() * b.cols();
    // Splitting tiny products across threads costs more than it saves:
    // require a full GEMM_MIN_VOLUME of work *per partition*.
    if threads <= 1 || m < 2 * threads || volume / threads < GEMM_MIN_VOLUME {
        return matmul(a, b);
    }
    matmul_pool_ungated(a, b, pool)
}

/// [`matmul_pool`] without the work-size gate: always fans the row
/// dimension out over the pool (inline when the pool is serial). The
/// cross-width bit-identity property tests drive this directly so shapes
/// below [`GEMM_MIN_VOLUME`] still exercise the partitioned merge;
/// production callers want the gated entry.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul_pool_ungated(a: &Matrix, b: &Matrix, pool: &crossbeam::pool::Pool) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let m = a.rows();
    if m == 0 {
        return Matrix::zeros(0, b.cols());
    }
    let parts = pool.threads().min(m);
    let per = m.div_ceil(parts);
    let chunks = pool.map_partitions(parts, |t| {
        let lo = t * per;
        let hi = m.min(lo + per);
        if lo < hi {
            Some(matmul_rows(a, b, lo, hi))
        } else {
            None
        }
    });
    let mut c = Matrix::zeros(m, b.cols());
    // Sequential per-partition accumulation: copy results back in fixed
    // partition order (partitions are disjoint row ranges).
    for (t, chunk) in chunks.into_iter().enumerate() {
        let Some(chunk) = chunk else { continue };
        let lo = t * per;
        for r in 0..chunk.rows() {
            c.row_mut(lo + r).copy_from_slice(chunk.row(r));
        }
    }
    c
}

/// Blocked GEMM over rows `lo..hi` of `A`, returning a `[hi - lo, n]`
/// matrix. Shared by [`matmul`] and the per-thread partitions of
/// [`matmul_par`].
fn matmul_rows(a: &Matrix, b: &Matrix, lo: usize, hi: usize) -> Matrix {
    let (m, k, n) = (hi - lo, a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let mut panel = vec![0.0f32; GEMM_KC * GEMM_NC];
    for jt in (0..n).step_by(GEMM_NC) {
        let jw = GEMM_NC.min(n - jt);
        for pc in (0..k).step_by(GEMM_KC) {
            let pw = GEMM_KC.min(k - pc);
            // Pack the [pw, jw] tile of B contiguously.
            for p in 0..pw {
                panel[p * jw..(p + 1) * jw].copy_from_slice(&b.row(pc + p)[jt..jt + jw]);
            }
            for i in 0..m {
                let arow = a.row(lo + i);
                let crow = &mut c.row_mut(i)[jt..jt + jw];
                let mut p = 0;
                while p + GEMM_PU <= pw {
                    let (a0, a1, a2, a3) = (
                        arow[pc + p],
                        arow[pc + p + 1],
                        arow[pc + p + 2],
                        arow[pc + p + 3],
                    );
                    let r0 = &panel[p * jw..(p + 1) * jw];
                    let r1 = &panel[(p + 1) * jw..(p + 2) * jw];
                    let r2 = &panel[(p + 2) * jw..(p + 3) * jw];
                    let r3 = &panel[(p + 3) * jw..(p + 4) * jw];
                    for j in 0..jw {
                        // Four *sequential* adds — the reference order.
                        let mut cv = crow[j];
                        cv += a0 * r0[j];
                        cv += a1 * r1[j];
                        cv += a2 * r2[j];
                        cv += a3 * r3[j];
                        crow[j] = cv;
                    }
                    p += GEMM_PU;
                }
                while p < pw {
                    let av = arow[pc + p];
                    let r = &panel[p * jw..(p + 1) * jw];
                    for (cv, &rv) in crow.iter_mut().zip(r) {
                        *cv += av * rv;
                    }
                    p += 1;
                }
            }
        }
    }
    c
}

/// In-place numerically-stable softmax over a single row.
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Root-mean-square normalization (Llama 2): `x * w / rms(x)`.
pub fn rmsnorm(x: &mut [f32], weight: &[f32], eps: f32) {
    debug_assert_eq!(x.len(), weight.len());
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (v, w) in x.iter_mut().zip(weight) {
        *v = *v * inv * w;
    }
}

/// Standard LayerNorm with affine parameters (OPT).
pub fn layernorm(x: &mut [f32], weight: &[f32], bias: &[f32], eps: f32) {
    debug_assert_eq!(x.len(), weight.len());
    debug_assert_eq!(x.len(), bias.len());
    let n = x.len() as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for ((v, w), b) in x.iter_mut().zip(weight).zip(bias) {
        *v = (*v - mean) * inv * w + b;
    }
}

/// Sigmoid-weighted linear unit: `x * sigmoid(x)`.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Rectified linear unit.
#[must_use]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Applies rotary position embeddings in place to one token's Q or K rows.
///
/// `x` is laid out as `[num_heads, head_dim]` flattened; `pos` is the
/// token's absolute position. Uses the standard base-10000 frequencies and
/// the adjacent-pair rotation convention.
///
/// # Panics
///
/// Panics if `head_dim` is odd or `x.len()` is not a multiple of it.
pub fn apply_rope(x: &mut [f32], num_heads: usize, head_dim: usize, pos: usize) {
    assert_eq!(head_dim % 2, 0, "rope requires even head_dim");
    assert_eq!(x.len(), num_heads * head_dim);
    for h in 0..num_heads {
        let head = &mut x[h * head_dim..(h + 1) * head_dim];
        for i in 0..head_dim / 2 {
            let theta = (pos as f32) * 10000f32.powf(-2.0 * i as f32 / head_dim as f32);
            let (sin, cos) = theta.sin_cos();
            let (a, b) = (head[2 * i], head[2 * i + 1]);
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Element-wise `a += b` over two same-shaped matrices (residual add).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add_rows(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// Adds `bias` element-wise to every row of `m`.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols());
    for r in 0..m.rows() {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Index of the maximum element (greedy sampling); ties go to the lower
/// index.
///
/// # Panics
///
/// Panics if `logits` is empty.
#[must_use]
pub fn argmax(logits: &[f32]) -> usize {
    assert!(!logits.is_empty());
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    /// Deterministic pseudo-random matrix (no RNG dependency needed here).
    fn lcg_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(13);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect(),
        )
    }

    #[test]
    fn blocked_matmul_bit_identical_to_ref() {
        // Shapes straddling the tile sizes: exact multiples, ragged tails,
        // k and n both above and below GEMM_KC/GEMM_NC, and small shapes
        // that take the fallback path.
        for &(m, k, n) in &[
            (1usize, 64usize, 64usize),
            (3, 5, 7),
            (8, 64, 128),
            (5, 65, 129),
            (16, 200, 96),
            (2, 128, 300),
            (33, 100, 50),
        ] {
            let a = lcg_matrix(m as u64 * 31 + k as u64, m, k);
            let b = lcg_matrix(n as u64 * 17 + 1, k, n);
            assert_eq!(
                matmul(&a, &b),
                matmul_ref(&a, &b),
                "blocked != ref for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn parallel_matmul_bit_identical_across_thread_counts() {
        let a = lcg_matrix(7, 37, 96);
        let b = lcg_matrix(11, 96, 140);
        let want = matmul_ref(&a, &b);
        for threads in [1usize, 2, 3, 4, 8] {
            assert_eq!(matmul_par(&a, &b, threads), want, "threads={threads}");
        }
    }

    /// Pins the GEMM serial-fallback decision: a decode-step product too
    /// small to amortize dispatch must bypass the pool entirely (its task
    /// counter stays put), while the bench's prefill projection shape
    /// (256 x 512 x 512) must fan out — both bit-identical to serial.
    #[test]
    fn small_products_never_touch_the_pool() {
        let pool = crossbeam::pool::Pool::new(4);
        // 8 rows x 32 x 32: volume 8192 < GEMM_MIN_VOLUME per partition.
        let a = lcg_matrix(5, 8, 32);
        let b = lcg_matrix(6, 32, 32);
        let before = pool.stats().tasks_total;
        let got = matmul_pool(&a, &b, &pool);
        assert_eq!(
            pool.stats().tasks_total,
            before,
            "sub-threshold product must not pay pool dispatch"
        );
        assert_eq!(got, matmul(&a, &b));
        // Bench prefill projection shape: clears the threshold, fans out.
        let a = lcg_matrix(7, 256, 512);
        let b = lcg_matrix(8, 512, 512);
        let before = pool.stats().tasks_total;
        let got = matmul_pool(&a, &b, &pool);
        assert!(
            pool.stats().tasks_total > before,
            "prefill-shaped product must use the pool"
        );
        assert_eq!(got, matmul(&a, &b), "parallel path is bit-identical");
    }

    #[test]
    fn dot4_lanes_match_dot() {
        let k = lcg_matrix(1, 1, 67);
        let q = lcg_matrix(2, 4, 67);
        let s = dot4(k.row(0), q.row(0), q.row(1), q.row(2), q.row(3));
        for (lane, &sv) in s.iter().enumerate() {
            // Bitwise equality: same accumulation order per lane.
            assert_eq!(sv.to_bits(), dot(q.row(lane), k.row(0)).to_bits());
        }
    }

    #[test]
    fn dot_lanes_matches_dot_bitwise() {
        // 11 real queries padded to 16 lanes, over a 67-dim inner product.
        let k = lcg_matrix(3, 1, 67);
        let q = lcg_matrix(4, 11, 67);
        let n = 11usize.next_multiple_of(SCORE_LANES);
        let mut qt = vec![0.0f32; 67 * n];
        for j in 0..11 {
            for (i, &v) in q.row(j).iter().enumerate() {
                qt[i * n + j] = v;
            }
        }
        let mut scores = vec![f32::NAN; n];
        dot_lanes(k.row(0), &qt, &mut scores);
        for (j, &sv) in scores.iter().take(11).enumerate() {
            assert_eq!(sv.to_bits(), dot(q.row(j), k.row(0)).to_bits());
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut row = vec![1.0, 2.0, 3.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut row = vec![1000.0, 1000.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut row: Vec<f32> = vec![];
        softmax_row(&mut row);
    }

    #[test]
    fn rmsnorm_unit_output_scale() {
        let mut x = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        rmsnorm(&mut x, &w, 0.0);
        // rms(3,4) = sqrt(12.5); outputs are x / rms.
        let rms = 12.5f32.sqrt();
        assert!((x[0] - 3.0 / rms).abs() < 1e-6);
        assert!((x[1] - 4.0 / rms).abs() < 1e-6);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let w = vec![1.0; 4];
        let b = vec![0.0; 4];
        layernorm(&mut x, &w, &b, 0.0);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn activations_match_definitions() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert!((silu(0.0)).abs() < 1e-7);
        assert!(silu(10.0) > 9.99);
        assert!(silu(-10.0) > -1e-3 && silu(-10.0) < 0.0);
    }

    #[test]
    fn rope_preserves_norm_and_is_position_dependent() {
        let orig = vec![1.0, 2.0, 3.0, 4.0];
        let mut a = orig.clone();
        let mut b = orig.clone();
        apply_rope(&mut a, 1, 4, 3);
        apply_rope(&mut b, 1, 4, 7);
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm(&a) - norm(&orig)).abs() < 1e-5);
        assert!(a != b, "different positions must rotate differently");
        // Position 0 is the identity rotation.
        let mut c = orig.clone();
        apply_rope(&mut c, 1, 4, 0);
        assert_eq!(c, orig);
    }

    #[test]
    fn rope_relative_property() {
        // Dot product of rope(q,i) and rope(k,j) depends only on i - j.
        let q = vec![0.3, -0.7, 1.1, 0.2];
        let k = vec![-0.5, 0.9, 0.4, -1.3];
        let dot_at = |i: usize, j: usize| {
            let mut qi = q.clone();
            let mut kj = k.clone();
            apply_rope(&mut qi, 1, 4, i);
            apply_rope(&mut kj, 1, 4, j);
            qi.iter().zip(&kj).map(|(a, b)| a * b).sum::<f32>()
        };
        assert!((dot_at(5, 3) - dot_at(9, 7)).abs() < 1e-4);
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn add_bias_applies_to_all_rows() {
        let mut m = Matrix::zeros(2, 2);
        add_bias(&mut m, &[1.0, 2.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 1.0, 2.0]);
    }
}
