//! Elementary neural-network operators used by the functional transformer.
//!
//! All operators are straightforward scalar implementations; they exist for
//! *correctness* (validating the paged attention kernels end-to-end), not
//! for speed. The attention kernels in [`crate::attention`] are the
//! performance-sensitive code this crate is really about.

use crate::tensor::Matrix;

/// `C = A * B` where `A` is `[m, k]` and `B` is `[k, n]`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// In-place numerically-stable softmax over a single row.
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Root-mean-square normalization (Llama 2): `x * w / rms(x)`.
pub fn rmsnorm(x: &mut [f32], weight: &[f32], eps: f32) {
    debug_assert_eq!(x.len(), weight.len());
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (v, w) in x.iter_mut().zip(weight) {
        *v = *v * inv * w;
    }
}

/// Standard LayerNorm with affine parameters (OPT).
pub fn layernorm(x: &mut [f32], weight: &[f32], bias: &[f32], eps: f32) {
    debug_assert_eq!(x.len(), weight.len());
    debug_assert_eq!(x.len(), bias.len());
    let n = x.len() as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for ((v, w), b) in x.iter_mut().zip(weight).zip(bias) {
        *v = (*v - mean) * inv * w + b;
    }
}

/// Sigmoid-weighted linear unit: `x * sigmoid(x)`.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Rectified linear unit.
#[must_use]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Applies rotary position embeddings in place to one token's Q or K rows.
///
/// `x` is laid out as `[num_heads, head_dim]` flattened; `pos` is the
/// token's absolute position. Uses the standard base-10000 frequencies and
/// the adjacent-pair rotation convention.
///
/// # Panics
///
/// Panics if `head_dim` is odd or `x.len()` is not a multiple of it.
pub fn apply_rope(x: &mut [f32], num_heads: usize, head_dim: usize, pos: usize) {
    assert_eq!(head_dim % 2, 0, "rope requires even head_dim");
    assert_eq!(x.len(), num_heads * head_dim);
    for h in 0..num_heads {
        let head = &mut x[h * head_dim..(h + 1) * head_dim];
        for i in 0..head_dim / 2 {
            let theta = (pos as f32) * 10000f32.powf(-2.0 * i as f32 / head_dim as f32);
            let (sin, cos) = theta.sin_cos();
            let (a, b) = (head[2 * i], head[2 * i + 1]);
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Element-wise `a += b` over two same-shaped matrices (residual add).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add_rows(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// Adds `bias` element-wise to every row of `m`.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols());
    for r in 0..m.rows() {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Index of the maximum element (greedy sampling); ties go to the lower
/// index.
///
/// # Panics
///
/// Panics if `logits` is empty.
#[must_use]
pub fn argmax(logits: &[f32]) -> usize {
    assert!(!logits.is_empty());
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut row = vec![1.0, 2.0, 3.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut row = vec![1000.0, 1000.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut row: Vec<f32> = vec![];
        softmax_row(&mut row);
    }

    #[test]
    fn rmsnorm_unit_output_scale() {
        let mut x = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        rmsnorm(&mut x, &w, 0.0);
        // rms(3,4) = sqrt(12.5); outputs are x / rms.
        let rms = 12.5f32.sqrt();
        assert!((x[0] - 3.0 / rms).abs() < 1e-6);
        assert!((x[1] - 4.0 / rms).abs() < 1e-6);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let w = vec![1.0; 4];
        let b = vec![0.0; 4];
        layernorm(&mut x, &w, &b, 0.0);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn activations_match_definitions() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert!((silu(0.0)).abs() < 1e-7);
        assert!(silu(10.0) > 9.99);
        assert!(silu(-10.0) > -1e-3 && silu(-10.0) < 0.0);
    }

    #[test]
    fn rope_preserves_norm_and_is_position_dependent() {
        let orig = vec![1.0, 2.0, 3.0, 4.0];
        let mut a = orig.clone();
        let mut b = orig.clone();
        apply_rope(&mut a, 1, 4, 3);
        apply_rope(&mut b, 1, 4, 7);
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm(&a) - norm(&orig)).abs() < 1e-5);
        assert!(a != b, "different positions must rotate differently");
        // Position 0 is the identity rotation.
        let mut c = orig.clone();
        apply_rope(&mut c, 1, 4, 0);
        assert_eq!(c, orig);
    }

    #[test]
    fn rope_relative_property() {
        // Dot product of rope(q,i) and rope(k,j) depends only on i - j.
        let q = vec![0.3, -0.7, 1.1, 0.2];
        let k = vec![-0.5, 0.9, 0.4, -1.3];
        let dot_at = |i: usize, j: usize| {
            let mut qi = q.clone();
            let mut kj = k.clone();
            apply_rope(&mut qi, 1, 4, i);
            apply_rope(&mut kj, 1, 4, j);
            qi.iter().zip(&kj).map(|(a, b)| a * b).sum::<f32>()
        };
        assert!((dot_at(5, 3) - dot_at(9, 7)).abs() < 1e-4);
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn add_bias_applies_to_all_rows() {
        let mut m = Matrix::zeros(2, 2);
        add_bias(&mut m, &[1.0, 2.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 1.0, 2.0]);
    }
}
