//! A tiny, fully-functional transformer running on the paged KV cache.
//!
//! This is the workspace's correctness oracle: the serving engines in
//! `pensieve-core` can execute real forward passes with it and assert that
//! *stateful* serving (reusing cached KV-tokens, swapping them out and in,
//! recomputing dropped prefixes as sub-requests) produces the same logits
//! as *stateless* recomputation from scratch — the end-to-end property the
//! paper's design must preserve.
//!
//! The model supports both paper families: OPT-style (learned positions,
//! LayerNorm, ReLU MLP) and Llama-style (RoPE, RMSNorm, gated SiLU MLP,
//! Grouped-Query Attention). Weights are random but deterministic per
//! seed; biases are omitted (they exercise no additional kernel paths).

use crossbeam::pool::Pool;
use pensieve_model::{Activation, ModelConfig, Norm, PositionEmbedding};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attention::multi::paged_multi_token_pool;
use crate::attention::naive::naive_attention;
use crate::attention::{AttnConfig, AttnSeq};
use crate::ops::{
    add_rows, apply_rope, layernorm, matmul, matmul_pool, matmul_ref, relu, rmsnorm, silu,
};
use crate::paged::{BlockTable, KvLayout, OutOfBlocks, PagedKvCache};
use crate::tensor::Matrix;

/// Maximum absolute position supported by the learned position table.
const MAX_POSITIONS: usize = 4096;

/// Weights of one transformer layer.
pub(crate) struct LayerWeights {
    pub(crate) wq: Matrix,
    pub(crate) wk: Matrix,
    pub(crate) wv: Matrix,
    pub(crate) wo: Matrix,
    pub(crate) norm1: Vec<f32>,
    pub(crate) norm1_bias: Vec<f32>,
    pub(crate) norm2: Vec<f32>,
    pub(crate) norm2_bias: Vec<f32>,
    /// OPT: `[w_up, w_down]`. Llama: `[w_gate, w_up, w_down]`.
    pub(crate) mlp: Vec<Matrix>,
}

/// A deterministic random transformer over a [`ModelConfig`].
pub struct TinyModel {
    pub(crate) cfg: ModelConfig,
    pub(crate) attn: AttnConfig,
    pub(crate) embed: Matrix,
    pub(crate) pos_embed: Option<Matrix>,
    pub(crate) layers: Vec<LayerWeights>,
    pub(crate) final_norm: Vec<f32>,
    pub(crate) final_norm_bias: Vec<f32>,
    pub(crate) lm_head: Matrix,
    /// Persistent worker pool for the batched kernels (serial pool =
    /// fully serial). Results are bit-identical at every width; see
    /// [`TinyModel::set_threads`].
    pool: Pool,
}

/// One contiguous run of query tokens at absolute positions
/// `start_pos .. start_pos + tokens.len()`.
///
/// A normal prefill or decode step is a single segment at the trailing end
/// of the context; dropped-token recomputation adds a second, leading
/// segment (paper Figure 8).
#[derive(Debug, Clone)]
pub struct SegmentInput {
    /// Raw token ids to process.
    pub tokens: Vec<u32>,
    /// Absolute context position of `tokens[0]`.
    pub start_pos: usize,
}

/// One request's input to a batched forward pass.
#[derive(Debug)]
pub struct SeqInput<'a> {
    /// Query segments, disjoint and in ascending position order. The last
    /// segment must end at the sequence's final context length.
    pub segments: Vec<SegmentInput>,
    /// The sequence's block table (mutated: slots are appended/written).
    pub table: &'a mut BlockTable,
}

impl SeqInput<'_> {
    /// Context length after this forward pass: end of the last segment.
    ///
    /// # Panics
    ///
    /// Panics if there are no segments.
    #[must_use]
    pub fn context_len(&self) -> usize {
        // lint:allow(r1-panic): documented panic contract — callers must
        // provide at least one segment.
        let last = self.segments.last().expect("no segments");
        last.start_pos + last.tokens.len()
    }

    fn total_query_tokens(&self) -> usize {
        self.segments.iter().map(|s| s.tokens.len()).sum()
    }
}

impl TinyModel {
    /// Builds a model with deterministic random weights.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    #[must_use]
    pub fn new_random(cfg: &ModelConfig, seed: u64) -> Self {
        // lint:allow(r1-panic): construction-time config validation —
        // documented panic contract, never on a serving path.
        cfg.validate().expect("invalid model config");
        let mut rng = StdRng::seed_from_u64(seed);
        let h = cfg.hidden_size;
        let kvw = cfg.kv_hidden();
        // Small init keeps activations stable across layers.
        let scale = 0.5 / (h as f32).sqrt();
        let mut mat = |rows: usize, cols: usize| {
            Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|_| rng.random_range(-scale..scale))
                    .collect(),
            )
        };
        let layers = (0..cfg.num_layers)
            .map(|_| {
                let mlp = match cfg.family {
                    pensieve_model::ModelFamily::Opt => {
                        vec![mat(h, cfg.ffn_hidden), mat(cfg.ffn_hidden, h)]
                    }
                    pensieve_model::ModelFamily::Llama2 => vec![
                        mat(h, cfg.ffn_hidden),
                        mat(h, cfg.ffn_hidden),
                        mat(cfg.ffn_hidden, h),
                    ],
                };
                LayerWeights {
                    wq: mat(h, h),
                    wk: mat(h, kvw),
                    wv: mat(h, kvw),
                    wo: mat(h, h),
                    norm1: vec![1.0; h],
                    norm1_bias: vec![0.0; h],
                    norm2: vec![1.0; h],
                    norm2_bias: vec![0.0; h],
                    mlp,
                }
            })
            .collect();
        let pos_embed = match cfg.position_embedding {
            PositionEmbedding::Learned => Some(mat(MAX_POSITIONS, h)),
            PositionEmbedding::Rotary => None,
        };
        TinyModel {
            attn: AttnConfig::new(cfg.num_heads, cfg.num_kv_heads, cfg.head_dim),
            embed: mat(cfg.vocab_size, h),
            pos_embed,
            final_norm: vec![1.0; h],
            final_norm_bias: vec![0.0; h],
            lm_head: mat(h, cfg.vocab_size),
            layers,
            cfg: cfg.clone(),
            pool: Pool::serial(),
        }
    }

    /// Sets the number of worker threads used by the batched compute
    /// kernels ([`matmul_pool`] row partitions, [`paged_multi_token_pool`]
    /// sequence partitions) by installing the process-wide persistent
    /// pool of that width ([`Pool::global`]) — workers are parked between
    /// calls, never respawned.
    ///
    /// Forward-pass results are **bit-identical** at every thread count:
    /// partitions are disjoint output regions merged sequentially in a
    /// fixed order. `0` is clamped to `1`.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = if threads <= 1 {
            Pool::serial()
        } else {
            Pool::global(threads)
        };
    }

    /// Installs an explicit worker-pool handle (e.g. one owned by the
    /// engine builder) instead of the process-wide pool.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// Current worker-thread setting (see [`TinyModel::set_threads`]).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The worker pool backing the batched kernels.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// KV storage geometry for a given block size.
    #[must_use]
    pub fn kv_layout(&self, block_size: usize) -> KvLayout {
        KvLayout {
            num_kv_heads: self.cfg.num_kv_heads,
            head_dim: self.cfg.head_dim,
            block_size,
        }
    }

    fn normalize(&self, x: &mut [f32], weight: &[f32], bias: &[f32]) {
        match self.cfg.norm {
            Norm::LayerNorm => layernorm(x, weight, bias, 1e-5),
            Norm::RmsNorm => rmsnorm(x, weight, 1e-5),
        }
    }

    fn embed_token(&self, token: u32, pos: usize) -> Vec<f32> {
        let mut row = self.embed.row(token as usize).to_vec();
        if let Some(pe) = &self.pos_embed {
            assert!(pos < MAX_POSITIONS, "position {pos} beyond table");
            for (r, p) in row.iter_mut().zip(pe.row(pos)) {
                *r += p;
            }
        }
        row
    }

    /// Batched forward pass over the paged KV cache.
    ///
    /// For every sequence, slots for query positions beyond the current
    /// table length are appended (allocating blocks from `cache`); query
    /// positions below it (recomputation) are written in place and their
    /// blocks must already be resident, as must every non-query context
    /// block. Returns the logits of each sequence's **last** token, one row
    /// per sequence, in input order.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if the pool cannot hold the new tokens.
    ///
    /// # Panics
    ///
    /// Panics if segments are malformed (empty, overlapping, descending) or
    /// required context blocks are holes.
    pub fn forward(
        &self,
        cache: &mut PagedKvCache,
        batch: &mut [SeqInput<'_>],
    ) -> Result<Matrix, OutOfBlocks> {
        let h = self.cfg.hidden_size;
        let total_q: usize = batch.iter().map(SeqInput::total_query_tokens).sum();
        assert!(total_q > 0, "empty batch");

        // Per query row: absolute position; per sequence: row ranges.
        let mut positions = Vec::with_capacity(total_q);
        let mut x = Matrix::zeros(total_q, h);
        let mut row = 0;
        // (block, slot) of each query row, precomputed once.
        let mut slots = Vec::with_capacity(total_q);
        for seq in batch.iter_mut() {
            assert!(!seq.segments.is_empty(), "sequence without segments");
            let mut prev_end = 0;
            let ctx = seq.context_len();
            for (i, seg) in seq.segments.iter().enumerate() {
                assert!(!seg.tokens.is_empty(), "empty segment");
                assert!(
                    i == 0 || seg.start_pos >= prev_end,
                    "segments overlap or descend"
                );
                prev_end = seg.start_pos + seg.tokens.len();
                for (j, &tok) in seg.tokens.iter().enumerate() {
                    let pos = seg.start_pos + j;
                    x.row_mut(row).copy_from_slice(&self.embed_token(tok, pos));
                    positions.push(pos);
                    // Append new slots; reuse (recompute into) existing ones.
                    let slot = if pos < seq.table.len() {
                        seq.table.position(pos)
                    } else {
                        debug_assert_eq!(pos, seq.table.len(), "gap before append");
                        seq.table.append_token(cache)?
                    };
                    slots.push(slot);
                    row += 1;
                }
            }
            // Every context block a kernel will read must be resident.
            assert!(
                seq.table.is_resident(ctx),
                "context has unfilled holes before forward"
            );
        }

        for (li, lw) in self.layers.iter().enumerate() {
            // Pre-norm.
            let mut xn = x.clone();
            for r in 0..total_q {
                self.normalize(xn.row_mut(r), &lw.norm1, &lw.norm1_bias);
            }
            let mut q = matmul_pool(&xn, &lw.wq, &self.pool);
            let mut k = matmul_pool(&xn, &lw.wk, &self.pool);
            let v = matmul_pool(&xn, &lw.wv, &self.pool);
            if self.cfg.position_embedding == PositionEmbedding::Rotary {
                for (r, &pos) in positions.iter().enumerate() {
                    apply_rope(q.row_mut(r), self.cfg.num_heads, self.cfg.head_dim, pos);
                    apply_rope(k.row_mut(r), self.cfg.num_kv_heads, self.cfg.head_dim, pos);
                }
            }
            // Write this layer's K/V into the paged cache.
            for (r, &(b, s)) in slots.iter().enumerate() {
                cache.write_token(li, b, s, k.row(r), v.row(r));
            }
            // Attention over the paged cache, one AttnSeq per segment.
            let layer_view = cache.layer(li);
            let mut seqs = Vec::new();
            let mut r0 = 0;
            for seq in batch.iter() {
                for seg in &seq.segments {
                    seqs.push(AttnSeq {
                        q_start: r0,
                        q_len: seg.tokens.len(),
                        context_len: seg.start_pos + seg.tokens.len(),
                        table: seq.table,
                    });
                    r0 += seg.tokens.len();
                }
            }
            let attn_out = paged_multi_token_pool(&self.attn, &q, &layer_view, &seqs, &self.pool);
            let proj = matmul_pool(&attn_out, &lw.wo, &self.pool);
            add_rows(&mut x, &proj);

            // MLP with pre-norm.
            let mut xn = x.clone();
            for r in 0..total_q {
                self.normalize(xn.row_mut(r), &lw.norm2, &lw.norm2_bias);
            }
            let mlp_out = self.mlp(&xn, lw);
            add_rows(&mut x, &mlp_out);
        }

        // Logits for each sequence's last token.
        let mut out = Matrix::zeros(batch.len(), self.cfg.vocab_size);
        let mut r0 = 0;
        for (i, seq) in batch.iter().enumerate() {
            let last_row = r0 + seq.total_query_tokens() - 1;
            let mut hrow = x.row(last_row).to_vec();
            self.normalize(&mut hrow, &self.final_norm, &self.final_norm_bias);
            let logits = matmul(&Matrix::from_vec(1, h, hrow), &self.lm_head);
            out.row_mut(i).copy_from_slice(logits.row(0));
            r0 += seq.total_query_tokens();
        }
        Ok(out)
    }

    fn mlp(&self, xn: &Matrix, lw: &LayerWeights) -> Matrix {
        match self.cfg.activation {
            Activation::Relu => {
                let mut up = matmul_pool(xn, &lw.mlp[0], &self.pool);
                for v in up.as_mut_slice() {
                    *v = relu(*v);
                }
                matmul_pool(&up, &lw.mlp[1], &self.pool)
            }
            Activation::Silu => {
                let mut gate = matmul_pool(xn, &lw.mlp[0], &self.pool);
                let up = matmul_pool(xn, &lw.mlp[1], &self.pool);
                for (g, u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
                    *g = silu(*g) * u;
                }
                matmul_pool(&gate, &lw.mlp[2], &self.pool)
            }
        }
    }

    /// Stateless reference: processes `tokens` from scratch with dense,
    /// contiguous, naive attention and returns the last token's logits.
    ///
    /// Shares no KV-cache code with [`TinyModel::forward`], and uses only
    /// the scalar reference kernels ([`matmul_ref`], naive attention) —
    /// never the blocked or parallel fast paths — so agreement between the
    /// two is strong evidence the whole optimized paged path is correct.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    #[must_use]
    pub fn forward_dense(&self, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty());
        let h = self.cfg.hidden_size;
        let n = tokens.len();
        let mut x = Matrix::zeros(n, h);
        for (r, &tok) in tokens.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&self.embed_token(tok, r));
        }
        for lw in &self.layers {
            let mut xn = x.clone();
            for r in 0..n {
                self.normalize(xn.row_mut(r), &lw.norm1, &lw.norm1_bias);
            }
            let mut q = matmul_ref(&xn, &lw.wq);
            let mut k = matmul_ref(&xn, &lw.wk);
            let v = matmul_ref(&xn, &lw.wv);
            if self.cfg.position_embedding == PositionEmbedding::Rotary {
                for r in 0..n {
                    apply_rope(q.row_mut(r), self.cfg.num_heads, self.cfg.head_dim, r);
                    apply_rope(k.row_mut(r), self.cfg.num_kv_heads, self.cfg.head_dim, r);
                }
            }
            let attn_out = naive_attention(&self.attn, &q, &k, &v);
            let proj = matmul_ref(&attn_out, &lw.wo);
            add_rows(&mut x, &proj);
            let mut xn = x.clone();
            for r in 0..n {
                self.normalize(xn.row_mut(r), &lw.norm2, &lw.norm2_bias);
            }
            let mlp_out = self.mlp_ref(&xn, lw);
            add_rows(&mut x, &mlp_out);
        }
        let mut hrow = x.row(n - 1).to_vec();
        self.normalize(&mut hrow, &self.final_norm, &self.final_norm_bias);
        matmul_ref(&Matrix::from_vec(1, h, hrow), &self.lm_head)
            .row(0)
            .to_vec()
    }

    /// Reference-kernel MLP used only by [`TinyModel::forward_dense`].
    fn mlp_ref(&self, xn: &Matrix, lw: &LayerWeights) -> Matrix {
        match self.cfg.activation {
            Activation::Relu => {
                let mut up = matmul_ref(xn, &lw.mlp[0]);
                for v in up.as_mut_slice() {
                    *v = relu(*v);
                }
                matmul_ref(&up, &lw.mlp[1])
            }
            Activation::Silu => {
                let mut gate = matmul_ref(xn, &lw.mlp[0]);
                let up = matmul_ref(xn, &lw.mlp[1]);
                for (g, u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
                    *g = silu(*g) * u;
                }
                matmul_ref(&gate, &lw.mlp[2])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::argmax;

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    fn check_incremental_matches_dense(cfg: &ModelConfig) {
        let model = TinyModel::new_random(cfg, 42);
        let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 64);
        let mut table = BlockTable::new(4);
        let prompt: Vec<u32> = vec![3, 17, 99, 4, 56];

        // Stateful: prefill the prompt, then decode two tokens one by one.
        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: prompt.clone(),
                start_pos: 0,
            }],
            table: &mut table,
        }];
        let logits = model.forward(&mut cache, &mut batch).unwrap();
        let t1 = argmax(logits.row(0)) as u32;

        let dense1 = model.forward_dense(&prompt);
        assert!(
            max_diff(logits.row(0), &dense1) < 1e-3,
            "prefill logits diverge: {}",
            max_diff(logits.row(0), &dense1)
        );

        let mut ctx: Vec<u32> = prompt.clone();
        ctx.push(t1);
        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: vec![t1],
                start_pos: prompt.len(),
            }],
            table: &mut table,
        }];
        let logits2 = model.forward(&mut cache, &mut batch).unwrap();
        let dense2 = model.forward_dense(&ctx);
        assert!(
            max_diff(logits2.row(0), &dense2) < 1e-3,
            "decode logits diverge: {}",
            max_diff(logits2.row(0), &dense2)
        );
    }

    #[test]
    fn llama_incremental_matches_dense() {
        check_incremental_matches_dense(&ModelConfig::tiny_llama());
    }

    #[test]
    fn opt_incremental_matches_dense() {
        check_incremental_matches_dense(&ModelConfig::tiny_opt());
    }

    /// A follow-up turn reusing cached history must equal recomputing the
    /// whole conversation from scratch — the paper's core claim.
    #[test]
    fn stateful_turn_matches_stateless_recompute() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 7);
        let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 64);
        let mut table = BlockTable::new(4);
        let turn1: Vec<u32> = vec![5, 9, 2, 88, 41, 7];
        let turn2: Vec<u32> = vec![13, 6, 120];

        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: turn1.clone(),
                start_pos: 0,
            }],
            table: &mut table,
        }];
        model.forward(&mut cache, &mut batch).unwrap();

        // Turn 2: only the new tokens are processed (stateful).
        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: turn2.clone(),
                start_pos: turn1.len(),
            }],
            table: &mut table,
        }];
        let stateful = model.forward(&mut cache, &mut batch).unwrap();

        let full: Vec<u32> = turn1.iter().chain(&turn2).copied().collect();
        let stateless = model.forward_dense(&full);
        assert!(max_diff(stateful.row(0), &stateless) < 1e-3);
    }

    /// Dropped-prefix recomputation via two sub-request segments
    /// (paper Figure 8) must also match stateless recompute.
    #[test]
    fn dropped_prefix_recompute_matches_stateless() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 7);
        let block = 4usize;
        let mut cache = PagedKvCache::new(model.kv_layout(block), cfg.num_layers, 64);
        let mut table = BlockTable::new(block);
        let history: Vec<u32> = (0..16).map(|i| (i * 7 + 3) % 128).collect();

        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: history.clone(),
                start_pos: 0,
            }],
            table: &mut table,
        }];
        model.forward(&mut cache, &mut batch).unwrap();

        // Drop the leading two blocks (tokens 0..8), as CPU-cache pressure
        // would; then serve a new prompt, recomputing the dropped prefix.
        table.free_blocks(&mut cache, 0..2);
        table.refill(&mut cache, 0..2).unwrap();
        let new_prompt: Vec<u32> = vec![100, 101, 102];
        let mut batch = [SeqInput {
            segments: vec![
                SegmentInput {
                    tokens: history[0..8].to_vec(),
                    start_pos: 0,
                },
                SegmentInput {
                    tokens: new_prompt.clone(),
                    start_pos: history.len(),
                },
            ],
            table: &mut table,
        }];
        let stateful = model.forward(&mut cache, &mut batch).unwrap();

        let full: Vec<u32> = history.iter().chain(&new_prompt).copied().collect();
        let stateless = model.forward_dense(&full);
        assert!(
            max_diff(stateful.row(0), &stateless) < 1e-3,
            "diff {}",
            max_diff(stateful.row(0), &stateless)
        );
    }

    /// Two requests served in one unified batch (one prefill + one decode)
    /// must each match their individually computed logits.
    #[test]
    fn unified_batch_matches_individual() {
        let cfg = ModelConfig::tiny_opt();
        let model = TinyModel::new_random(&cfg, 3);
        let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 64);

        // Request A: an existing conversation mid-decode.
        let mut table_a = BlockTable::new(4);
        let hist_a: Vec<u32> = vec![11, 22, 33, 44];
        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: hist_a.clone(),
                start_pos: 0,
            }],
            table: &mut table_a,
        }];
        model.forward(&mut cache, &mut batch).unwrap();

        // Request B: a fresh prefill, batched with A's next decode step.
        let mut table_b = BlockTable::new(4);
        let prompt_b: Vec<u32> = vec![70, 80, 90];
        let next_a: u32 = 55;
        let mut batch = [
            SeqInput {
                segments: vec![SegmentInput {
                    tokens: vec![next_a],
                    start_pos: hist_a.len(),
                }],
                table: &mut table_a,
            },
            SeqInput {
                segments: vec![SegmentInput {
                    tokens: prompt_b.clone(),
                    start_pos: 0,
                }],
                table: &mut table_b,
            },
        ];
        let logits = model.forward(&mut cache, &mut batch).unwrap();

        let mut full_a = hist_a.clone();
        full_a.push(next_a);
        let dense_a = model.forward_dense(&full_a);
        let dense_b = model.forward_dense(&prompt_b);
        assert!(max_diff(logits.row(0), &dense_a) < 1e-3);
        assert!(max_diff(logits.row(1), &dense_b) < 1e-3);
    }

    /// The data-parallel compute path must not change a single bit of the
    /// logits: partitions are disjoint and merged in fixed order.
    #[test]
    fn forward_bit_identical_across_thread_counts() {
        let cfg = ModelConfig::tiny_llama();
        let run = |threads: usize| {
            let mut model = TinyModel::new_random(&cfg, 9);
            model.set_threads(threads);
            let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 64);
            let mut table = BlockTable::new(4);
            let mut batch = [SeqInput {
                segments: vec![SegmentInput {
                    tokens: (0..13).map(|i| (i * 5 + 2) % 128).collect(),
                    start_pos: 0,
                }],
                table: &mut table,
            }];
            let prefill = model.forward(&mut cache, &mut batch).unwrap();
            let mut batch = [SeqInput {
                segments: vec![SegmentInput {
                    tokens: vec![42],
                    start_pos: 13,
                }],
                table: &mut table,
            }];
            let decode = model.forward(&mut cache, &mut batch).unwrap();
            (prefill, decode)
        };
        let base = run(1);
        for threads in [2usize, 3, 4] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    /// OPT's learned position table is finite; exceeding it is a clear
    /// panic rather than silent garbage.
    #[test]
    #[should_panic(expected = "beyond table")]
    fn learned_positions_are_bounded() {
        let cfg = ModelConfig::tiny_opt();
        let model = TinyModel::new_random(&cfg, 5);
        let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 8);
        let mut table = BlockTable::new(4);
        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: vec![1],
                start_pos: 100_000,
            }],
            table: &mut table,
        }];
        let _ = model.forward(&mut cache, &mut batch);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn forward_rejects_empty_batch() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 5);
        let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 8);
        let mut batch: [SeqInput<'_>; 0] = [];
        let _ = model.forward(&mut cache, &mut batch);
    }

    #[test]
    fn forward_propagates_out_of_blocks() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 1);
        let mut cache = PagedKvCache::new(model.kv_layout(4), cfg.num_layers, 1);
        let mut table = BlockTable::new(4);
        let mut batch = [SeqInput {
            segments: vec![SegmentInput {
                tokens: (0..9).collect(),
                start_pos: 0,
            }],
            table: &mut table,
        }];
        assert!(model.forward(&mut cache, &mut batch).is_err());
    }
}
