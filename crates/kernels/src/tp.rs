//! Tensor-parallel execution of the functional transformer (§4.4.2).
//!
//! The paper partitions large models Megatron-style: Q/K/V projections
//! are column-parallel (each worker owns a slice of the attention heads),
//! output and MLP-down projections are row-parallel, and two all-reduces
//! per layer combine the partial sums. Crucially for Pensieve, **the KV
//! cache partitions along the head dimension with the model** — each
//! worker stores its own shard of every KV-token in its own paged pool
//! and follows the same migration plan, so eviction decisions are
//! worker-agnostic.
//!
//! This module implements that partitioning for [`TinyModel`]:
//!
//! * [`ShardRunner`] — one worker's state: its weight slices, its paged KV
//!   pool, and its block tables. Exposes exactly the per-layer operations
//!   a worker executes between all-reduces.
//! * [`TpModel`] — a single-threaded orchestrator running all shards in
//!   sequence with explicit all-reduce summation; used to validate that
//!   sharded execution is numerically equivalent to the unsharded model.
//!
//! `pensieve-core`'s threaded engine drives the same [`ShardRunner`]s
//! from real worker threads over channels (paper Figure 7).

use std::collections::HashMap;

use crossbeam::pool::Pool;
use pensieve_model::{Activation, ModelConfig, Norm, PositionEmbedding};

use crate::attention::multi::paged_multi_token_pool;
use crate::attention::{AttnConfig, AttnSeq};
use crate::model::{SegmentInput, TinyModel};
use crate::ops::{apply_rope, layernorm, matmul, matmul_pool, relu, rmsnorm, silu};
use crate::paged::{BlockTable, KvLayout, OutOfBlocks, PagedKvCache};
use crate::tensor::Matrix;

/// Copies columns `lo..hi` of `m` into a new matrix.
fn slice_cols(m: &Matrix, lo: usize, hi: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), hi - lo);
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&m.row(r)[lo..hi]);
    }
    out
}

/// Copies rows `lo..hi` of `m` into a new matrix.
fn slice_rows(m: &Matrix, lo: usize, hi: usize) -> Matrix {
    let mut out = Matrix::zeros(hi - lo, m.cols());
    for r in lo..hi {
        out.row_mut(r - lo).copy_from_slice(m.row(r));
    }
    out
}

/// One worker's slice of every layer's weights.
struct ShardLayer {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    /// Row-parallel output projection: `[heads_per_shard * d, hidden]`.
    wo: Matrix,
    /// Column-parallel MLP matrices and the row-parallel down projection.
    mlp: Vec<Matrix>,
}

/// One layer's norm parameters: `(norm1, norm1_bias, norm2, norm2_bias)`.
type LayerNorms = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

/// The replicated (non-sharded) weights every worker and the scheduler
/// share: embeddings, norms, and the model configuration.
pub struct ReplicatedWeights {
    cfg: ModelConfig,
    embed: Matrix,
    pos_embed: Option<Matrix>,
    norms: Vec<LayerNorms>,
    final_norm: Vec<f32>,
    final_norm_bias: Vec<f32>,
}

impl ReplicatedWeights {
    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Embeds one token at an absolute position.
    ///
    /// # Panics
    ///
    /// Panics if the position exceeds the learned-position table.
    #[must_use]
    pub fn embed_token(&self, token: u32, pos: usize) -> Vec<f32> {
        let mut row = self.embed.row(token as usize).to_vec();
        if let Some(pe) = &self.pos_embed {
            for (r, p) in row.iter_mut().zip(pe.row(pos)) {
                *r += p;
            }
        }
        row
    }

    fn normalize(&self, x: &mut [f32], weight: &[f32], bias: &[f32]) {
        match self.cfg.norm {
            Norm::LayerNorm => layernorm(x, weight, bias, 1e-5),
            Norm::RmsNorm => rmsnorm(x, weight, 1e-5),
        }
    }

    /// Applies layer `l`'s pre-attention norm to every row of a copy.
    #[must_use]
    pub fn norm1(&self, l: usize, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        let (w, b, _, _) = &self.norms[l];
        for r in 0..out.rows() {
            self.normalize(out.row_mut(r), w, b);
        }
        out
    }

    /// Applies layer `l`'s pre-MLP norm to every row of a copy.
    #[must_use]
    pub fn norm2(&self, l: usize, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        let (_, _, w, b) = &self.norms[l];
        for r in 0..out.rows() {
            self.normalize(out.row_mut(r), w, b);
        }
        out
    }

    /// Applies the final norm to one hidden row.
    #[must_use]
    pub fn final_norm(&self, h: &[f32]) -> Vec<f32> {
        let mut row = h.to_vec();
        self.normalize(&mut row, &self.final_norm, &self.final_norm_bias);
        row
    }
}

/// One tensor-parallel worker: weight slices + its KV-cache partition.
pub struct ShardRunner {
    cfg: ModelConfig,
    attn: AttnConfig,
    layers: Vec<ShardLayer>,
    /// Column slice of the LM head: `[hidden, vocab / num_shards]`.
    lm_head: Matrix,
    cache: PagedKvCache,
    tables: HashMap<u64, BlockTable>,
    /// Pass-local state: the (block, slot) of each query row, the query
    /// positions, and the attention segments.
    slots: Vec<(usize, usize)>,
    positions: Vec<usize>,
    pass_conv: u64,
    pass_segments: Vec<(usize, usize)>,
    /// Persistent worker pool for this shard's intra-operator math
    /// (serial pool = serial).
    pool: Pool,
}

impl ShardRunner {
    /// This worker's query-head count.
    #[must_use]
    pub fn heads_per_shard(&self) -> usize {
        self.attn.num_heads
    }

    /// Sets the number of worker threads used *inside* this shard's
    /// operators (blocked GEMM row partitions and attention
    /// (sequence, KV-head) partitions).
    ///
    /// Orthogonal to tensor-parallel sharding: shards split the model,
    /// intra-shard threads split each shard's math. Results are
    /// bit-identical at every setting; `0` is clamped to `1`.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = if threads <= 1 {
            Pool::serial()
        } else {
            Pool::global(threads)
        };
    }

    /// Allocates KV slots for a pass over `conv` with the given query
    /// `segments` (`(start_pos, len)` pairs, ascending; the last ends at
    /// the sequence's new context length).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if this shard's pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if segments are malformed or required blocks are holes.
    pub fn begin_pass(
        &mut self,
        conv: u64,
        segments: &[(usize, usize)],
    ) -> Result<(), OutOfBlocks> {
        let block_size = self.cache.layout().block_size;
        let table = self
            .tables
            .entry(conv)
            .or_insert_with(|| BlockTable::new(block_size));
        self.slots.clear();
        self.positions.clear();
        for &(start, len) in segments {
            assert!(len > 0, "empty segment");
            for pos in start..start + len {
                let slot = if pos < table.len() {
                    table.position(pos)
                } else {
                    debug_assert_eq!(pos, table.len());
                    table.append_token(&mut self.cache)?
                };
                self.slots.push(slot);
                self.positions.push(pos);
            }
        }
        self.pass_conv = conv;
        self.pass_segments = segments.to_vec();
        Ok(())
    }

    /// Computes this shard's attention partial for layer `l`: QKV over its
    /// heads, KV-cache update, paged multi-token attention, and the
    /// row-parallel output projection. The returned `[tokens, hidden]`
    /// matrix is summed across shards by the caller (all-reduce).
    #[must_use]
    pub fn attn_partial(&mut self, l: usize, xn: &Matrix) -> Matrix {
        let lw = &self.layers[l];
        let mut q = matmul_pool(xn, &lw.wq, &self.pool);
        let mut k = matmul_pool(xn, &lw.wk, &self.pool);
        let v = matmul_pool(xn, &lw.wv, &self.pool);
        if self.cfg.position_embedding == PositionEmbedding::Rotary {
            for r in 0..q.rows() {
                apply_rope(
                    q.row_mut(r),
                    self.attn.num_heads,
                    self.cfg.head_dim,
                    self.positions[r],
                );
                apply_rope(
                    k.row_mut(r),
                    self.attn.num_kv_heads,
                    self.cfg.head_dim,
                    self.positions[r],
                );
            }
        }
        for (r, &(b, s)) in self.slots.iter().enumerate() {
            self.cache.write_token(l, b, s, k.row(r), v.row(r));
        }
        let table = &self.tables[&self.pass_conv];
        let mut seqs = Vec::new();
        let mut q_start = 0;
        for &(start, len) in &self.pass_segments {
            seqs.push(AttnSeq {
                q_start,
                q_len: len,
                context_len: start + len,
                table,
            });
            q_start += len;
        }
        let attn_out =
            paged_multi_token_pool(&self.attn, &q, &self.cache.layer(l), &seqs, &self.pool);
        matmul_pool(&attn_out, &lw.wo, &self.pool)
    }

    /// Computes this shard's MLP partial for layer `l` (column-parallel up
    /// / gate, row-parallel down). Summed across shards by the caller.
    #[must_use]
    pub fn mlp_partial(&self, l: usize, xn: &Matrix) -> Matrix {
        let lw = &self.layers[l];
        match self.cfg.activation {
            Activation::Relu => {
                let mut up = matmul_pool(xn, &lw.mlp[0], &self.pool);
                for v in up.as_mut_slice() {
                    *v = relu(*v);
                }
                matmul_pool(&up, &lw.mlp[1], &self.pool)
            }
            Activation::Silu => {
                let mut gate = matmul_pool(xn, &lw.mlp[0], &self.pool);
                let up = matmul_pool(xn, &lw.mlp[1], &self.pool);
                for (g, u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
                    *g = silu(*g) * u;
                }
                matmul_pool(&gate, &lw.mlp[2], &self.pool)
            }
        }
    }

    /// This shard's slice of the output logits (all-gathered by the
    /// caller).
    #[must_use]
    pub fn lm_head_partial(&self, h: &[f32]) -> Vec<f32> {
        matmul(&Matrix::from_vec(1, h.len(), h.to_vec()), &self.lm_head)
            .row(0)
            .to_vec()
    }
}

/// Single-threaded tensor-parallel orchestrator over `n` shards.
pub struct TpModel {
    replicated: ReplicatedWeights,
    shards: Vec<ShardRunner>,
}

impl TpModel {
    /// Shards `model` across `num_shards` workers, each with its own paged
    /// KV pool of `blocks_per_shard` blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if heads, KV heads, FFN width, or vocabulary are not
    /// divisible by `num_shards`.
    #[must_use]
    pub fn new(
        model: &TinyModel,
        num_shards: usize,
        block_size: usize,
        blocks_per_shard: usize,
    ) -> Self {
        let cfg = &model.cfg;
        assert!(num_shards > 0);
        assert_eq!(cfg.num_heads % num_shards, 0, "heads must divide");
        assert_eq!(cfg.num_kv_heads % num_shards, 0, "kv heads must divide");
        assert_eq!(cfg.ffn_hidden % num_shards, 0, "ffn must divide");
        assert_eq!(cfg.vocab_size % num_shards, 0, "vocab must divide");
        let d = cfg.head_dim;
        let hpw = cfg.num_heads / num_shards;
        let kvpw = cfg.num_kv_heads / num_shards;
        let fpw = cfg.ffn_hidden / num_shards;
        let vpw = cfg.vocab_size / num_shards;

        let shards = (0..num_shards)
            .map(|w| {
                let layers = model
                    .layers
                    .iter()
                    .map(|lw| {
                        let mlp = match cfg.family {
                            pensieve_model::ModelFamily::Opt => vec![
                                slice_cols(&lw.mlp[0], w * fpw, (w + 1) * fpw),
                                slice_rows(&lw.mlp[1], w * fpw, (w + 1) * fpw),
                            ],
                            pensieve_model::ModelFamily::Llama2 => vec![
                                slice_cols(&lw.mlp[0], w * fpw, (w + 1) * fpw),
                                slice_cols(&lw.mlp[1], w * fpw, (w + 1) * fpw),
                                slice_rows(&lw.mlp[2], w * fpw, (w + 1) * fpw),
                            ],
                        };
                        ShardLayer {
                            wq: slice_cols(&lw.wq, w * hpw * d, (w + 1) * hpw * d),
                            wk: slice_cols(&lw.wk, w * kvpw * d, (w + 1) * kvpw * d),
                            wv: slice_cols(&lw.wv, w * kvpw * d, (w + 1) * kvpw * d),
                            wo: slice_rows(&lw.wo, w * hpw * d, (w + 1) * hpw * d),
                            mlp,
                        }
                    })
                    .collect();
                ShardRunner {
                    cfg: cfg.clone(),
                    attn: AttnConfig::new(hpw, kvpw, d),
                    layers,
                    lm_head: slice_cols(&model.lm_head, w * vpw, (w + 1) * vpw),
                    cache: PagedKvCache::new(
                        KvLayout {
                            num_kv_heads: kvpw,
                            head_dim: d,
                            block_size,
                        },
                        cfg.num_layers,
                        blocks_per_shard,
                    ),
                    tables: HashMap::new(),
                    slots: Vec::new(),
                    positions: Vec::new(),
                    pass_conv: 0,
                    pass_segments: Vec::new(),
                    pool: Pool::serial(),
                }
            })
            .collect();
        TpModel {
            replicated: ReplicatedWeights {
                cfg: cfg.clone(),
                embed: model.embed.clone(),
                pos_embed: model.pos_embed.clone(),
                norms: model
                    .layers
                    .iter()
                    .map(|lw| {
                        (
                            lw.norm1.clone(),
                            lw.norm1_bias.clone(),
                            lw.norm2.clone(),
                            lw.norm2_bias.clone(),
                        )
                    })
                    .collect(),
                final_norm: model.final_norm.clone(),
                final_norm_bias: model.final_norm_bias.clone(),
            },
            shards,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sets the intra-shard worker thread count on every shard (see
    /// [`ShardRunner::set_threads`]). Bit-identical at every setting.
    pub fn set_threads(&mut self, threads: usize) {
        for shard in &mut self.shards {
            shard.set_threads(threads);
        }
    }

    /// Splits the model into its replicated weights and shard runners, for
    /// drivers that move each shard onto its own worker thread.
    #[must_use]
    pub fn into_parts(self) -> (ReplicatedWeights, Vec<ShardRunner>) {
        (self.replicated, self.shards)
    }

    /// One tensor-parallel forward pass for a single sequence, returning
    /// the last token's logits. Segment semantics match
    /// [`TinyModel::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if any shard's pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or malformed.
    pub fn forward_seq(
        &mut self,
        conv: u64,
        segments: &[SegmentInput],
    ) -> Result<Vec<f32>, OutOfBlocks> {
        assert!(!segments.is_empty());
        let rep = &self.replicated;
        let h = rep.cfg.hidden_size;
        let seg_shapes: Vec<(usize, usize)> = segments
            .iter()
            .map(|s| (s.start_pos, s.tokens.len()))
            .collect();
        for shard in &mut self.shards {
            shard.begin_pass(conv, &seg_shapes)?;
        }
        let total_q: usize = segments.iter().map(|s| s.tokens.len()).sum();
        let mut x = Matrix::zeros(total_q, h);
        let mut row = 0;
        for seg in segments {
            for (j, &tok) in seg.tokens.iter().enumerate() {
                x.row_mut(row)
                    .copy_from_slice(&rep.embed_token(tok, seg.start_pos + j));
                row += 1;
            }
        }
        for l in 0..rep.cfg.num_layers {
            let xn = rep.norm1(l, &x);
            // The first all-reduce: sum attention partials across shards.
            let mut acc = Matrix::zeros(total_q, h);
            for shard in &mut self.shards {
                let partial = shard.attn_partial(l, &xn);
                for (a, p) in acc.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                    *a += p;
                }
            }
            for (xv, av) in x.as_mut_slice().iter_mut().zip(acc.as_slice()) {
                *xv += av;
            }
            let xn = rep.norm2(l, &x);
            // The second all-reduce: sum MLP partials.
            let mut acc = Matrix::zeros(total_q, h);
            for shard in &self.shards {
                let partial = shard.mlp_partial(l, &xn);
                for (a, p) in acc.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                    *a += p;
                }
            }
            for (xv, av) in x.as_mut_slice().iter_mut().zip(acc.as_slice()) {
                *xv += av;
            }
        }
        // All-gather the vocabulary-sharded logits of the last token.
        let hrow = rep.final_norm(x.row(total_q - 1));
        let mut logits = Vec::with_capacity(rep.cfg.vocab_size);
        for shard in &self.shards {
            logits.extend(shard.lm_head_partial(&hrow));
        }
        Ok(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::argmax;

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    fn check_tp_matches_dense(cfg: &ModelConfig, shards: usize) {
        let model = TinyModel::new_random(cfg, 55);
        let mut tp = TpModel::new(&model, shards, 4, 64);
        let prompt: Vec<u32> = vec![9, 27, 4, 81, 33, 2];
        let logits = tp
            .forward_seq(
                1,
                &[SegmentInput {
                    tokens: prompt.clone(),
                    start_pos: 0,
                }],
            )
            .unwrap();
        let dense = model.forward_dense(&prompt);
        assert!(
            max_diff(&logits, &dense) < 1e-3,
            "{} x{shards}: diff {}",
            cfg.name,
            max_diff(&logits, &dense)
        );
        // Decode continues from the sharded caches.
        let tok = argmax(&logits) as u32;
        let logits2 = tp
            .forward_seq(
                1,
                &[SegmentInput {
                    tokens: vec![tok],
                    start_pos: prompt.len(),
                }],
            )
            .unwrap();
        let mut full = prompt;
        full.push(tok);
        let dense2 = model.forward_dense(&full);
        assert!(max_diff(&logits2, &dense2) < 1e-3);
    }

    #[test]
    fn llama_two_shards_match_dense() {
        check_tp_matches_dense(&ModelConfig::tiny_llama(), 2);
    }

    #[test]
    fn opt_four_shards_match_dense() {
        check_tp_matches_dense(&ModelConfig::tiny_opt(), 4);
    }

    #[test]
    fn single_shard_is_identity_partition() {
        check_tp_matches_dense(&ModelConfig::tiny_llama(), 1);
    }

    /// Each shard stores only its KV-head slice: pool usage shrinks with
    /// the shard count while results stay exact (the property that lets
    /// Pensieve shard its cache with the model, §4.4.2).
    #[test]
    fn kv_partition_splits_storage() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 56);
        let mut tp = TpModel::new(&model, 2, 4, 64);
        let prompt: Vec<u32> = (0..10).collect();
        tp.forward_seq(
            7,
            &[SegmentInput {
                tokens: prompt,
                start_pos: 0,
            }],
        )
        .unwrap();
        for shard in &tp.shards {
            // 10 tokens at block size 4 -> 3 blocks per shard, regardless
            // of shard count (each block holds kv_heads/n heads).
            assert_eq!(shard.cache.num_blocks() - shard.cache.num_free(), 3);
            assert_eq!(shard.cache.layout().num_kv_heads, 1);
        }
    }

    #[test]
    #[should_panic(expected = "kv heads must divide")]
    fn rejects_indivisible_kv_heads() {
        let cfg = ModelConfig::tiny_llama(); // 2 KV heads.
        let model = TinyModel::new_random(&cfg, 57);
        let _ = TpModel::new(&model, 4, 4, 16);
    }
}
