//! Paged (non-contiguous) KV-cache storage.
//!
//! KV-tokens live in fixed-size *blocks* drawn from a physical pool, as in
//! vLLM's PagedAttention; a sequence's logically-contiguous context is an
//! arbitrary list of physical blocks described by its [`BlockTable`]
//! (paper Figure 6). Pensieve relies on this indirection to mix
//! long-resident cached tokens with freshly swapped-in ones without any
//! memory copies.
//!
//! Block layout: each block stores `block_size` token slots; each slot is
//! `[num_kv_heads, head_dim]` contiguous floats, so both whole-token rows
//! and per-head rows are contiguous slices.

use std::fmt;

use crate::tensor::Matrix;

/// Physical block identifier within a [`PagedKvCache`] pool.
pub type BlockId = usize;

/// Geometry of KV storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    /// Number of key/value heads.
    pub num_kv_heads: usize,
    /// Dimension of each head.
    pub head_dim: usize,
    /// Token slots per block (vLLM uses 16; we default to the same).
    pub block_size: usize,
}

impl KvLayout {
    /// Floats occupied by one token's K (or V) row.
    #[must_use]
    pub fn token_floats(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// Floats occupied by one block of K (or V).
    #[must_use]
    pub fn block_floats(&self) -> usize {
        self.block_size * self.token_floats()
    }
}

/// Error returned when the physical pool has no free blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks;

impl fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "paged KV pool has no free blocks")
    }
}

impl std::error::Error for OutOfBlocks {}

/// A multi-layer pool of physical KV blocks.
///
/// A block id allocated once is valid in every layer (all layers share the
/// allocation pattern, mirroring vLLM where the block table is common to
/// all layers while each layer has its own K/V tensors).
pub struct PagedKvCache {
    layout: KvLayout,
    num_layers: usize,
    num_blocks: usize,
    /// Per layer: K then V, each `[num_blocks * block_floats]`.
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    free: Vec<BlockId>,
}

impl PagedKvCache {
    /// Creates a pool of `num_blocks` blocks for `num_layers` layers.
    #[must_use]
    pub fn new(layout: KvLayout, num_layers: usize, num_blocks: usize) -> Self {
        let per_layer = num_blocks * layout.block_floats();
        PagedKvCache {
            layout,
            num_layers,
            num_blocks,
            k: (0..num_layers).map(|_| vec![0.0; per_layer]).collect(),
            v: (0..num_layers).map(|_| vec![0.0; per_layer]).collect(),
            // Reversed so blocks are handed out in ascending order, which
            // makes tests deterministic without affecting correctness.
            free: (0..num_blocks).rev().collect(),
        }
    }

    /// The storage geometry.
    #[must_use]
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Total number of physical blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of currently free blocks.
    #[must_use]
    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Allocates one block.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if the pool is exhausted.
    pub fn allocate(&mut self) -> Result<BlockId, OutOfBlocks> {
        self.free.pop().ok_or(OutOfBlocks)
    }

    /// Returns a block to the pool.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the id is out of range or already free.
    pub fn release(&mut self, id: BlockId) {
        debug_assert!(id < self.num_blocks);
        debug_assert!(!self.free.contains(&id), "double free of block {id}");
        self.free.push(id);
    }

    /// Writes one token's K and V rows (`[num_kv_heads * head_dim]` each)
    /// into `slot` of `block` at `layer`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or row lengths mismatch.
    pub fn write_token(&mut self, layer: usize, block: BlockId, slot: usize, k: &[f32], v: &[f32]) {
        let tf = self.layout.token_floats();
        assert_eq!(k.len(), tf);
        assert_eq!(v.len(), tf);
        assert!(slot < self.layout.block_size);
        let off = block * self.layout.block_floats() + slot * tf;
        self.k[layer][off..off + tf].copy_from_slice(k);
        self.v[layer][off..off + tf].copy_from_slice(v);
    }

    /// Read-only view of one layer's storage for the attention kernels.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer(&self, layer: usize) -> KvLayerView<'_> {
        KvLayerView {
            layout: self.layout,
            k: &self.k[layer],
            v: &self.v[layer],
        }
    }
}

impl fmt::Debug for PagedKvCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedKvCache")
            .field("layout", &self.layout)
            .field("num_layers", &self.num_layers)
            .field("num_blocks", &self.num_blocks)
            .field("free", &self.free.len())
            .finish()
    }
}

/// Read-only view of one layer's paged K/V storage.
#[derive(Debug, Clone, Copy)]
pub struct KvLayerView<'a> {
    layout: KvLayout,
    k: &'a [f32],
    v: &'a [f32],
}

impl<'a> KvLayerView<'a> {
    /// The storage geometry.
    #[must_use]
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// K row of one head for the token at (`block`, `slot`).
    #[must_use]
    pub fn k_head(&self, block: BlockId, slot: usize, kv_head: usize) -> &'a [f32] {
        let d = self.layout.head_dim;
        let off =
            block * self.layout.block_floats() + slot * self.layout.token_floats() + kv_head * d;
        &self.k[off..off + d]
    }

    /// V row of one head for the token at (`block`, `slot`).
    #[must_use]
    pub fn v_head(&self, block: BlockId, slot: usize, kv_head: usize) -> &'a [f32] {
        let d = self.layout.head_dim;
        let off =
            block * self.layout.block_floats() + slot * self.layout.token_floats() + kv_head * d;
        &self.v[off..off + d]
    }

    /// One block's whole K slab (`[block_size, num_kv_heads * head_dim]`,
    /// row-major by slot).
    ///
    /// The blocked attention kernels read a block through this single
    /// contiguous slice — one bounds check per block instead of one per
    /// (token, head) — and index heads/slots arithmetically inside it.
    #[must_use]
    pub fn k_block(&self, block: BlockId) -> &'a [f32] {
        let bf = self.layout.block_floats();
        &self.k[block * bf..(block + 1) * bf]
    }

    /// One block's whole V slab (see [`Self::k_block`]).
    #[must_use]
    pub fn v_block(&self, block: BlockId) -> &'a [f32] {
        let bf = self.layout.block_floats();
        &self.v[block * bf..(block + 1) * bf]
    }

    /// Whole-token K row (`[num_kv_heads * head_dim]`).
    #[must_use]
    pub fn k_token(&self, block: BlockId, slot: usize) -> &'a [f32] {
        let tf = self.layout.token_floats();
        let off = block * self.layout.block_floats() + slot * tf;
        &self.k[off..off + tf]
    }

    /// Whole-token V row (`[num_kv_heads * head_dim]`).
    #[must_use]
    pub fn v_token(&self, block: BlockId, slot: usize) -> &'a [f32] {
        let tf = self.layout.token_floats();
        let off = block * self.layout.block_floats() + slot * tf;
        &self.v[off..off + tf]
    }
}

/// Logical-to-physical mapping for one sequence's context.
///
/// The table may contain *holes*: logical blocks whose physical backing has
/// been freed (swapped out to the CPU tier or dropped, paper Figure 5).
/// Holes must be refilled with [`BlockTable::refill`] (swap-in or
/// recomputation) before the covered positions are read by a kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockTable {
    blocks: Vec<Option<BlockId>>,
    len: usize,
    block_size: usize,
}

impl BlockTable {
    /// Creates an empty table for blocks of `block_size` tokens.
    #[must_use]
    pub fn new(block_size: usize) -> Self {
        BlockTable {
            blocks: Vec::new(),
            len: 0,
            block_size,
        }
    }

    /// Number of tokens stored (including tokens in holes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no token is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block size in tokens.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of logical blocks (present or holes).
    #[must_use]
    pub fn num_logical_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Physical block backing logical block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the block is a hole — kernels must
    /// only run once every visible block is resident.
    #[must_use]
    pub fn block_at(&self, i: usize) -> BlockId {
        // lint:allow(r1-panic): documented panic contract — kernels only
        // run after residency is established; a hole here is memory-
        // safety-adjacent corruption, not a recoverable condition.
        self.blocks[i].unwrap_or_else(|| panic!("logical block {i} is a hole"))
    }

    /// Physical block backing logical block `i`, or `None` for a hole.
    #[must_use]
    pub fn get_block(&self, i: usize) -> Option<BlockId> {
        self.blocks.get(i).copied().flatten()
    }

    /// True if every logical block covering `0..tokens` is resident.
    #[must_use]
    pub fn is_resident(&self, tokens: usize) -> bool {
        let nb = tokens.div_ceil(self.block_size);
        nb <= self.blocks.len() && self.blocks[..nb].iter().all(Option::is_some)
    }

    /// Physical `(block, slot)` of logical token `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len` or the covering block is a hole.
    #[must_use]
    pub fn position(&self, idx: usize) -> (BlockId, usize) {
        assert!(
            idx < self.len,
            "token index {idx} out of range {}",
            self.len
        );
        (self.block_at(idx / self.block_size), idx % self.block_size)
    }

    /// Appends one token, allocating a new block from `pool` when the last
    /// block is full.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] (leaving the table unchanged) if a new block
    /// was needed but the pool is exhausted.
    pub fn append_token(
        &mut self,
        pool: &mut PagedKvCache,
    ) -> Result<(BlockId, usize), OutOfBlocks> {
        debug_assert_eq!(self.block_size, pool.layout().block_size);
        if self.len == self.blocks.len() * self.block_size {
            let b = pool.allocate()?;
            self.blocks.push(Some(b));
        }
        let bi = self.len / self.block_size;
        // lint:allow(r1-panic): the branch above just ensured the tail
        // block exists; a hole at the tail is accounting corruption.
        let block = self.blocks[bi].expect("appending into a hole");
        let pos = (block, self.len % self.block_size);
        self.len += 1;
        Ok(pos)
    }

    /// Frees the physical backing of logical blocks `range`, leaving holes.
    ///
    /// Already-freed blocks in the range are skipped. Returns the freed
    /// physical block ids (e.g. so a caller can first copy them to a CPU
    /// tier).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the logical block count.
    pub fn free_blocks(
        &mut self,
        pool: &mut PagedKvCache,
        range: std::ops::Range<usize>,
    ) -> Vec<BlockId> {
        let mut freed = Vec::new();
        for i in range {
            if let Some(b) = self.blocks[i].take() {
                pool.release(b);
                freed.push(b);
            }
        }
        freed
    }

    /// Allocates fresh physical blocks for every hole in `range`, returning
    /// `(logical_index, physical_block)` pairs for the caller to fill
    /// (swap-in copy or recomputation).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if the pool runs out; blocks allocated
    /// before the failure remain installed.
    pub fn refill(
        &mut self,
        pool: &mut PagedKvCache,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<(usize, BlockId)>, OutOfBlocks> {
        let mut filled = Vec::new();
        for i in range {
            if self.blocks[i].is_none() {
                let b = pool.allocate()?;
                self.blocks[i] = Some(b);
                filled.push((i, b));
            }
        }
        Ok(filled)
    }

    /// Releases every resident block back to `pool` and clears the table.
    pub fn release_all(&mut self, pool: &mut PagedKvCache) {
        for b in self.blocks.drain(..).flatten() {
            pool.release(b);
        }
        self.len = 0;
    }
}

/// Gathers a sequence's paged K and V for one layer into contiguous
/// matrices of shape `[context_len, num_kv_heads * head_dim]`.
///
/// This is the "CopyOut" step of the Figure-12 straw-man; it is also used
/// by tests to compare paged contents against ground truth.
#[must_use]
pub fn gather_contiguous(
    layer: &KvLayerView<'_>,
    table: &BlockTable,
    context_len: usize,
) -> (Matrix, Matrix) {
    let tf = layer.layout().token_floats();
    let mut k = Matrix::zeros(context_len, tf);
    let mut v = Matrix::zeros(context_len, tf);
    for i in 0..context_len {
        let (b, s) = table.position(i);
        k.row_mut(i).copy_from_slice(layer.k_token(b, s));
        v.row_mut(i).copy_from_slice(layer.v_token(b, s));
    }
    (k, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> KvLayout {
        KvLayout {
            num_kv_heads: 2,
            head_dim: 4,
            block_size: 4,
        }
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut pool = PagedKvCache::new(layout(), 1, 3);
        assert_eq!(pool.num_free(), 3);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert!(pool.allocate().is_err());
        pool.release(b);
        assert_eq!(pool.allocate().unwrap(), 1);
    }

    #[test]
    fn write_then_read_token() {
        let mut pool = PagedKvCache::new(layout(), 2, 2);
        let k: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v: Vec<f32> = (0..8).map(|i| 10.0 + i as f32).collect();
        let b = pool.allocate().unwrap();
        pool.write_token(1, b, 3, &k, &v);
        let view = pool.layer(1);
        assert_eq!(view.k_token(b, 3), &k[..]);
        assert_eq!(view.v_token(b, 3), &v[..]);
        assert_eq!(view.k_head(b, 3, 1), &k[4..8]);
        assert_eq!(view.v_head(b, 3, 0), &v[0..4]);
        // Other layer untouched.
        assert!(pool.layer(0).k_token(b, 3).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn block_table_grows_across_blocks() {
        let mut pool = PagedKvCache::new(layout(), 1, 4);
        let mut table = BlockTable::new(4);
        for i in 0..9 {
            let (b, s) = table.append_token(&mut pool).unwrap();
            assert_eq!((b, s), (i / 4, i % 4));
        }
        assert_eq!(table.len(), 9);
        assert_eq!(table.num_logical_blocks(), 3);
        assert_eq!(pool.num_free(), 1);
        assert_eq!(table.position(6), (1, 2));
    }

    #[test]
    fn append_fails_cleanly_when_pool_exhausted() {
        let mut pool = PagedKvCache::new(layout(), 1, 1);
        let mut table = BlockTable::new(4);
        for _ in 0..4 {
            table.append_token(&mut pool).unwrap();
        }
        assert_eq!(table.append_token(&mut pool), Err(OutOfBlocks));
        assert_eq!(table.len(), 4, "failed append must not change length");
    }

    #[test]
    fn release_all_returns_blocks() {
        let mut pool = PagedKvCache::new(layout(), 1, 4);
        let mut table = BlockTable::new(4);
        for _ in 0..10 {
            table.append_token(&mut pool).unwrap();
        }
        assert_eq!(pool.num_free(), 1);
        table.release_all(&mut pool);
        assert_eq!(pool.num_free(), 4);
        assert!(table.is_empty());
    }

    #[test]
    fn gather_reconstructs_logical_order() {
        let mut pool = PagedKvCache::new(layout(), 1, 4);
        let mut table = BlockTable::new(4);
        // Scramble physical order: pre-allocate and release to interleave.
        let x = pool.allocate().unwrap();
        for i in 0..6u32 {
            let (b, s) = table.append_token(&mut pool).unwrap();
            let k = vec![i as f32; 8];
            let v = vec![100.0 + i as f32; 8];
            pool.write_token(0, b, s, &k, &v);
        }
        pool.release(x);
        let (k, v) = gather_contiguous(&pool.layer(0), &table, 6);
        for i in 0..6 {
            assert_eq!(k.row(i)[0], i as f32);
            assert_eq!(v.row(i)[0], 100.0 + i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_checks_bounds() {
        let table = BlockTable::new(4);
        let _ = table.position(0);
    }

    #[test]
    fn free_and_refill_leading_blocks() {
        let mut pool = PagedKvCache::new(layout(), 1, 8);
        let mut table = BlockTable::new(4);
        for _ in 0..12 {
            table.append_token(&mut pool).unwrap();
        }
        assert!(table.is_resident(12));
        // Evict the two leading blocks (tokens 0..8).
        let freed = table.free_blocks(&mut pool, 0..2);
        assert_eq!(freed.len(), 2);
        assert!(!table.is_resident(12));
        assert!(!table.is_resident(1));
        // Trailing tokens are still resident and addressable.
        let (b, s) = table.position(10);
        assert_eq!(s, 2);
        let _ = b;
        // Refill restores residency with fresh blocks.
        let filled = table.refill(&mut pool, 0..3).unwrap();
        assert_eq!(filled.len(), 2, "only holes are refilled");
        assert!(table.is_resident(12));
        assert_eq!(table.len(), 12, "length never changed");
    }

    #[test]
    #[should_panic(expected = "is a hole")]
    fn reading_a_hole_panics() {
        let mut pool = PagedKvCache::new(layout(), 1, 4);
        let mut table = BlockTable::new(4);
        for _ in 0..4 {
            table.append_token(&mut pool).unwrap();
        }
        table.free_blocks(&mut pool, 0..1);
        let _ = table.position(0);
    }

    #[test]
    fn refill_propagates_pool_exhaustion() {
        let mut pool = PagedKvCache::new(layout(), 1, 2);
        let mut table = BlockTable::new(4);
        for _ in 0..8 {
            table.append_token(&mut pool).unwrap();
        }
        table.free_blocks(&mut pool, 0..2);
        // Drain the pool so refill cannot succeed fully.
        let hog = pool.allocate().unwrap();
        assert!(table.refill(&mut pool, 0..2).is_err());
        pool.release(hog);
        assert!(table.refill(&mut pool, 0..2).is_ok());
    }

    #[test]
    fn get_block_reports_holes_and_bounds() {
        let mut pool = PagedKvCache::new(layout(), 1, 2);
        let mut table = BlockTable::new(4);
        for _ in 0..5 {
            table.append_token(&mut pool).unwrap();
        }
        assert_eq!(table.get_block(0), Some(0));
        table.free_blocks(&mut pool, 0..1);
        assert_eq!(table.get_block(0), None);
        assert_eq!(table.get_block(9), None);
    }
}
