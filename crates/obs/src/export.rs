//! Trace exporters: JSONL event log and Chrome `trace_event` JSON.
//!
//! The JSONL format is one JSON object per line (the [`crate::event`]
//! wire format); [`parse_jsonl`] is the schema validator — it rejects
//! unknown variants, missing fields and mistyped values with the
//! offending line number.
//!
//! The Chrome trace output loads in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`. Scheduler iterations, swap-in DMAs and swap-out
//! DMAs are rendered as *separate tracks* so the §4.2/§4.3.3 pipelining
//! — compute slices overlapping host-to-device transfer slices — is
//! visible directly on the timeline.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Map, Serialize, Value};

use crate::event::{SwapDir, TraceEvent};

/// Chrome trace track (tid) for scheduler iterations / GPU compute.
pub const TRACK_COMPUTE: u64 = 1;
/// Chrome trace track (tid) for host-to-device transfers (swap-in).
pub const TRACK_SWAP_IN: u64 = 2;
/// Chrome trace track (tid) for device-to-host transfers (swap-out).
pub const TRACK_SWAP_OUT: u64 = 3;

/// A JSONL parse/validation failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

/// Serializes events as JSONL, one event object per line, in order.
#[must_use]
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        match serde_json::to_string(&ev.to_value()) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => {
                // A Value always serializes; this arm is unreachable but
                // kept total so the exporter can never panic.
            }
        }
    }
    out
}

/// Parses and validates a JSONL event log. Blank lines are ignored.
///
/// # Errors
///
/// Returns the first offending line: invalid JSON, an unknown `"ev"`
/// variant, or a missing/mistyped field.
pub fn parse_jsonl(s: &str) -> Result<Vec<TraceEvent>, JsonlError> {
    let mut events = Vec::new();
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line).map_err(|e| JsonlError {
            line: i + 1,
            message: format!("invalid JSON: {e}"),
        })?;
        let ev = TraceEvent::from_value(&value).map_err(|e| JsonlError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(ev);
    }
    Ok(events)
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert((*k).to_owned(), v.clone());
    }
    Value::Object(m)
}

fn num(x: f64) -> Value {
    Value::Number(x)
}

fn s(x: &str) -> Value {
    Value::String(x.to_owned())
}

/// A complete ("X") slice.
fn slice(name: &str, tid: u64, ts_us: f64, dur_us: f64, args: Value) -> Value {
    obj(&[
        ("name", s(name)),
        ("ph", s("X")),
        ("pid", num(1.0)),
        ("tid", num(tid as f64)),
        ("ts", num(ts_us)),
        ("dur", num(dur_us)),
        ("args", args),
    ])
}

/// A thread-scoped instant ("i") marker.
fn instant(name: &str, tid: u64, ts_us: f64, args: Value) -> Value {
    obj(&[
        ("name", s(name)),
        ("ph", s("i")),
        ("s", s("t")),
        ("pid", num(1.0)),
        ("tid", num(tid as f64)),
        ("ts", num(ts_us)),
        ("args", args),
    ])
}

/// A counter ("C") sample.
fn counter(name: &str, ts_us: f64, args: Value) -> Value {
    obj(&[
        ("name", s(name)),
        ("ph", s("C")),
        ("pid", num(1.0)),
        ("ts", num(ts_us)),
        ("args", args),
    ])
}

fn metadata(name: &str, tid: Option<u64>, args: Value) -> Value {
    let mut pairs = vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", num(1.0)),
        ("ts", num(0.0)),
        ("args", args),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", num(tid as f64)));
    }
    obj(&pairs)
}

/// Simulated time as Chrome-trace microseconds.
fn us(at: pensieve_model::SimTime) -> f64 {
    at.as_secs() * 1e6
}

fn ts_of(v: &Value) -> f64 {
    v.get("ts").and_then(Value::as_f64).unwrap_or(0.0)
}

/// Converts an event log into a Chrome `trace_event` JSON document.
///
/// Tracks: [`TRACK_COMPUTE`] carries iteration slices plus admission,
/// suspension, completion and fault-recovery instants; [`TRACK_SWAP_IN`]
/// and [`TRACK_SWAP_OUT`] carry one slice per swap DMA (paired
/// `SwapStart`/`SwapEnd` FIFO per direction) plus eviction/drop instants.
/// A `requests` counter series tracks running/waiting batch occupancy.
/// Output ordering is deterministic: metadata first, then slices stably
/// sorted by timestamp (insertion order breaks ties).
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut out = vec![
        metadata(
            "process_name",
            None,
            obj(&[("name", s("pensieve serve_sim"))]),
        ),
        metadata(
            "thread_name",
            Some(TRACK_COMPUTE),
            obj(&[("name", s("scheduler / GPU compute"))]),
        ),
        metadata(
            "thread_name",
            Some(TRACK_SWAP_IN),
            obj(&[("name", s("PCIe H2D (swap-in)"))]),
        ),
        metadata(
            "thread_name",
            Some(TRACK_SWAP_OUT),
            obj(&[("name", s("PCIe D2H (swap-out)"))]),
        ),
    ];
    let mut body = Vec::new();
    // FIFO start queues per direction: every SwapStart/SwapEnd pair is
    // recorded atomically at schedule time, so ends match starts in order.
    let mut in_starts: VecDeque<(f64, u64)> = VecDeque::new();
    let mut out_starts: VecDeque<(f64, u64)> = VecDeque::new();
    for ev in events {
        match ev {
            TraceEvent::IterationStart {
                at,
                running,
                waiting,
                ..
            } => body.push(counter(
                "requests",
                us(*at),
                obj(&[
                    ("running", num(*running as f64)),
                    ("waiting", num(*waiting as f64)),
                ]),
            )),
            TraceEvent::IterationEnd {
                at,
                iteration,
                queue_delay,
                compute,
                stall,
            } => {
                let dur = *queue_delay + *compute + *stall;
                body.push(slice(
                    "iteration",
                    TRACK_COMPUTE,
                    us(*at) - dur.as_micros(),
                    dur.as_micros(),
                    obj(&[
                        ("iteration", num(*iteration as f64)),
                        ("queue_delay_us", num(queue_delay.as_micros())),
                        ("compute_us", num(compute.as_micros())),
                        ("stall_us", num(stall.as_micros())),
                    ]),
                ));
            }
            TraceEvent::SwapStart { at, dir, bytes } => match dir {
                SwapDir::In => in_starts.push_back((us(*at), *bytes)),
                SwapDir::Out => out_starts.push_back((us(*at), *bytes)),
            },
            TraceEvent::SwapEnd { at, dir, .. } => {
                let (queue, name, track) = match dir {
                    SwapDir::In => (&mut in_starts, "swap-in", TRACK_SWAP_IN),
                    SwapDir::Out => (&mut out_starts, "swap-out", TRACK_SWAP_OUT),
                };
                if let Some((start_us, bytes)) = queue.pop_front() {
                    body.push(slice(
                        name,
                        track,
                        start_us,
                        us(*at) - start_us,
                        obj(&[("bytes", num(bytes as f64))]),
                    ));
                }
            }
            TraceEvent::Admitted {
                at,
                conv,
                gpu_hit_tokens,
                revalidate_tokens,
                swap_in_tokens,
                recompute_tokens,
                ..
            } => body.push(instant(
                &format!("admit conv {conv}"),
                TRACK_COMPUTE,
                us(*at),
                obj(&[
                    ("gpu_hit_tokens", num(*gpu_hit_tokens as f64)),
                    ("revalidate_tokens", num(*revalidate_tokens as f64)),
                    ("swap_in_tokens", num(*swap_in_tokens as f64)),
                    ("recompute_tokens", num(*recompute_tokens as f64)),
                ]),
            )),
            TraceEvent::ChunkEvicted {
                at,
                conv,
                tokens,
                dropped,
                ..
            } => body.push(instant(
                if *dropped {
                    "evict (drop)"
                } else {
                    "evict (copy)"
                },
                TRACK_SWAP_OUT,
                us(*at),
                obj(&[("conv", num(*conv as f64)), ("tokens", num(*tokens as f64))]),
            )),
            TraceEvent::ChunkDropped {
                at,
                conv,
                tokens,
                reason,
                ..
            } => body.push(instant(
                &format!("drop ({})", reason.as_str()),
                TRACK_SWAP_OUT,
                us(*at),
                obj(&[("conv", num(*conv as f64)), ("tokens", num(*tokens as f64))]),
            )),
            TraceEvent::Suspended { at, conv, tokens } => body.push(instant(
                &format!("suspend conv {conv}"),
                TRACK_COMPUTE,
                us(*at),
                obj(&[("tokens", num(*tokens as f64))]),
            )),
            TraceEvent::FaultRecovery {
                at, kind, tokens, ..
            } => body.push(instant(
                &format!("fault: {}", kind.as_str()),
                TRACK_COMPUTE,
                us(*at),
                obj(&[("tokens", num(*tokens as f64))]),
            )),
            TraceEvent::RequestCompleted {
                at,
                request,
                conv,
                output_tokens,
                ..
            } => body.push(instant(
                &format!("complete req {request}"),
                TRACK_COMPUTE,
                us(*at),
                obj(&[
                    ("conv", num(*conv as f64)),
                    ("output_tokens", num(*output_tokens as f64)),
                ]),
            )),
            TraceEvent::BatchComposed { .. }
            | TraceEvent::Revalidated { .. }
            | TraceEvent::SwapInCommitted { .. }
            | TraceEvent::RecomputeCommitted { .. }
            | TraceEvent::TierReadCommitted { .. }
            | TraceEvent::ChunkDemoted { .. }
            | TraceEvent::PipelinedSwapIn { .. }
            | TraceEvent::TpPass { .. }
            | TraceEvent::Routed { .. }
            | TraceEvent::MigrationStart { .. }
            | TraceEvent::MigrationEnd { .. }
            | TraceEvent::ReplicaFailed { .. }
            | TraceEvent::ReplicationFlush { .. }
            | TraceEvent::StandbyPromoted { .. }
            | TraceEvent::LinkPartitioned { .. }
            | TraceEvent::ManifestPersisted { .. }
            | TraceEvent::SessionRehydrated { .. }
            | TraceEvent::SharedAttached { .. }
            | TraceEvent::SharedChunkEvicted { .. } => {}
        }
    }
    // Stable sort: equal timestamps keep recording order.
    body.sort_by(|a, b| ts_of(a).total_cmp(&ts_of(b)));
    out.extend(body);
    obj(&[
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", s("ms")),
    ])
}

/// [`chrome_trace`] rendered as pretty JSON (deterministic: the vendored
/// `serde_json` emits objects with sorted keys).
#[must_use]
pub fn chrome_trace_string(events: &[TraceEvent]) -> String {
    serde_json::to_string_pretty(&chrome_trace(events)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_model::{SimDuration, SimTime};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn jsonl_round_trips_in_order() {
        let events = vec![
            TraceEvent::IterationStart {
                at: t(0.0),
                iteration: 0,
                running: 0,
                waiting: 1,
            },
            TraceEvent::Suspended {
                at: t(0.5),
                conv: 3,
                tokens: 64,
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("valid JSONL");
        assert_eq!(back, events);
    }

    #[test]
    fn parse_rejects_bad_lines_with_line_numbers() {
        let err = parse_jsonl("{\"ev\":\"Nope\"}\n").expect_err("unknown variant");
        assert_eq!(err.line, 1);
        let err = parse_jsonl("{\"ev\":\"Suspended\",\"at\":0}\n").expect_err("missing fields");
        assert_eq!(err.line, 1);
        let err = parse_jsonl("not json\n").expect_err("invalid JSON");
        assert!(err.message.contains("invalid JSON"));
    }

    #[test]
    fn chrome_trace_pairs_swaps_and_slices_iterations() {
        let events = vec![
            TraceEvent::SwapStart {
                at: t(0.1),
                dir: SwapDir::In,
                bytes: 1000,
            },
            TraceEvent::SwapEnd {
                at: t(0.3),
                dir: SwapDir::In,
                bytes: 1000,
            },
            TraceEvent::IterationEnd {
                at: t(0.4),
                iteration: 0,
                queue_delay: SimDuration::ZERO,
                compute: SimDuration::from_secs(0.2),
                stall: SimDuration::ZERO,
            },
        ];
        let doc = chrome_trace(&events);
        let list = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 4 metadata + 1 swap slice + 1 iteration slice.
        assert_eq!(list.len(), 6);
        let swap = list
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("swap-in"))
            .expect("swap slice");
        assert_eq!(swap.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(swap.get("tid").and_then(Value::as_u64), Some(TRACK_SWAP_IN));
        let dur = swap.get("dur").and_then(Value::as_f64).expect("dur");
        assert!((dur - 200_000.0).abs() < 1.0, "dur {dur}");
        let it = list
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("iteration"))
            .expect("iteration slice");
        let ts = it.get("ts").and_then(Value::as_f64).expect("ts");
        assert!((ts - 200_000.0).abs() < 1.0, "iteration starts at end-dur");
    }

    #[test]
    fn chrome_trace_string_is_deterministic() {
        let events = vec![TraceEvent::IterationStart {
            at: t(0.0),
            iteration: 0,
            running: 1,
            waiting: 0,
        }];
        assert_eq!(chrome_trace_string(&events), chrome_trace_string(&events));
    }
}
