//! Deterministic metrics registry: counters, gauges, fixed-bucket
//! histograms, per-iteration time series, Prometheus-style text dump.
//!
//! Nothing here reads a wall clock or iterates hash-ordered containers —
//! every map is a `BTreeMap`, so registration order never changes the
//! exported text and traced runs stay bit-reproducible.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pensieve_model::SimTime;

/// Canonical metric names recorded by the serving stack. The
/// docs-coverage test asserts each appears in `docs/OBSERVABILITY.md`.
pub mod names {
    /// Counter: scheduler iterations executed.
    pub const ITERATIONS_TOTAL: &str = "pensieve_iterations_total";
    /// Counter: query tokens processed in prefill.
    pub const PREFILL_TOKENS_TOTAL: &str = "pensieve_prefill_tokens_total";
    /// Counter: decode steps executed.
    pub const DECODE_TOKENS_TOTAL: &str = "pensieve_decode_tokens_total";
    /// Counter: requests suspended mid-generation (§4.3.5).
    pub const SUSPENSIONS_TOTAL: &str = "pensieve_suspensions_total";
    /// Counter: swap-in DMA attempts retried after injected faults.
    pub const SWAP_IN_RETRIES_TOTAL: &str = "pensieve_swap_in_retries_total";
    /// Counter: restores that fell back to dropped-token recomputation.
    pub const RECOMPUTE_FALLBACKS_TOTAL: &str = "pensieve_recompute_fallbacks_total";
    /// Counter: transient GPU allocation faults absorbed by backpressure.
    pub const GPU_ALLOC_FAULTS_TOTAL: &str = "pensieve_gpu_alloc_faults_total";
    /// Counter: injected worker stalls absorbed as longer iterations.
    pub const WORKER_STALLS_TOTAL: &str = "pensieve_worker_stalls_total";
    /// Counter: CPU-tier chunks lost or corrupted by injected faults.
    pub const CHUNK_FAULTS_TOTAL: &str = "pensieve_chunk_faults_total";
    /// Counter: completed requests.
    pub const REQUESTS_COMPLETED_TOTAL: &str = "pensieve_requests_completed_total";
    /// Counter: history tokens served by the shared system prompt.
    pub const SHARED_PREFIX_HIT_TOKENS_TOTAL: &str = "pensieve_shared_prefix_hit_tokens_total";
    /// Gauge: requests in the running batch.
    pub const RUNNING_REQUESTS: &str = "pensieve_running_requests";
    /// Gauge: requests waiting for admission.
    pub const WAITING_REQUESTS: &str = "pensieve_waiting_requests";
    /// Gauge: GPU KV slots in use (resident + lazily-copied tokens).
    pub const GPU_SLOTS_USED: &str = "pensieve_gpu_slots_used";
    /// Gauge: CPU cache tokens in use.
    pub const CPU_TOKENS_USED: &str = "pensieve_cpu_tokens_used";
    /// Histogram: end-to-end iteration time (queue delay + compute +
    /// stall), seconds.
    pub const ITERATION_SECONDS: &str = "pensieve_iteration_seconds";
    /// Histogram: query tokens per batched invocation.
    pub const BATCH_QUERY_TOKENS: &str = "pensieve_batch_query_tokens";
    /// Histogram: time to first token, seconds.
    pub const TTFT_SECONDS: &str = "pensieve_ttft_seconds";
    /// Counter: requests placed on a replica by the cluster router.
    pub const ROUTED_REQUESTS_TOTAL: &str = "pensieve_routed_requests_total";
    /// Counter: conversation migrations between replicas.
    pub const MIGRATIONS_TOTAL: &str = "pensieve_migrations_total";
    /// Counter: KV-tokens streamed to a migration target's CPU tier.
    pub const MIGRATED_TOKENS_TOTAL: &str = "pensieve_migrated_tokens_total";
    /// Counter: KV-tokens lost by the inter-node link during migration
    /// (recomputed at the target).
    pub const MIGRATION_LOST_TOKENS_TOTAL: &str = "pensieve_migration_lost_tokens_total";
    /// Counter: fault-injected replica deaths handled by the router.
    pub const REPLICA_FAILURES_TOTAL: &str = "pensieve_replica_failures_total";
    /// Counter: KV-tokens replicated to a standby's CPU tier.
    pub const REPLICATED_TOKENS_TOTAL: &str = "pensieve_replicated_tokens_total";
    /// Counter: KV bytes put on the wire by replication flushes.
    pub const STANDBY_BYTES_TOTAL: &str = "pensieve_standby_bytes_total";
    /// Counter: standby promotions after a primary fail-stop.
    pub const STANDBY_PROMOTIONS_TOTAL: &str = "pensieve_standby_promotions_total";
    /// Counter: unreplicated-suffix tokens recomputed after promotion.
    pub const RECOMPUTED_SUFFIX_TOKENS_TOTAL: &str = "pensieve_recomputed_suffix_tokens_total";
    /// Gauge: largest per-session replication lag (tokens committed at
    /// the primary but not yet replicated to its standby).
    pub const REPLICATION_LAG_TOKENS: &str = "pensieve_replication_lag_tokens";
    /// Histogram: crash-to-promotion latency, seconds.
    pub const PROMOTION_LATENCY_SECONDS: &str = "pensieve_promotion_latency_seconds";
    /// Counter: chunks lost in transit on the inter-node links
    /// (migration and replication combined).
    pub const LINK_LOST_CHUNKS_TOTAL: &str = "pensieve_link_lost_chunks_total";
    /// Counter: bytes put on the wire by the inter-node links
    /// (migration and replication combined, including lost chunks).
    pub const LINK_STREAMED_BYTES_TOTAL: &str = "pensieve_link_streamed_bytes_total";
    /// Counter: partition tasks executed by the engine's worker pool.
    pub const POOL_TASKS_TOTAL: &str = "pensieve_pool_tasks_total";
    /// Gauge: jobs queued in the worker pool and not yet picked up.
    pub const POOL_QUEUE_DEPTH: &str = "pensieve_pool_queue_depth";
    /// Gauge: fraction of the pool's parked workers kept busy since the
    /// previous sample (0.0 for a serial pool).
    pub const POOL_WORKER_UTILIZATION: &str = "pensieve_pool_worker_utilization";
    /// Counter: history tokens served by reading back from the SSD tier.
    pub const SSD_HIT_TOKENS_TOTAL: &str = "pensieve_ssd_hit_tokens_total";
    /// Counter: history tokens served by reading back from the cold tier.
    pub const COLD_HIT_TOKENS_TOTAL: &str = "pensieve_cold_hit_tokens_total";
    /// Counter: tokens demoted one storage tier down instead of dropped.
    pub const DEMOTED_TOKENS_TOTAL: &str = "pensieve_demoted_tokens_total";
    /// Counter: tokens rehydrated from cold-store session manifests.
    pub const REHYDRATED_TOKENS_TOTAL: &str = "pensieve_rehydrated_tokens_total";
    /// Counter: deep-tier reads that failed and fell back to recompute.
    pub const COLD_READ_FAULTS_TOTAL: &str = "pensieve_cold_read_faults_total";
    /// Counter: session manifests serialized to the cold store.
    pub const MANIFESTS_PERSISTED_TOTAL: &str = "pensieve_manifests_persisted_total";
    /// Counter: sessions rebuilt from cold-store manifests after a
    /// restart or failover.
    pub const SESSION_REHYDRATIONS_TOTAL: &str = "pensieve_session_rehydrations_total";
    /// Gauge: SSD (tier-2) cache tokens in use.
    pub const SSD_TOKENS_USED: &str = "pensieve_ssd_tokens_used";
    /// Gauge: cold-store (tier-3) cache tokens in use.
    pub const COLD_TOKENS_USED: &str = "pensieve_cold_tokens_used";
    /// Counter: restore-plan tokens served from content-addressed shared
    /// chunks (any tier) instead of a conversation's private chunks.
    pub const SHARED_HIT_TOKENS_TOTAL: &str = "pensieve_shared_hit_tokens_total";
    /// Gauge: resident KV tokens counted once per *sharer* — what the
    /// cache would hold without cross-conversation deduplication.
    pub const LOGICAL_RESIDENT_TOKENS: &str = "pensieve_logical_resident_kv_tokens";
    /// Gauge: resident KV tokens counted once per *physical copy*; the
    /// logical/physical ratio is the dedup factor.
    pub const PHYSICAL_RESIDENT_TOKENS: &str = "pensieve_physical_resident_kv_tokens";

    /// Every canonical metric name.
    pub const ALL: &[&str] = &[
        ITERATIONS_TOTAL,
        PREFILL_TOKENS_TOTAL,
        DECODE_TOKENS_TOTAL,
        SUSPENSIONS_TOTAL,
        SWAP_IN_RETRIES_TOTAL,
        RECOMPUTE_FALLBACKS_TOTAL,
        GPU_ALLOC_FAULTS_TOTAL,
        WORKER_STALLS_TOTAL,
        CHUNK_FAULTS_TOTAL,
        REQUESTS_COMPLETED_TOTAL,
        SHARED_PREFIX_HIT_TOKENS_TOTAL,
        RUNNING_REQUESTS,
        WAITING_REQUESTS,
        GPU_SLOTS_USED,
        CPU_TOKENS_USED,
        ITERATION_SECONDS,
        BATCH_QUERY_TOKENS,
        TTFT_SECONDS,
        ROUTED_REQUESTS_TOTAL,
        MIGRATIONS_TOTAL,
        MIGRATED_TOKENS_TOTAL,
        MIGRATION_LOST_TOKENS_TOTAL,
        REPLICA_FAILURES_TOTAL,
        REPLICATED_TOKENS_TOTAL,
        STANDBY_BYTES_TOTAL,
        STANDBY_PROMOTIONS_TOTAL,
        RECOMPUTED_SUFFIX_TOKENS_TOTAL,
        REPLICATION_LAG_TOKENS,
        PROMOTION_LATENCY_SECONDS,
        LINK_LOST_CHUNKS_TOTAL,
        LINK_STREAMED_BYTES_TOTAL,
        POOL_TASKS_TOTAL,
        POOL_QUEUE_DEPTH,
        POOL_WORKER_UTILIZATION,
        SSD_HIT_TOKENS_TOTAL,
        COLD_HIT_TOKENS_TOTAL,
        DEMOTED_TOKENS_TOTAL,
        REHYDRATED_TOKENS_TOTAL,
        COLD_READ_FAULTS_TOTAL,
        MANIFESTS_PERSISTED_TOTAL,
        SESSION_REHYDRATIONS_TOTAL,
        SSD_TOKENS_USED,
        COLD_TOKENS_USED,
        SHARED_HIT_TOKENS_TOTAL,
        LOGICAL_RESIDENT_TOKENS,
        PHYSICAL_RESIDENT_TOKENS,
    ];
}

/// Default bucket upper bounds for [`names::ITERATION_SECONDS`].
pub const ITERATION_SECONDS_BUCKETS: &[f64] =
    &[0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0];

/// Default bucket upper bounds for [`names::BATCH_QUERY_TOKENS`].
pub const BATCH_QUERY_TOKENS_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// Default bucket upper bounds for [`names::TTFT_SECONDS`].
pub const TTFT_SECONDS_BUCKETS: &[f64] = &[0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0];

/// Default bucket upper bounds for [`names::PROMOTION_LATENCY_SECONDS`].
pub const PROMOTION_LATENCY_SECONDS_BUCKETS: &[f64] =
    &[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5];

/// A fixed-bucket histogram (cumulative at export time, per-bucket in
/// memory).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing. An implicit `+Inf`
    /// bucket always follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts[bounds.len()]` is `+Inf`.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.sum += v;
        self.total += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative count of observations `<= bounds()[i]`; the last entry
    /// (index `bounds().len()`) is the `+Inf` bucket and equals
    /// [`Histogram::count`].
    #[must_use]
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// The metrics registry: monotonic counters, gauges, histograms, and a
/// per-iteration time series of every counter/gauge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Sample timestamps, one per [`MetricsRegistry::sample`] call.
    sample_times: Vec<f64>,
    /// Column-oriented series: metric name → one value per sample. A
    /// metric first seen after sampling began is backfilled with zeros.
    series: BTreeMap<String, Vec<f64>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a monotonic counter to `v`. Values below the current one are
    /// ignored (counters never regress), which lets callers mirror an
    /// externally-maintained total without delta bookkeeping.
    pub fn counter_set(&mut self, name: &str, v: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = (*c).max(v);
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Current value of a gauge (`None` if never written).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records an observation into the named histogram, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// The named histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Appends one time-series sample: the current value of every counter
    /// and gauge, stamped `at`. Metrics that appear later are backfilled
    /// with zeros so all columns stay aligned with
    /// [`MetricsRegistry::sample_times`].
    pub fn sample(&mut self, at: SimTime) {
        let n = self.sample_times.len();
        self.sample_times.push(at.as_secs());
        for (name, v) in &self.counters {
            let col = self
                .series
                .entry(name.clone())
                .or_insert_with(|| vec![0.0; n]);
            col.resize(n, 0.0);
            col.push(*v as f64);
        }
        for (name, v) in &self.gauges {
            let col = self
                .series
                .entry(name.clone())
                .or_insert_with(|| vec![0.0; n]);
            col.resize(n, 0.0);
            col.push(*v);
        }
    }

    /// Timestamps (seconds) of the recorded samples.
    #[must_use]
    pub fn sample_times(&self) -> &[f64] {
        &self.sample_times
    }

    /// The sampled column for one metric, aligned with
    /// [`MetricsRegistry::sample_times`] (shorter if the metric appeared
    /// after the final sample).
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Deterministic: metrics are emitted in lexicographic name order.
    #[must_use]
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let cumulative = h.cumulative();
            for (i, bound) in h.bounds().iter().enumerate() {
                let c = cumulative.get(i).copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {c}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let mut r = MetricsRegistry::new();
        r.counter_set("c", 5);
        r.counter_set("c", 3);
        assert_eq!(r.counter("c"), 5);
        r.counter_add("c", 2);
        assert_eq!(r.counter("c"), 7);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 11.0).abs() < 1e-12);
        assert_eq!(h.cumulative(), vec![1, 2, 3]);
    }

    #[test]
    fn sampling_backfills_late_metrics() {
        let mut r = MetricsRegistry::new();
        r.counter_set("a", 1);
        r.sample(SimTime::from_secs(0.0));
        r.gauge_set("g", 2.5);
        r.sample(SimTime::from_secs(1.0));
        assert_eq!(r.sample_times(), &[0.0, 1.0]);
        assert_eq!(r.series("a"), Some([1.0, 1.0].as_slice()));
        assert_eq!(r.series("g"), Some([0.0, 2.5].as_slice()));
    }

    #[test]
    fn prometheus_dump_is_deterministic_and_complete() {
        let mut r = MetricsRegistry::new();
        r.counter_set(names::ITERATIONS_TOTAL, 4);
        r.gauge_set(names::RUNNING_REQUESTS, 2.0);
        r.observe(names::ITERATION_SECONDS, ITERATION_SECONDS_BUCKETS, 0.03);
        let a = r.prometheus();
        let b = r.clone().prometheus();
        assert_eq!(a, b);
        assert!(a.contains("# TYPE pensieve_iterations_total counter"));
        assert!(a.contains("pensieve_iterations_total 4"));
        assert!(a.contains("# TYPE pensieve_running_requests gauge"));
        assert!(a.contains("pensieve_iteration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(a.contains("pensieve_iteration_seconds_count 1"));
    }
}
