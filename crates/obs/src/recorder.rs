//! The [`Recorder`] trait and its implementations.
//!
//! Instrumented components (`core::engine`, `kvcache::tiered`,
//! `sim::pcie`, `sim::gpu`, `core::workers`) hold an
//! `Option<SharedRecorder>`: `None` is the compiled-away no-op path — a
//! `None` check and nothing else on the hot path, no event construction,
//! no allocation — and `Some` appends to a buffer shared with the driver.
//! Recording is strictly passive: it never feeds back into scheduling or
//! timing decisions, so enabling a trace cannot perturb simulated
//! results.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::TraceEvent;
use crate::metrics::MetricsRegistry;

/// Sink for trace events.
pub trait Recorder {
    /// True when events will actually be kept. Callers may use this to
    /// skip building expensive event payloads.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn record(&self, ev: TraceEvent);
}

/// The no-op recorder: drops everything, reports disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: TraceEvent) {}
}

/// Everything one recording session accumulates.
#[derive(Debug, Default)]
struct Observations {
    events: Vec<TraceEvent>,
    metrics: MetricsRegistry,
}

/// A cloneable recorder sharing one event buffer and metrics registry.
///
/// The shared state is an `Arc<Mutex<..>>` so a recorder can cross into
/// pool workers (parallel replica stepping hands each replica its own
/// recorder, and the engines those replicas wrap must be `Send`).
/// Recording calls never nest, so the lock is uncontended and held only
/// for a push; a poisoned lock (a panicking instrumented component) is
/// recovered rather than propagated — observability must not turn a
/// contained fault into a second panic.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    inner: Arc<Mutex<Observations>>,
}

impl SharedRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Observations> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.lock().events.len()
    }

    /// A copy of the recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.clone()
    }

    /// Drains the recorded events, leaving the buffer empty.
    #[must_use]
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.lock().events)
    }

    /// Runs `f` with mutable access to the metrics registry. Kept as an
    /// `Option` for call-site compatibility; it is always `Some` now that
    /// the shared state is lock- rather than borrow-guarded.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        Some(f(&mut self.lock().metrics))
    }

    /// A snapshot of the metrics registry.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().metrics.clone()
    }
}

impl Recorder for SharedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, ev: TraceEvent) {
        self.lock().events.push(ev);
    }
}

/// The form instrumented components hold: `None` is the no-op path.
impl Recorder for Option<SharedRecorder> {
    fn enabled(&self) -> bool {
        self.is_some()
    }

    fn record(&self, ev: TraceEvent) {
        if let Some(r) = self {
            r.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_model::SimTime;

    fn ev(at: f64) -> TraceEvent {
        TraceEvent::Suspended {
            at: SimTime::from_secs(at),
            conv: 1,
            tokens: 32,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record(ev(0.0));
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = SharedRecorder::new();
        let b = a.clone();
        a.record(ev(0.0));
        b.record(ev(1.0));
        assert_eq!(a.event_count(), 2);
        let events = a.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(b.event_count(), 0);
    }

    #[test]
    fn optional_recorder_none_is_noop() {
        let none: Option<SharedRecorder> = None;
        assert!(!none.enabled());
        none.record(ev(0.0));
        let some = Some(SharedRecorder::new());
        assert!(some.enabled());
        some.record(ev(0.0));
        assert_eq!(some.as_ref().map(SharedRecorder::event_count), Some(1));
    }

    #[test]
    fn metrics_are_shared_too() {
        let a = SharedRecorder::new();
        let b = a.clone();
        a.with_metrics(|m| m.counter_add("c", 3));
        assert_eq!(b.metrics().counter("c"), 3);
    }
}
