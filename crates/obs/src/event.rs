//! The typed structured-event stream recorded by the serving stack.
//!
//! Every event carries a [`SimTime`] timestamp (`at`) and, where
//! meaningful, raw `u64` request/conversation ids. Ids are raw integers
//! rather than the `core`/`kvcache` newtypes so that this crate sits
//! *below* the runtime crates in the dependency graph: the hot path
//! depends on `obs`, never the other way around.
//!
//! Serialization is hand-written (the vendored `serde_derive` shim only
//! supports named-field structs and unit enums): each event becomes a
//! JSON object whose `"ev"` field is the variant name and whose remaining
//! fields are the variant's payload. [`TraceEvent::from_value`] is strict
//! — an unknown `"ev"` or a missing/mistyped field is an error — which is
//! what `trace_report` uses to validate a JSONL log against the schema.

use pensieve_model::{SimDuration, SimTime};
use serde::{DeError, Deserialize, Map, Serialize, Value};

/// Transfer direction of a swap DMA over the PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDir {
    /// CPU → GPU (swap-in / retrieval).
    In,
    /// GPU → CPU (swap-out / eviction or suspension).
    Out,
}

impl SwapDir {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SwapDir::In => "in",
            SwapDir::Out => "out",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "in" => Ok(SwapDir::In),
            "out" => Ok(SwapDir::Out),
            other => Err(DeError::custom(format!("unknown swap dir {other:?}"))),
        }
    }
}

/// Why a chunk's CPU-tier copy (or the chunk itself) was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The CPU tier was full and the policy chose this chunk.
    CpuPressure,
    /// An injected host-memory fault lost the copy.
    HostLoss,
    /// A checksum mismatch invalidated the copy.
    HostCorruption,
    /// Persistent swap-in DMA failures forced a recompute fallback.
    SwapInFault,
    /// The whole storage hierarchy below the CPU was full: the chunk fell
    /// off the bottom (cold) tier.
    ColdPressure,
    /// A deep-tier read failed and the chunk's storage copy was discarded
    /// in favour of recomputation.
    ColdReadFault,
}

impl DropReason {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::CpuPressure => "cpu-pressure",
            DropReason::HostLoss => "host-loss",
            DropReason::HostCorruption => "host-corruption",
            DropReason::SwapInFault => "swap-in-fault",
            DropReason::ColdPressure => "cold-pressure",
            DropReason::ColdReadFault => "cold-read-fault",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "cpu-pressure" => Ok(DropReason::CpuPressure),
            "host-loss" => Ok(DropReason::HostLoss),
            "host-corruption" => Ok(DropReason::HostCorruption),
            "swap-in-fault" => Ok(DropReason::SwapInFault),
            "cold-pressure" => Ok(DropReason::ColdPressure),
            "cold-read-fault" => Ok(DropReason::ColdReadFault),
            other => Err(DeError::custom(format!("unknown drop reason {other:?}"))),
        }
    }
}

/// A host-side storage tier of the deep cache hierarchy (the GPU tier is
/// never a demotion source or target, so it does not appear here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageTier {
    /// Tier 1: host DRAM (the paper's CPU cache).
    Cpu,
    /// Tier 2: simulated NVMe SSD.
    Ssd,
    /// Tier 3: simulated NFS/object cold store (restart-durable).
    Cold,
}

impl StorageTier {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StorageTier::Cpu => "cpu",
            StorageTier::Ssd => "ssd",
            StorageTier::Cold => "cold",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "cpu" => Ok(StorageTier::Cpu),
            "ssd" => Ok(StorageTier::Ssd),
            "cold" => Ok(StorageTier::Cold),
            other => Err(DeError::custom(format!("unknown storage tier {other:?}"))),
        }
    }
}

/// Which fault-recovery path the engine exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A swap-in DMA failed or timed out and was retried after backoff.
    SwapInRetry,
    /// Swap-in retries were exhausted; the CPU chunks were dropped and
    /// will be recomputed from raw tokens.
    RecomputeFallback,
    /// A transient GPU slot-allocation failure was absorbed by the
    /// eviction backpressure pass.
    GpuAllocFault,
    /// An injected worker stall lengthened the iteration.
    WorkerStall,
    /// A deep-tier (SSD/cold) read failed; the affected chunks were
    /// dropped and recomputed from raw tokens.
    ColdReadFallback,
    /// A session manifest read back from the cold store was torn (partial
    /// write); rehydration was abandoned in favour of recomputation.
    TornManifest,
}

impl RecoveryKind {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryKind::SwapInRetry => "swap-in-retry",
            RecoveryKind::RecomputeFallback => "recompute-fallback",
            RecoveryKind::GpuAllocFault => "gpu-alloc-fault",
            RecoveryKind::WorkerStall => "worker-stall",
            RecoveryKind::ColdReadFallback => "cold-read-fallback",
            RecoveryKind::TornManifest => "torn-manifest",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "swap-in-retry" => Ok(RecoveryKind::SwapInRetry),
            "recompute-fallback" => Ok(RecoveryKind::RecomputeFallback),
            "gpu-alloc-fault" => Ok(RecoveryKind::GpuAllocFault),
            "worker-stall" => Ok(RecoveryKind::WorkerStall),
            "cold-read-fallback" => Ok(RecoveryKind::ColdReadFallback),
            "torn-manifest" => Ok(RecoveryKind::TornManifest),
            other => Err(DeError::custom(format!("unknown recovery kind {other:?}"))),
        }
    }
}

/// One structured event recorded by the serving stack.
///
/// See `docs/OBSERVABILITY.md` for the full reference of every variant's
/// meaning and wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A scheduler iteration began (before admission).
    IterationStart {
        /// Simulated time at the start of the tick.
        at: SimTime,
        /// Zero-based iteration index.
        iteration: u64,
        /// Requests in the running batch at tick start.
        running: usize,
        /// Requests waiting for admission at tick start.
        waiting: usize,
    },
    /// The iteration's batch was composed (after admission), with its
    /// prefill/generation split.
    BatchComposed {
        /// Simulated time (still the tick start; compute has not run).
        at: SimTime,
        /// Zero-based iteration index.
        iteration: u64,
        /// Sequences doing prefill work this iteration.
        prefill_seqs: usize,
        /// Sequences doing single-token decode this iteration.
        decode_seqs: usize,
        /// Query tokens of prefill work in this iteration's invocation.
        prefill_tokens: usize,
        /// Query tokens of decode work (one per decode sequence).
        decode_tokens: usize,
    },
    /// The iteration's model invocation completed and the clock advanced.
    IterationEnd {
        /// Simulated time after the clock advanced (= end of the tick).
        at: SimTime,
        /// Zero-based iteration index.
        iteration: u64,
        /// Link queueing delay that preceded compute.
        queue_delay: SimDuration,
        /// Model compute time, including any pipelined swap-in stall.
        compute: SimDuration,
        /// Injected worker-stall time (fault injection only).
        stall: SimDuration,
    },
    /// A request was admitted and its Figure-5 restore plan committed.
    /// The token fields are the per-turn cache-hit attribution.
    Admitted {
        /// Admission time.
        at: SimTime,
        /// Iteration that admitted the request.
        iteration: u64,
        /// Request id.
        request: u64,
        /// Conversation id.
        conv: u64,
        /// True when this resumes a suspended request rather than
        /// starting a fresh turn.
        resumed: bool,
        /// New prompt tokens (0 for resumed requests).
        prompt_tokens: usize,
        /// History-tail tokens recomputed with the prompt (history the
        /// cache never held, e.g. the previous turn's final token).
        tail_tokens: usize,
        /// History tokens served by the globally shared prefix.
        shared_tokens: usize,
        /// History tokens still GPU-resident (free hits).
        gpu_hit_tokens: usize,
        /// Lazily-copied tokens revalidated in place (free hits).
        revalidate_tokens: usize,
        /// History tokens swapped in from the CPU tier.
        swap_in_tokens: usize,
        /// Dropped history tokens recomputed from raw text.
        recompute_tokens: usize,
    },
    /// A swap DMA was placed on the PCIe link (chunk swap-in/out start).
    /// Under fault injection a failed DMA still records its start/end
    /// pair: the aborted transfer occupied the link for its full duration.
    SwapStart {
        /// When the transfer starts moving bytes (after FIFO queueing).
        at: SimTime,
        /// Transfer direction.
        dir: SwapDir,
        /// Bytes transferred.
        bytes: u64,
    },
    /// A swap DMA completed (chunk swap-in/out end).
    SwapEnd {
        /// Completion time.
        at: SimTime,
        /// Transfer direction.
        dir: SwapDir,
        /// Bytes transferred.
        bytes: u64,
    },
    /// The eviction pass demoted a GPU-resident chunk: copied to the CPU
    /// tier (ahead-of-time swap-out, `dropped = false`) or dropped
    /// outright because the CPU tier could not hold it (`dropped = true`).
    ChunkEvicted {
        /// Eviction time.
        at: SimTime,
        /// Owning conversation.
        conv: u64,
        /// Chunk index within the conversation.
        chunk: usize,
        /// Tokens in the chunk.
        tokens: usize,
        /// True if dropped instead of copied.
        dropped: bool,
    },
    /// A chunk's CPU-tier copy was discarded (the chunk must be
    /// recomputed on its next restore unless the GPU still holds it).
    ChunkDropped {
        /// Drop time.
        at: SimTime,
        /// Owning conversation.
        conv: u64,
        /// Chunk index within the conversation.
        chunk: usize,
        /// Tokens in the chunk.
        tokens: usize,
        /// Why the copy was discarded.
        reason: DropReason,
    },
    /// Memory pressure demoted a chunk one storage tier down (CPU→SSD,
    /// SSD→cold, or CPU→cold when the SSD tier is disabled) instead of
    /// dropping it.
    ChunkDemoted {
        /// Demotion time.
        at: SimTime,
        /// Owning conversation.
        conv: u64,
        /// Chunk index within the conversation.
        chunk: usize,
        /// Tokens in the chunk.
        tokens: usize,
        /// Tier the chunk left.
        from: StorageTier,
        /// Tier the chunk landed in.
        to: StorageTier,
    },
    /// A restore revalidated lazily-copied tokens in place — their GPU
    /// slots were never reclaimed, so the "swap-in" was free.
    Revalidated {
        /// Restore commit time.
        at: SimTime,
        /// Conversation restored.
        conv: u64,
        /// Tokens revalidated.
        tokens: usize,
    },
    /// A restore committed a CPU→GPU swap-in of this many tokens.
    SwapInCommitted {
        /// Restore commit time.
        at: SimTime,
        /// Conversation restored.
        conv: u64,
        /// Tokens to transfer.
        tokens: usize,
    },
    /// A restore committed recomputation of dropped tokens from raw text
    /// (they run as extra prefill work in the admitting iteration).
    RecomputeCommitted {
        /// Restore commit time.
        at: SimTime,
        /// Conversation restored.
        conv: u64,
        /// Tokens to recompute.
        tokens: usize,
    },
    /// A restore committed a deep-tier (SSD or cold) read of this many
    /// tokens; they travel through the CPU staging path to the GPU.
    TierReadCommitted {
        /// Restore commit time.
        at: SimTime,
        /// Conversation restored.
        conv: u64,
        /// Tokens read back.
        tokens: usize,
        /// The tier the tokens were read from.
        tier: StorageTier,
    },
    /// A running request was suspended (§4.3.5) and its GPU-resident
    /// context moved to the CPU tier.
    Suspended {
        /// Suspension time.
        at: SimTime,
        /// Conversation suspended.
        conv: u64,
        /// Tokens that must be transferred GPU→CPU.
        tokens: usize,
    },
    /// The engine exercised a fault-recovery path.
    FaultRecovery {
        /// When the recovery action was taken.
        at: SimTime,
        /// Affected conversation, when one is attributable.
        conv: Option<u64>,
        /// Which recovery path ran.
        kind: RecoveryKind,
        /// Tokens involved (e.g. the swap-in size being retried).
        tokens: usize,
    },
    /// A request finished and its response was emitted.
    RequestCompleted {
        /// Finish time.
        at: SimTime,
        /// Request id.
        request: u64,
        /// Conversation id.
        conv: u64,
        /// Request arrival time.
        arrival: SimTime,
        /// When the first output token was emitted.
        first_token: SimTime,
        /// Output tokens generated.
        output_tokens: usize,
        /// Query tokens processed in prefill.
        prefill_tokens: usize,
        /// History tokens served from cache (incl. the shared prefix).
        cached_tokens: usize,
    },
    /// `sim::gpu` timed an iteration whose swap-in was pipelined
    /// layer-by-layer with compute (§4.3.3); `total - compute` is the
    /// stall the transfer could not hide.
    PipelinedSwapIn {
        /// Start of the timed invocation.
        at: SimTime,
        /// Swap-in bytes overlapped with the invocation.
        bytes: u64,
        /// Pure compute time of the batch.
        compute: SimDuration,
        /// Total time including the transfer stall.
        total: SimDuration,
    },
    /// One forward pass of the threaded tensor-parallel engine. The
    /// threaded engine has no simulated clock, so `at` is always zero and
    /// `pass` provides the logical ordering.
    TpPass {
        /// Always [`SimTime::ZERO`] (no simulated clock in real-thread
        /// execution).
        at: SimTime,
        /// Monotonic pass counter.
        pass: u64,
        /// Conversation served.
        conv: u64,
        /// Query tokens in the pass.
        query_tokens: usize,
        /// Worker shards that participated.
        shards: usize,
    },
    /// A cluster router placed a request on a replica.
    Routed {
        /// Routing decision time (the request's arrival at the router).
        at: SimTime,
        /// Request id.
        request: u64,
        /// Conversation id.
        conv: u64,
        /// Chosen replica index.
        replica: usize,
        /// KV-tokens of the conversation already cached at that replica.
        cached_tokens: usize,
    },
    /// A conversation migration began: its KV chunks stream from the
    /// source replica to the target over the inter-node link.
    MigrationStart {
        /// When the handoff was initiated.
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// Source replica index.
        from: usize,
        /// Target replica index.
        to: usize,
        /// Chunks to stream.
        chunks: usize,
        /// Total KV bytes to stream.
        bytes: u64,
    },
    /// A conversation migration finished; lost tokens fall back to
    /// Pensieve's dropped-token recomputation at the target.
    MigrationEnd {
        /// When the last chunk landed (or was detected lost).
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// Target replica index.
        to: usize,
        /// Tokens delivered to the target's CPU tier.
        streamed_tokens: usize,
        /// Tokens lost in transit (recomputed at the target).
        lost_tokens: usize,
    },
    /// A replica was fault-injected dead; its in-flight and queued
    /// requests are re-routed and its KV state is gone.
    ReplicaFailed {
        /// Failure time.
        at: SimTime,
        /// The dead replica's index.
        replica: usize,
        /// Requests re-queued onto surviving replicas.
        requeued: usize,
    },
    /// A replication flush streamed a session's pending KV delta from its
    /// primary replica to the designated standby.
    ReplicationFlush {
        /// When the delta was put on the wire.
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// Primary (source) replica index.
        from: usize,
        /// Standby (target) replica index.
        to: usize,
        /// Delta tokens streamed in this flush.
        tokens: usize,
        /// KV bytes of the delta.
        bytes: u64,
        /// True if the delta was lost in transit (it stays pending and
        /// is re-streamed by a later flush).
        lost: bool,
    },
    /// A standby was promoted after its primary fail-stopped: replicated
    /// chunks were imported at the standby and only the unreplicated
    /// suffix falls back to dropped-chunk recompute.
    StandbyPromoted {
        /// When the promotion completed (replicated state usable at the
        /// standby; in-flight replication deltas have landed).
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// The dead primary's index.
        from: usize,
        /// The promoted standby's index.
        to: usize,
        /// Tokens restored from replicated state.
        replicated_tokens: usize,
        /// Unreplicated suffix tokens (replication lag at crash) that
        /// must be recomputed from raw text.
        lag_tokens: usize,
        /// Crash-to-promotion latency.
        latency: SimDuration,
    },
    /// The inter-node fabric partitioned: transfers cannot start inside
    /// the window (in-flight transfers complete).
    LinkPartitioned {
        /// Window start.
        at: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// A session's chunk manifest was serialized to the cold store,
    /// making the conversation rehydratable across a restart.
    ManifestPersisted {
        /// When the manifest write was issued.
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// Context tokens covered by the manifest.
        tokens: usize,
        /// Serialized manifest bytes written.
        bytes: u64,
        /// True when an injected torn-write fault truncated the manifest
        /// (detected by checksum at rehydration time).
        torn: bool,
    },
    /// A restarted or failed-over replica rebuilt a conversation's cache
    /// state from its cold-store manifest instead of recomputing it.
    SessionRehydrated {
        /// When the rehydrated state became usable at the replica.
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// Tokens admitted back into the cache's cold tier.
        tokens: usize,
        /// The rehydrating replica's index.
        replica: usize,
    },
    /// A conversation attached to a content-addressed shared chunk chain
    /// (tool preamble, RAG document, or forked history): its leading
    /// context is now served by refcounted chunks shared with every other
    /// sharer instead of a private copy.
    SharedAttached {
        /// Attach time (first admission of the conversation).
        at: SimTime,
        /// Conversation id.
        conv: u64,
        /// Context tokens covered by the shared chain.
        tokens: usize,
        /// Chunks in the attached chain.
        chunks: usize,
    },
    /// The eviction pass moved a content-addressed shared chunk down the
    /// hierarchy (`dropped = false`) or discarded it because its last
    /// reference had been released (`dropped = true`). Shared chunks are
    /// identified by their content hash, not an owning conversation.
    SharedChunkEvicted {
        /// Eviction time.
        at: SimTime,
        /// The chunk's content-addressed id.
        chunk: u64,
        /// Tokens in the chunk.
        tokens: usize,
        /// Conversations still referencing the chunk at eviction time.
        refs: usize,
        /// True if dropped instead of demoted one tier down.
        dropped: bool,
    },
}

/// Every variant name, in declaration order. The docs-coverage test
/// asserts each appears in `docs/OBSERVABILITY.md`.
pub const VARIANTS: &[&str] = &[
    "IterationStart",
    "BatchComposed",
    "IterationEnd",
    "Admitted",
    "SwapStart",
    "SwapEnd",
    "ChunkEvicted",
    "ChunkDropped",
    "ChunkDemoted",
    "Revalidated",
    "SwapInCommitted",
    "RecomputeCommitted",
    "TierReadCommitted",
    "Suspended",
    "FaultRecovery",
    "RequestCompleted",
    "PipelinedSwapIn",
    "TpPass",
    "Routed",
    "MigrationStart",
    "MigrationEnd",
    "ReplicaFailed",
    "ReplicationFlush",
    "StandbyPromoted",
    "LinkPartitioned",
    "ManifestPersisted",
    "SessionRehydrated",
    "SharedAttached",
    "SharedChunkEvicted",
];

impl TraceEvent {
    /// The variant's wire name (the JSON `"ev"` field).
    #[must_use]
    pub fn variant_name(&self) -> &'static str {
        match self {
            TraceEvent::IterationStart { .. } => "IterationStart",
            TraceEvent::BatchComposed { .. } => "BatchComposed",
            TraceEvent::IterationEnd { .. } => "IterationEnd",
            TraceEvent::Admitted { .. } => "Admitted",
            TraceEvent::SwapStart { .. } => "SwapStart",
            TraceEvent::SwapEnd { .. } => "SwapEnd",
            TraceEvent::ChunkEvicted { .. } => "ChunkEvicted",
            TraceEvent::ChunkDropped { .. } => "ChunkDropped",
            TraceEvent::ChunkDemoted { .. } => "ChunkDemoted",
            TraceEvent::Revalidated { .. } => "Revalidated",
            TraceEvent::SwapInCommitted { .. } => "SwapInCommitted",
            TraceEvent::RecomputeCommitted { .. } => "RecomputeCommitted",
            TraceEvent::TierReadCommitted { .. } => "TierReadCommitted",
            TraceEvent::Suspended { .. } => "Suspended",
            TraceEvent::FaultRecovery { .. } => "FaultRecovery",
            TraceEvent::RequestCompleted { .. } => "RequestCompleted",
            TraceEvent::PipelinedSwapIn { .. } => "PipelinedSwapIn",
            TraceEvent::TpPass { .. } => "TpPass",
            TraceEvent::Routed { .. } => "Routed",
            TraceEvent::MigrationStart { .. } => "MigrationStart",
            TraceEvent::MigrationEnd { .. } => "MigrationEnd",
            TraceEvent::ReplicaFailed { .. } => "ReplicaFailed",
            TraceEvent::ReplicationFlush { .. } => "ReplicationFlush",
            TraceEvent::StandbyPromoted { .. } => "StandbyPromoted",
            TraceEvent::LinkPartitioned { .. } => "LinkPartitioned",
            TraceEvent::ManifestPersisted { .. } => "ManifestPersisted",
            TraceEvent::SessionRehydrated { .. } => "SessionRehydrated",
            TraceEvent::SharedAttached { .. } => "SharedAttached",
            TraceEvent::SharedChunkEvicted { .. } => "SharedChunkEvicted",
        }
    }

    /// The event's timestamp.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::IterationStart { at, .. }
            | TraceEvent::BatchComposed { at, .. }
            | TraceEvent::IterationEnd { at, .. }
            | TraceEvent::Admitted { at, .. }
            | TraceEvent::SwapStart { at, .. }
            | TraceEvent::SwapEnd { at, .. }
            | TraceEvent::ChunkEvicted { at, .. }
            | TraceEvent::ChunkDropped { at, .. }
            | TraceEvent::ChunkDemoted { at, .. }
            | TraceEvent::Revalidated { at, .. }
            | TraceEvent::SwapInCommitted { at, .. }
            | TraceEvent::RecomputeCommitted { at, .. }
            | TraceEvent::TierReadCommitted { at, .. }
            | TraceEvent::Suspended { at, .. }
            | TraceEvent::FaultRecovery { at, .. }
            | TraceEvent::RequestCompleted { at, .. }
            | TraceEvent::PipelinedSwapIn { at, .. }
            | TraceEvent::TpPass { at, .. }
            | TraceEvent::Routed { at, .. }
            | TraceEvent::MigrationStart { at, .. }
            | TraceEvent::MigrationEnd { at, .. }
            | TraceEvent::ReplicaFailed { at, .. }
            | TraceEvent::ReplicationFlush { at, .. }
            | TraceEvent::StandbyPromoted { at, .. }
            | TraceEvent::LinkPartitioned { at, .. }
            | TraceEvent::ManifestPersisted { at, .. }
            | TraceEvent::SessionRehydrated { at, .. }
            | TraceEvent::SharedAttached { at, .. }
            | TraceEvent::SharedChunkEvicted { at, .. } => *at,
        }
    }
}

/// Builds the `"ev"`-tagged object for one event.
fn obj(ev: &str, fields: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    m.insert("ev".to_owned(), Value::String(ev.to_owned()));
    for (k, v) in fields {
        m.insert((*k).to_owned(), v.clone());
    }
    Value::Object(m)
}

fn num(x: f64) -> Value {
    Value::Number(x)
}

fn time(t: SimTime) -> Value {
    num(t.as_secs())
}

fn dur(d: SimDuration) -> Value {
    num(d.as_secs())
}

fn get<'v>(v: &'v Value, key: &str) -> Result<&'v Value, DeError> {
    v.get(key)
        .ok_or_else(|| DeError::custom(format!("missing field {key:?}")))
}

fn f_time(v: &Value, key: &str) -> Result<SimTime, DeError> {
    Ok(SimTime::from_secs(f64::from_value(get(v, key)?)?))
}

fn f_dur(v: &Value, key: &str) -> Result<SimDuration, DeError> {
    Ok(SimDuration::from_secs(f64::from_value(get(v, key)?)?))
}

fn f_u64(v: &Value, key: &str) -> Result<u64, DeError> {
    u64::from_value(get(v, key)?)
}

fn f_usize(v: &Value, key: &str) -> Result<usize, DeError> {
    usize::from_value(get(v, key)?)
}

fn f_bool(v: &Value, key: &str) -> Result<bool, DeError> {
    bool::from_value(get(v, key)?)
}

fn f_str(v: &Value, key: &str) -> Result<String, DeError> {
    String::from_value(get(v, key)?)
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        match self {
            TraceEvent::IterationStart {
                at,
                iteration,
                running,
                waiting,
            } => obj(
                "IterationStart",
                &[
                    ("at", time(*at)),
                    ("iteration", num(*iteration as f64)),
                    ("running", num(*running as f64)),
                    ("waiting", num(*waiting as f64)),
                ],
            ),
            TraceEvent::BatchComposed {
                at,
                iteration,
                prefill_seqs,
                decode_seqs,
                prefill_tokens,
                decode_tokens,
            } => obj(
                "BatchComposed",
                &[
                    ("at", time(*at)),
                    ("iteration", num(*iteration as f64)),
                    ("prefill_seqs", num(*prefill_seqs as f64)),
                    ("decode_seqs", num(*decode_seqs as f64)),
                    ("prefill_tokens", num(*prefill_tokens as f64)),
                    ("decode_tokens", num(*decode_tokens as f64)),
                ],
            ),
            TraceEvent::IterationEnd {
                at,
                iteration,
                queue_delay,
                compute,
                stall,
            } => obj(
                "IterationEnd",
                &[
                    ("at", time(*at)),
                    ("iteration", num(*iteration as f64)),
                    ("queue_delay", dur(*queue_delay)),
                    ("compute", dur(*compute)),
                    ("stall", dur(*stall)),
                ],
            ),
            TraceEvent::Admitted {
                at,
                iteration,
                request,
                conv,
                resumed,
                prompt_tokens,
                tail_tokens,
                shared_tokens,
                gpu_hit_tokens,
                revalidate_tokens,
                swap_in_tokens,
                recompute_tokens,
            } => obj(
                "Admitted",
                &[
                    ("at", time(*at)),
                    ("iteration", num(*iteration as f64)),
                    ("request", num(*request as f64)),
                    ("conv", num(*conv as f64)),
                    ("resumed", Value::Bool(*resumed)),
                    ("prompt_tokens", num(*prompt_tokens as f64)),
                    ("tail_tokens", num(*tail_tokens as f64)),
                    ("shared_tokens", num(*shared_tokens as f64)),
                    ("gpu_hit_tokens", num(*gpu_hit_tokens as f64)),
                    ("revalidate_tokens", num(*revalidate_tokens as f64)),
                    ("swap_in_tokens", num(*swap_in_tokens as f64)),
                    ("recompute_tokens", num(*recompute_tokens as f64)),
                ],
            ),
            TraceEvent::SwapStart { at, dir, bytes } => obj(
                "SwapStart",
                &[
                    ("at", time(*at)),
                    ("dir", Value::String(dir.as_str().to_owned())),
                    ("bytes", num(*bytes as f64)),
                ],
            ),
            TraceEvent::SwapEnd { at, dir, bytes } => obj(
                "SwapEnd",
                &[
                    ("at", time(*at)),
                    ("dir", Value::String(dir.as_str().to_owned())),
                    ("bytes", num(*bytes as f64)),
                ],
            ),
            TraceEvent::ChunkEvicted {
                at,
                conv,
                chunk,
                tokens,
                dropped,
            } => obj(
                "ChunkEvicted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("chunk", num(*chunk as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("dropped", Value::Bool(*dropped)),
                ],
            ),
            TraceEvent::ChunkDropped {
                at,
                conv,
                chunk,
                tokens,
                reason,
            } => obj(
                "ChunkDropped",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("chunk", num(*chunk as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("reason", Value::String(reason.as_str().to_owned())),
                ],
            ),
            TraceEvent::ChunkDemoted {
                at,
                conv,
                chunk,
                tokens,
                from,
                to,
            } => obj(
                "ChunkDemoted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("chunk", num(*chunk as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("from", Value::String(from.as_str().to_owned())),
                    ("to", Value::String(to.as_str().to_owned())),
                ],
            ),
            TraceEvent::Revalidated { at, conv, tokens } => obj(
                "Revalidated",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                ],
            ),
            TraceEvent::SwapInCommitted { at, conv, tokens } => obj(
                "SwapInCommitted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                ],
            ),
            TraceEvent::RecomputeCommitted { at, conv, tokens } => obj(
                "RecomputeCommitted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                ],
            ),
            TraceEvent::TierReadCommitted {
                at,
                conv,
                tokens,
                tier,
            } => obj(
                "TierReadCommitted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("tier", Value::String(tier.as_str().to_owned())),
                ],
            ),
            TraceEvent::Suspended { at, conv, tokens } => obj(
                "Suspended",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                ],
            ),
            TraceEvent::FaultRecovery {
                at,
                conv,
                kind,
                tokens,
            } => obj(
                "FaultRecovery",
                &[
                    ("at", time(*at)),
                    ("conv", conv.map_or(Value::Null, |c| num(c as f64))),
                    ("kind", Value::String(kind.as_str().to_owned())),
                    ("tokens", num(*tokens as f64)),
                ],
            ),
            TraceEvent::RequestCompleted {
                at,
                request,
                conv,
                arrival,
                first_token,
                output_tokens,
                prefill_tokens,
                cached_tokens,
            } => obj(
                "RequestCompleted",
                &[
                    ("at", time(*at)),
                    ("request", num(*request as f64)),
                    ("conv", num(*conv as f64)),
                    ("arrival", time(*arrival)),
                    ("first_token", time(*first_token)),
                    ("output_tokens", num(*output_tokens as f64)),
                    ("prefill_tokens", num(*prefill_tokens as f64)),
                    ("cached_tokens", num(*cached_tokens as f64)),
                ],
            ),
            TraceEvent::PipelinedSwapIn {
                at,
                bytes,
                compute,
                total,
            } => obj(
                "PipelinedSwapIn",
                &[
                    ("at", time(*at)),
                    ("bytes", num(*bytes as f64)),
                    ("compute", dur(*compute)),
                    ("total", dur(*total)),
                ],
            ),
            TraceEvent::TpPass {
                at,
                pass,
                conv,
                query_tokens,
                shards,
            } => obj(
                "TpPass",
                &[
                    ("at", time(*at)),
                    ("pass", num(*pass as f64)),
                    ("conv", num(*conv as f64)),
                    ("query_tokens", num(*query_tokens as f64)),
                    ("shards", num(*shards as f64)),
                ],
            ),
            TraceEvent::Routed {
                at,
                request,
                conv,
                replica,
                cached_tokens,
            } => obj(
                "Routed",
                &[
                    ("at", time(*at)),
                    ("request", num(*request as f64)),
                    ("conv", num(*conv as f64)),
                    ("replica", num(*replica as f64)),
                    ("cached_tokens", num(*cached_tokens as f64)),
                ],
            ),
            TraceEvent::MigrationStart {
                at,
                conv,
                from,
                to,
                chunks,
                bytes,
            } => obj(
                "MigrationStart",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("from", num(*from as f64)),
                    ("to", num(*to as f64)),
                    ("chunks", num(*chunks as f64)),
                    ("bytes", num(*bytes as f64)),
                ],
            ),
            TraceEvent::MigrationEnd {
                at,
                conv,
                to,
                streamed_tokens,
                lost_tokens,
            } => obj(
                "MigrationEnd",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("to", num(*to as f64)),
                    ("streamed_tokens", num(*streamed_tokens as f64)),
                    ("lost_tokens", num(*lost_tokens as f64)),
                ],
            ),
            TraceEvent::ReplicaFailed {
                at,
                replica,
                requeued,
            } => obj(
                "ReplicaFailed",
                &[
                    ("at", time(*at)),
                    ("replica", num(*replica as f64)),
                    ("requeued", num(*requeued as f64)),
                ],
            ),
            TraceEvent::ReplicationFlush {
                at,
                conv,
                from,
                to,
                tokens,
                bytes,
                lost,
            } => obj(
                "ReplicationFlush",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("from", num(*from as f64)),
                    ("to", num(*to as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("bytes", num(*bytes as f64)),
                    ("lost", Value::Bool(*lost)),
                ],
            ),
            TraceEvent::StandbyPromoted {
                at,
                conv,
                from,
                to,
                replicated_tokens,
                lag_tokens,
                latency,
            } => obj(
                "StandbyPromoted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("from", num(*from as f64)),
                    ("to", num(*to as f64)),
                    ("replicated_tokens", num(*replicated_tokens as f64)),
                    ("lag_tokens", num(*lag_tokens as f64)),
                    ("latency", dur(*latency)),
                ],
            ),
            TraceEvent::LinkPartitioned { at, until } => obj(
                "LinkPartitioned",
                &[("at", time(*at)), ("until", time(*until))],
            ),
            TraceEvent::ManifestPersisted {
                at,
                conv,
                tokens,
                bytes,
                torn,
            } => obj(
                "ManifestPersisted",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("bytes", num(*bytes as f64)),
                    ("torn", Value::Bool(*torn)),
                ],
            ),
            TraceEvent::SessionRehydrated {
                at,
                conv,
                tokens,
                replica,
            } => obj(
                "SessionRehydrated",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("replica", num(*replica as f64)),
                ],
            ),
            TraceEvent::SharedAttached {
                at,
                conv,
                tokens,
                chunks,
            } => obj(
                "SharedAttached",
                &[
                    ("at", time(*at)),
                    ("conv", num(*conv as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("chunks", num(*chunks as f64)),
                ],
            ),
            TraceEvent::SharedChunkEvicted {
                at,
                chunk,
                tokens,
                refs,
                dropped,
            } => obj(
                "SharedChunkEvicted",
                &[
                    ("at", time(*at)),
                    ("chunk", num(*chunk as f64)),
                    ("tokens", num(*tokens as f64)),
                    ("refs", num(*refs as f64)),
                    ("dropped", Value::Bool(*dropped)),
                ],
            ),
        }
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let ev = f_str(v, "ev")?;
        match ev.as_str() {
            "IterationStart" => Ok(TraceEvent::IterationStart {
                at: f_time(v, "at")?,
                iteration: f_u64(v, "iteration")?,
                running: f_usize(v, "running")?,
                waiting: f_usize(v, "waiting")?,
            }),
            "BatchComposed" => Ok(TraceEvent::BatchComposed {
                at: f_time(v, "at")?,
                iteration: f_u64(v, "iteration")?,
                prefill_seqs: f_usize(v, "prefill_seqs")?,
                decode_seqs: f_usize(v, "decode_seqs")?,
                prefill_tokens: f_usize(v, "prefill_tokens")?,
                decode_tokens: f_usize(v, "decode_tokens")?,
            }),
            "IterationEnd" => Ok(TraceEvent::IterationEnd {
                at: f_time(v, "at")?,
                iteration: f_u64(v, "iteration")?,
                queue_delay: f_dur(v, "queue_delay")?,
                compute: f_dur(v, "compute")?,
                stall: f_dur(v, "stall")?,
            }),
            "Admitted" => Ok(TraceEvent::Admitted {
                at: f_time(v, "at")?,
                iteration: f_u64(v, "iteration")?,
                request: f_u64(v, "request")?,
                conv: f_u64(v, "conv")?,
                resumed: f_bool(v, "resumed")?,
                prompt_tokens: f_usize(v, "prompt_tokens")?,
                tail_tokens: f_usize(v, "tail_tokens")?,
                shared_tokens: f_usize(v, "shared_tokens")?,
                gpu_hit_tokens: f_usize(v, "gpu_hit_tokens")?,
                revalidate_tokens: f_usize(v, "revalidate_tokens")?,
                swap_in_tokens: f_usize(v, "swap_in_tokens")?,
                recompute_tokens: f_usize(v, "recompute_tokens")?,
            }),
            "SwapStart" => Ok(TraceEvent::SwapStart {
                at: f_time(v, "at")?,
                dir: SwapDir::parse(&f_str(v, "dir")?)?,
                bytes: f_u64(v, "bytes")?,
            }),
            "SwapEnd" => Ok(TraceEvent::SwapEnd {
                at: f_time(v, "at")?,
                dir: SwapDir::parse(&f_str(v, "dir")?)?,
                bytes: f_u64(v, "bytes")?,
            }),
            "ChunkEvicted" => Ok(TraceEvent::ChunkEvicted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                chunk: f_usize(v, "chunk")?,
                tokens: f_usize(v, "tokens")?,
                dropped: f_bool(v, "dropped")?,
            }),
            "ChunkDropped" => Ok(TraceEvent::ChunkDropped {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                chunk: f_usize(v, "chunk")?,
                tokens: f_usize(v, "tokens")?,
                reason: DropReason::parse(&f_str(v, "reason")?)?,
            }),
            "ChunkDemoted" => Ok(TraceEvent::ChunkDemoted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                chunk: f_usize(v, "chunk")?,
                tokens: f_usize(v, "tokens")?,
                from: StorageTier::parse(&f_str(v, "from")?)?,
                to: StorageTier::parse(&f_str(v, "to")?)?,
            }),
            "Revalidated" => Ok(TraceEvent::Revalidated {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
            }),
            "SwapInCommitted" => Ok(TraceEvent::SwapInCommitted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
            }),
            "RecomputeCommitted" => Ok(TraceEvent::RecomputeCommitted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
            }),
            "TierReadCommitted" => Ok(TraceEvent::TierReadCommitted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
                tier: StorageTier::parse(&f_str(v, "tier")?)?,
            }),
            "Suspended" => Ok(TraceEvent::Suspended {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
            }),
            "FaultRecovery" => Ok(TraceEvent::FaultRecovery {
                at: f_time(v, "at")?,
                conv: Option::<u64>::from_value(get(v, "conv")?)?,
                kind: RecoveryKind::parse(&f_str(v, "kind")?)?,
                tokens: f_usize(v, "tokens")?,
            }),
            "RequestCompleted" => Ok(TraceEvent::RequestCompleted {
                at: f_time(v, "at")?,
                request: f_u64(v, "request")?,
                conv: f_u64(v, "conv")?,
                arrival: f_time(v, "arrival")?,
                first_token: f_time(v, "first_token")?,
                output_tokens: f_usize(v, "output_tokens")?,
                prefill_tokens: f_usize(v, "prefill_tokens")?,
                cached_tokens: f_usize(v, "cached_tokens")?,
            }),
            "PipelinedSwapIn" => Ok(TraceEvent::PipelinedSwapIn {
                at: f_time(v, "at")?,
                bytes: f_u64(v, "bytes")?,
                compute: f_dur(v, "compute")?,
                total: f_dur(v, "total")?,
            }),
            "TpPass" => Ok(TraceEvent::TpPass {
                at: f_time(v, "at")?,
                pass: f_u64(v, "pass")?,
                conv: f_u64(v, "conv")?,
                query_tokens: f_usize(v, "query_tokens")?,
                shards: f_usize(v, "shards")?,
            }),
            "Routed" => Ok(TraceEvent::Routed {
                at: f_time(v, "at")?,
                request: f_u64(v, "request")?,
                conv: f_u64(v, "conv")?,
                replica: f_usize(v, "replica")?,
                cached_tokens: f_usize(v, "cached_tokens")?,
            }),
            "MigrationStart" => Ok(TraceEvent::MigrationStart {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                from: f_usize(v, "from")?,
                to: f_usize(v, "to")?,
                chunks: f_usize(v, "chunks")?,
                bytes: f_u64(v, "bytes")?,
            }),
            "MigrationEnd" => Ok(TraceEvent::MigrationEnd {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                to: f_usize(v, "to")?,
                streamed_tokens: f_usize(v, "streamed_tokens")?,
                lost_tokens: f_usize(v, "lost_tokens")?,
            }),
            "ReplicaFailed" => Ok(TraceEvent::ReplicaFailed {
                at: f_time(v, "at")?,
                replica: f_usize(v, "replica")?,
                requeued: f_usize(v, "requeued")?,
            }),
            "ReplicationFlush" => Ok(TraceEvent::ReplicationFlush {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                from: f_usize(v, "from")?,
                to: f_usize(v, "to")?,
                tokens: f_usize(v, "tokens")?,
                bytes: f_u64(v, "bytes")?,
                lost: f_bool(v, "lost")?,
            }),
            "StandbyPromoted" => Ok(TraceEvent::StandbyPromoted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                from: f_usize(v, "from")?,
                to: f_usize(v, "to")?,
                replicated_tokens: f_usize(v, "replicated_tokens")?,
                lag_tokens: f_usize(v, "lag_tokens")?,
                latency: f_dur(v, "latency")?,
            }),
            "LinkPartitioned" => Ok(TraceEvent::LinkPartitioned {
                at: f_time(v, "at")?,
                until: f_time(v, "until")?,
            }),
            "ManifestPersisted" => Ok(TraceEvent::ManifestPersisted {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
                bytes: f_u64(v, "bytes")?,
                torn: f_bool(v, "torn")?,
            }),
            "SessionRehydrated" => Ok(TraceEvent::SessionRehydrated {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
                replica: f_usize(v, "replica")?,
            }),
            "SharedAttached" => Ok(TraceEvent::SharedAttached {
                at: f_time(v, "at")?,
                conv: f_u64(v, "conv")?,
                tokens: f_usize(v, "tokens")?,
                chunks: f_usize(v, "chunks")?,
            }),
            "SharedChunkEvicted" => Ok(TraceEvent::SharedChunkEvicted {
                at: f_time(v, "at")?,
                chunk: f_u64(v, "chunk")?,
                tokens: f_usize(v, "tokens")?,
                refs: f_usize(v, "refs")?,
                dropped: f_bool(v, "dropped")?,
            }),
            other => Err(DeError::custom(format!("unknown event variant {other:?}"))),
        }
    }
}

/// One instance of every variant, in declaration order — the fixture
/// behind the wire-format unit tests, the Chrome-trace golden file, and
/// the docs-coverage test, and a compact reference for what each variant
/// looks like on the wire.
#[must_use]
pub fn sample_events() -> Vec<TraceEvent> {
    let t = SimTime::from_secs(1.25);
    vec![
        TraceEvent::IterationStart {
            at: t,
            iteration: 3,
            running: 2,
            waiting: 1,
        },
        TraceEvent::BatchComposed {
            at: t,
            iteration: 3,
            prefill_seqs: 1,
            decode_seqs: 2,
            prefill_tokens: 128,
            decode_tokens: 2,
        },
        TraceEvent::IterationEnd {
            at: SimTime::from_secs(1.30),
            iteration: 3,
            queue_delay: SimDuration::from_millis(1.0),
            compute: SimDuration::from_millis(48.0),
            stall: SimDuration::ZERO,
        },
        TraceEvent::Admitted {
            at: t,
            iteration: 3,
            request: 7,
            conv: 4,
            resumed: false,
            prompt_tokens: 40,
            tail_tokens: 1,
            shared_tokens: 0,
            gpu_hit_tokens: 96,
            revalidate_tokens: 32,
            swap_in_tokens: 64,
            recompute_tokens: 32,
        },
        TraceEvent::SwapStart {
            at: t,
            dir: SwapDir::In,
            bytes: 1 << 20,
        },
        TraceEvent::SwapEnd {
            at: SimTime::from_secs(1.26),
            dir: SwapDir::In,
            bytes: 1 << 20,
        },
        TraceEvent::ChunkEvicted {
            at: t,
            conv: 2,
            chunk: 5,
            tokens: 32,
            dropped: false,
        },
        TraceEvent::ChunkDropped {
            at: t,
            conv: 2,
            chunk: 6,
            tokens: 32,
            reason: DropReason::CpuPressure,
        },
        TraceEvent::ChunkDemoted {
            at: t,
            conv: 2,
            chunk: 4,
            tokens: 32,
            from: StorageTier::Cpu,
            to: StorageTier::Ssd,
        },
        TraceEvent::Revalidated {
            at: t,
            conv: 4,
            tokens: 32,
        },
        TraceEvent::SwapInCommitted {
            at: t,
            conv: 4,
            tokens: 64,
        },
        TraceEvent::RecomputeCommitted {
            at: t,
            conv: 4,
            tokens: 32,
        },
        TraceEvent::TierReadCommitted {
            at: t,
            conv: 4,
            tokens: 64,
            tier: StorageTier::Cold,
        },
        TraceEvent::Suspended {
            at: t,
            conv: 9,
            tokens: 256,
        },
        TraceEvent::FaultRecovery {
            at: t,
            conv: Some(4),
            kind: RecoveryKind::SwapInRetry,
            tokens: 64,
        },
        TraceEvent::RequestCompleted {
            at: SimTime::from_secs(2.5),
            request: 7,
            conv: 4,
            arrival: SimTime::from_secs(1.0),
            first_token: SimTime::from_secs(1.3),
            output_tokens: 20,
            prefill_tokens: 73,
            cached_tokens: 192,
        },
        TraceEvent::PipelinedSwapIn {
            at: t,
            bytes: 1 << 20,
            compute: SimDuration::from_millis(48.0),
            total: SimDuration::from_millis(50.0),
        },
        TraceEvent::TpPass {
            at: SimTime::ZERO,
            pass: 11,
            conv: 4,
            query_tokens: 16,
            shards: 2,
        },
        TraceEvent::Routed {
            at: t,
            request: 7,
            conv: 4,
            replica: 2,
            cached_tokens: 192,
        },
        TraceEvent::MigrationStart {
            at: t,
            conv: 4,
            from: 2,
            to: 0,
            chunks: 6,
            bytes: 3 << 20,
        },
        TraceEvent::MigrationEnd {
            at: SimTime::from_secs(1.5),
            conv: 4,
            to: 0,
            streamed_tokens: 160,
            lost_tokens: 32,
        },
        TraceEvent::ReplicaFailed {
            at: t,
            replica: 2,
            requeued: 3,
        },
        TraceEvent::ReplicationFlush {
            at: t,
            conv: 4,
            from: 2,
            to: 0,
            tokens: 96,
            bytes: 3 << 19,
            lost: false,
        },
        TraceEvent::StandbyPromoted {
            at: SimTime::from_secs(1.5),
            conv: 4,
            from: 2,
            to: 0,
            replicated_tokens: 160,
            lag_tokens: 32,
            latency: SimDuration::from_millis(2.0),
        },
        TraceEvent::LinkPartitioned {
            at: t,
            until: SimTime::from_secs(1.75),
        },
        TraceEvent::ManifestPersisted {
            at: t,
            conv: 4,
            tokens: 192,
            bytes: 96,
            torn: false,
        },
        TraceEvent::SessionRehydrated {
            at: SimTime::from_secs(1.6),
            conv: 4,
            tokens: 192,
            replica: 0,
        },
        TraceEvent::SharedAttached {
            at: SimTime::from_secs(1.7),
            conv: 5,
            tokens: 1536,
            chunks: 48,
        },
        TraceEvent::SharedChunkEvicted {
            at: SimTime::from_secs(1.8),
            chunk: 0x9e37_79b9,
            tokens: 32,
            refs: 3,
            dropped: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_const_list() {
        let samples = sample_events();
        assert_eq!(samples.len(), VARIANTS.len());
        for (ev, name) in samples.iter().zip(VARIANTS) {
            assert_eq!(ev.variant_name(), *name);
        }
    }

    #[test]
    fn every_variant_round_trips() {
        for ev in sample_events() {
            let v = ev.to_value();
            let back = TraceEvent::from_value(&v).expect("round trip");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn unknown_variant_is_an_error() {
        let v = obj("NotAnEvent", &[("at", num(0.0))]);
        assert!(TraceEvent::from_value(&v).is_err());
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = obj("Suspended", &[("at", num(0.0)), ("conv", num(1.0))]);
        assert!(TraceEvent::from_value(&v).is_err());
    }
}
