//! Observability for the Pensieve serving stack: structured trace
//! events, a deterministic metrics registry, and exporters.
//!
//! The full reference — every event, every metric, every exporter, and a
//! worked Perfetto example — lives in `docs/OBSERVABILITY.md` at the
//! repository root (a unit test keeps it in sync with the code).
//!
//! Design constraints, in order:
//!
//! 1. **Zero hot-path cost when disabled.** Instrumented components hold
//!    an `Option<SharedRecorder>`; the `None` arm is a branch and
//!    nothing else. Enabling a trace must leave simulated clocks,
//!    schedules and benchmark numbers bit-identical, because recording
//!    is strictly passive.
//! 2. **Deterministic.** No wall clocks, no hash-order iteration:
//!    timestamps are [`pensieve_model::SimTime`], registries are
//!    `BTreeMap`s, exporters sort stably. The same run produces the
//!    same bytes.
//! 3. **No panics.** This crate is in the workspace analyzer's
//!    panic-freedom scope; every fallible path degrades (drops an
//!    event, returns an error) instead of unwinding mid-simulation.
//!
//! Layering: `obs` sits *below* the cache/sim/engine crates (it depends
//! only on `pensieve-model` and the serde shims), so any layer can
//! record without a dependency cycle. Ids are raw `u64`s for the same
//! reason.
//!
//! ```
//! use pensieve_obs::{Recorder, SharedRecorder, TraceEvent};
//! use pensieve_model::SimTime;
//!
//! let rec = SharedRecorder::new();
//! let handle = Some(rec.clone()); // what an instrumented component holds
//! handle.record(TraceEvent::Suspended {
//!     at: SimTime::from_secs(1.0),
//!     conv: 42,
//!     tokens: 128,
//! });
//! let jsonl = pensieve_obs::export::to_jsonl(&rec.events());
//! assert!(jsonl.contains("\"ev\":\"Suspended\""));
//! ```

pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use event::{sample_events, DropReason, RecoveryKind, StorageTier, SwapDir, TraceEvent};
pub use export::{chrome_trace, chrome_trace_string, parse_jsonl, to_jsonl, JsonlError};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{NullRecorder, Recorder, SharedRecorder};
pub use report::{PromotionRow, TraceReport, TurnAttribution};
