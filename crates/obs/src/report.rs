//! Post-processing of event logs: per-turn cache-hit attribution and
//! PCIe duplex/pipelining overlap statistics.
//!
//! This is the analysis behind `trace_report` (in `pensieve-bench`): it
//! answers "where did each admitted turn's history tokens come from?"
//! (GPU hit / revalidated / swapped in / recomputed — the §3 cache
//! effectiveness split, cf. Figure 14) and "how much did the two PCIe
//! directions and GPU compute actually overlap?" (the §4.2 duplex and
//! §4.3.3 pipelining claims).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use pensieve_model::{SimDuration, SimTime};

use crate::event::{SwapDir, TraceEvent};

/// Cache-source attribution for one admitted turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurnAttribution {
    /// Request id of the turn.
    pub request: u64,
    /// Conversation the turn belongs to.
    pub conv: u64,
    /// True when the conversation had prior state (a follow-up turn).
    pub resumed: bool,
    /// New prompt tokens in this turn.
    pub prompt_tokens: usize,
    /// History tokens served straight from GPU-resident chunks.
    pub gpu_hit_tokens: usize,
    /// History tokens revalidated from stale GPU copies (free).
    pub revalidate_tokens: usize,
    /// History tokens restored over PCIe from the CPU tier.
    pub swap_in_tokens: usize,
    /// History tokens recomputed because their cache was dropped.
    pub recompute_tokens: usize,
    /// Tokens credited to the shared system-prompt prefix.
    pub shared_tokens: usize,
}

impl TurnAttribution {
    /// All history tokens the cache was asked to produce for this turn.
    #[must_use]
    pub fn history_tokens(&self) -> usize {
        self.gpu_hit_tokens + self.revalidate_tokens + self.swap_in_tokens + self.recompute_tokens
    }

    /// Fraction of history tokens that avoided recomputation
    /// (GPU hit + revalidate + swap-in), or `None` with no history.
    #[must_use]
    pub fn saved_fraction(&self) -> Option<f64> {
        let total = self.history_tokens();
        if total == 0 {
            return None;
        }
        let saved = total - self.recompute_tokens;
        Some(saved as f64 / total as f64)
    }
}

/// One standby promotion observed in the log: a session whose primary
/// fail-stopped and whose replicated KV state was imported at its
/// standby replica.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionRow {
    /// Conversation promoted.
    pub conv: u64,
    /// The dead primary's index.
    pub from: usize,
    /// The promoted standby's index.
    pub to: usize,
    /// When the promotion completed.
    pub at: SimTime,
    /// Tokens restored from replicated state.
    pub replicated_tokens: usize,
    /// Replication lag at crash — the unreplicated suffix recomputed.
    pub lag_tokens: usize,
    /// Crash-to-promotion latency.
    pub latency: SimDuration,
}

/// Aggregated report over one event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Per-turn attribution rows, in admission order.
    pub turns: Vec<TurnAttribution>,
    /// Scheduler iterations observed.
    pub iterations: u64,
    /// Requests that ran to completion.
    pub requests_completed: u64,
    /// Suspension events (§4.3.5).
    pub suspensions: u64,
    /// Fault-recovery events.
    pub fault_recoveries: u64,
    /// Time between the first and last event.
    pub span: SimDuration,
    /// Total simulated time GPU compute was busy (iteration compute).
    pub compute_busy: SimDuration,
    /// Total simulated time the H2D direction carried swap-in DMAs.
    pub swap_in_busy: SimDuration,
    /// Total simulated time the D2H direction carried swap-out DMAs.
    pub swap_out_busy: SimDuration,
    /// Bytes moved host-to-device (swap-in).
    pub swap_in_bytes: u64,
    /// Bytes moved device-to-host (swap-out).
    pub swap_out_bytes: u64,
    /// Time both PCIe directions were simultaneously busy — the §4.2
    /// full-duplex win over a half-duplex schedule.
    pub duplex_overlap: SimDuration,
    /// Time GPU compute and swap-in DMA were simultaneously busy — the
    /// §4.3.3 layered-pipelining win over stop-and-copy.
    pub compute_swap_in_overlap: SimDuration,
    /// Replica fail-stops handled by the cluster router.
    pub replica_failures: u64,
    /// Standby promotions, in event order (the failover timeline).
    pub promotions: Vec<PromotionRow>,
    /// Replication flushes put on the wire (delivered or lost).
    pub replication_flushes: u64,
    /// Replication flushes lost in transit (re-streamed later).
    pub replication_lost_flushes: u64,
    /// Delta tokens delivered to standbys across all flushes.
    pub replicated_tokens: u64,
    /// KV bytes put on the wire by replication flushes (incl. lost).
    pub replicated_bytes: u64,
    /// Tokens demoted down the storage hierarchy, keyed by path
    /// (`"cpu->ssd"`, `"ssd->cold"`, `"cpu->cold"`), in tokens.
    pub demotion_tokens: BTreeMap<String, u64>,
    /// History tokens read back from each deep tier (`"ssd"`, `"cold"`)
    /// by committed restores.
    pub tier_read_tokens: BTreeMap<String, u64>,
    /// Session manifests serialized to the cold store.
    pub manifests_persisted: u64,
    /// Manifests truncated by injected torn-write faults.
    pub torn_manifests: u64,
    /// Sessions rehydrated from cold-store manifests.
    pub rehydrations: u64,
    /// Tokens admitted back into caches by rehydration.
    pub rehydrated_tokens: u64,
}

/// Sums, merges and intersects `(start, end)` second intervals.
fn merged(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total(iv: &[(f64, f64)]) -> f64 {
    // `+ 0.0` normalises the empty sum: f64's additive identity is -0.0,
    // which would render as "-0.000s".
    iv.iter().map(|(s, e)| e - s).sum::<f64>() + 0.0
}

/// Total length of the intersection of two merged interval lists.
fn overlap(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

impl TraceReport {
    /// Builds the report from an event log (any ordering; swap pairs are
    /// matched FIFO per direction, as they were recorded).
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut report = Self::default();
        let mut first: Option<SimTime> = None;
        let mut last: Option<SimTime> = None;
        let mut compute_iv: Vec<(f64, f64)> = Vec::new();
        let mut in_iv: Vec<(f64, f64)> = Vec::new();
        let mut out_iv: Vec<(f64, f64)> = Vec::new();
        let mut in_starts: VecDeque<(f64, u64)> = VecDeque::new();
        let mut out_starts: VecDeque<(f64, u64)> = VecDeque::new();
        for ev in events {
            let at = ev.at();
            first = Some(first.map_or(at, |f| if at < f { at } else { f }));
            last = Some(last.map_or(at, |l| if at > l { at } else { l }));
            match ev {
                TraceEvent::IterationEnd {
                    at, compute, stall, ..
                } => {
                    report.iterations += 1;
                    // Time advances queue_delay, then compute, then stall:
                    // compute occupies [at - stall - compute, at - stall].
                    let end = at.as_secs() - stall.as_secs();
                    compute_iv.push((end - compute.as_secs(), end));
                }
                TraceEvent::Admitted {
                    request,
                    conv,
                    resumed,
                    prompt_tokens,
                    shared_tokens,
                    gpu_hit_tokens,
                    revalidate_tokens,
                    swap_in_tokens,
                    recompute_tokens,
                    ..
                } => report.turns.push(TurnAttribution {
                    request: *request,
                    conv: *conv,
                    resumed: *resumed,
                    prompt_tokens: *prompt_tokens,
                    gpu_hit_tokens: *gpu_hit_tokens,
                    revalidate_tokens: *revalidate_tokens,
                    swap_in_tokens: *swap_in_tokens,
                    recompute_tokens: *recompute_tokens,
                    shared_tokens: *shared_tokens,
                }),
                TraceEvent::SwapStart { at, dir, bytes } => match dir {
                    SwapDir::In => in_starts.push_back((at.as_secs(), *bytes)),
                    SwapDir::Out => out_starts.push_back((at.as_secs(), *bytes)),
                },
                TraceEvent::SwapEnd { at, dir, .. } => {
                    let (starts, iv, bytes_acc) = match dir {
                        SwapDir::In => (&mut in_starts, &mut in_iv, &mut report.swap_in_bytes),
                        SwapDir::Out => (&mut out_starts, &mut out_iv, &mut report.swap_out_bytes),
                    };
                    if let Some((start, bytes)) = starts.pop_front() {
                        iv.push((start, at.as_secs()));
                        *bytes_acc += bytes;
                    }
                }
                TraceEvent::Suspended { .. } => report.suspensions += 1,
                TraceEvent::FaultRecovery { .. } => report.fault_recoveries += 1,
                TraceEvent::RequestCompleted { .. } => report.requests_completed += 1,
                TraceEvent::ReplicaFailed { .. } => report.replica_failures += 1,
                TraceEvent::ReplicationFlush {
                    tokens,
                    bytes,
                    lost,
                    ..
                } => {
                    report.replication_flushes += 1;
                    report.replicated_bytes += bytes;
                    if *lost {
                        report.replication_lost_flushes += 1;
                    } else {
                        report.replicated_tokens += *tokens as u64;
                    }
                }
                TraceEvent::StandbyPromoted {
                    at,
                    conv,
                    from,
                    to,
                    replicated_tokens,
                    lag_tokens,
                    latency,
                } => report.promotions.push(PromotionRow {
                    conv: *conv,
                    from: *from,
                    to: *to,
                    at: *at,
                    replicated_tokens: *replicated_tokens,
                    lag_tokens: *lag_tokens,
                    latency: *latency,
                }),
                TraceEvent::ChunkDemoted {
                    tokens, from, to, ..
                } => {
                    let path = format!("{}->{}", from.as_str(), to.as_str());
                    *report.demotion_tokens.entry(path).or_insert(0) += *tokens as u64;
                }
                TraceEvent::TierReadCommitted { tokens, tier, .. } => {
                    *report
                        .tier_read_tokens
                        .entry(tier.as_str().to_owned())
                        .or_insert(0) += *tokens as u64;
                }
                TraceEvent::ManifestPersisted { torn, .. } => {
                    report.manifests_persisted += 1;
                    if *torn {
                        report.torn_manifests += 1;
                    }
                }
                TraceEvent::SessionRehydrated { tokens, .. } => {
                    report.rehydrations += 1;
                    report.rehydrated_tokens += *tokens as u64;
                }
                _ => {}
            }
        }
        if let (Some(f), Some(l)) = (first, last) {
            report.span = l.saturating_duration_since(f);
        }
        let compute_iv = merged(compute_iv);
        let in_iv = merged(in_iv);
        let out_iv = merged(out_iv);
        report.compute_busy = SimDuration::from_secs(total(&compute_iv));
        report.swap_in_busy = SimDuration::from_secs(total(&in_iv));
        report.swap_out_busy = SimDuration::from_secs(total(&out_iv));
        report.duplex_overlap = SimDuration::from_secs(overlap(&in_iv, &out_iv));
        report.compute_swap_in_overlap = SimDuration::from_secs(overlap(&compute_iv, &in_iv));
        report
    }

    /// Token totals across all turns:
    /// `(history, gpu_hit, revalidate, swap_in, recompute, shared)`.
    #[must_use]
    pub fn token_totals(&self) -> (usize, usize, usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0, 0, 0);
        for turn in &self.turns {
            t.0 += turn.history_tokens();
            t.1 += turn.gpu_hit_tokens;
            t.2 += turn.revalidate_tokens;
            t.3 += turn.swap_in_tokens;
            t.4 += turn.recompute_tokens;
            t.5 += turn.shared_tokens;
        }
        t
    }

    /// Renders the report as a plain-text summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = |part: f64, whole: f64| {
            if whole > 0.0 {
                100.0 * part / whole
            } else {
                0.0
            }
        };
        let (history, gpu, reval, swap, recompute, shared) = self.token_totals();
        let h = history as f64;
        let _ = writeln!(out, "== trace report ==");
        let _ = writeln!(
            out,
            "span {:.3}s  iterations {}  turns {}  completed {}  suspensions {}  fault-recoveries {}",
            self.span.as_secs(),
            self.iterations,
            self.turns.len(),
            self.requests_completed,
            self.suspensions,
            self.fault_recoveries,
        );
        let _ = writeln!(
            out,
            "\n-- per-turn cache-hit attribution (history tokens) --"
        );
        let _ = writeln!(
            out,
            "history {history}  gpu-hit {gpu} ({:.1}%)  revalidated {reval} ({:.1}%)  swapped-in {swap} ({:.1}%)  recomputed {recompute} ({:.1}%)  shared-prefix credit {shared}",
            pct(gpu as f64, h),
            pct(reval as f64, h),
            pct(swap as f64, h),
            pct(recompute as f64, h),
        );
        let resumed = self.turns.iter().filter(|t| t.resumed).count();
        let _ = writeln!(
            out,
            "resumed turns {resumed}/{}  saved (non-recompute) {:.1}%",
            self.turns.len(),
            pct(h - recompute as f64, h),
        );
        let _ = writeln!(out, "\n-- PCIe / compute overlap --");
        let _ = writeln!(
            out,
            "swap-in busy {:.3}s ({} bytes)  swap-out busy {:.3}s ({} bytes)",
            self.swap_in_busy.as_secs(),
            self.swap_in_bytes,
            self.swap_out_busy.as_secs(),
            self.swap_out_bytes,
        );
        let _ = writeln!(
            out,
            "duplex overlap {:.3}s ({:.1}% of swap-in busy) — time both PCIe directions ran at once",
            self.duplex_overlap.as_secs(),
            pct(self.duplex_overlap.as_secs(), self.swap_in_busy.as_secs()),
        );
        let _ = writeln!(
            out,
            "compute busy {:.3}s; compute/swap-in overlap {:.3}s ({:.1}% of swap-in hidden behind compute)",
            self.compute_busy.as_secs(),
            self.compute_swap_in_overlap.as_secs(),
            pct(
                self.compute_swap_in_overlap.as_secs(),
                self.swap_in_busy.as_secs()
            ),
        );
        if !self.demotion_tokens.is_empty()
            || !self.tier_read_tokens.is_empty()
            || self.manifests_persisted > 0
            || self.rehydrations > 0
        {
            let _ = writeln!(out, "\n-- storage tiers --");
            for (path, tokens) in &self.demotion_tokens {
                let _ = writeln!(out, "demoted {path} {tokens} tokens");
            }
            for (tier, tokens) in &self.tier_read_tokens {
                let _ = writeln!(out, "read back from {tier} {tokens} tokens");
            }
            let _ = writeln!(
                out,
                "manifests persisted {} ({} torn)  rehydrations {} ({} tokens)",
                self.manifests_persisted,
                self.torn_manifests,
                self.rehydrations,
                self.rehydrated_tokens,
            );
        }
        if self.replica_failures > 0 || self.replication_flushes > 0 || !self.promotions.is_empty()
        {
            let _ = writeln!(out, "\n-- failover --");
            let _ = writeln!(
                out,
                "replica failures {}  replication flushes {} ({} lost)  replicated tokens {} ({} bytes on wire)",
                self.replica_failures,
                self.replication_flushes,
                self.replication_lost_flushes,
                self.replicated_tokens,
                self.replicated_bytes,
            );
            for p in &self.promotions {
                let _ = writeln!(
                    out,
                    "promotion conv {} replica {}->{} at {:.3}s: replicated {} tokens, lag at crash {} tokens (recomputed), latency {:.3}s",
                    p.conv,
                    p.from,
                    p.to,
                    p.at.as_secs(),
                    p.replicated_tokens,
                    p.lag_tokens,
                    p.latency.as_secs(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn interval_helpers() {
        let m = merged(vec![(2.0, 3.0), (0.0, 1.0), (0.5, 1.5), (3.0, 3.0)]);
        assert_eq!(m, vec![(0.0, 1.5), (2.0, 3.0)]);
        assert!((total(&m) - 2.5).abs() < 1e-12);
        let o = overlap(&[(0.0, 2.0), (3.0, 4.0)], &[(1.0, 3.5)]);
        assert!((o - 1.5).abs() < 1e-12, "overlap {o}");
    }

    #[test]
    fn attribution_and_overlap_from_events() {
        let events = vec![
            TraceEvent::Admitted {
                at: t(0.0),
                iteration: 0,
                request: 1,
                conv: 7,
                resumed: true,
                prompt_tokens: 10,
                tail_tokens: 0,
                shared_tokens: 4,
                gpu_hit_tokens: 60,
                revalidate_tokens: 10,
                swap_in_tokens: 20,
                recompute_tokens: 10,
            },
            TraceEvent::SwapStart {
                at: t(0.0),
                dir: SwapDir::In,
                bytes: 100,
            },
            TraceEvent::SwapEnd {
                at: t(1.0),
                dir: SwapDir::In,
                bytes: 100,
            },
            TraceEvent::SwapStart {
                at: t(0.5),
                dir: SwapDir::Out,
                bytes: 50,
            },
            TraceEvent::SwapEnd {
                at: t(1.5),
                dir: SwapDir::Out,
                bytes: 50,
            },
            TraceEvent::IterationEnd {
                at: t(1.0),
                iteration: 0,
                queue_delay: SimDuration::from_secs(0.2),
                compute: SimDuration::from_secs(0.8),
                stall: SimDuration::ZERO,
            },
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.turns.len(), 1);
        assert_eq!(r.turns[0].history_tokens(), 100);
        let saved = r.turns[0].saved_fraction().expect("has history");
        assert!((saved - 0.9).abs() < 1e-12);
        assert_eq!(r.swap_in_bytes, 100);
        assert_eq!(r.swap_out_bytes, 50);
        // Swap-in [0,1] vs swap-out [0.5,1.5] overlap 0.5s.
        assert!((r.duplex_overlap.as_secs() - 0.5).abs() < 1e-9);
        // Compute [0.2,1.0] vs swap-in [0,1] overlap 0.8s.
        assert!((r.compute_swap_in_overlap.as_secs() - 0.8).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("gpu-hit 60 (60.0%)"), "{text}");
        assert!(text.contains("duplex overlap 0.500s"), "{text}");
    }

    #[test]
    fn failover_section_appears_only_with_failover_events() {
        let calm = TraceReport::from_events(&[]);
        assert!(!calm.render().contains("-- failover --"));
        let events = vec![
            TraceEvent::ReplicationFlush {
                at: t(0.5),
                conv: 3,
                from: 0,
                to: 1,
                tokens: 64,
                bytes: 4096,
                lost: false,
            },
            TraceEvent::ReplicationFlush {
                at: t(0.6),
                conv: 3,
                from: 0,
                to: 1,
                tokens: 32,
                bytes: 2048,
                lost: true,
            },
            TraceEvent::ReplicaFailed {
                at: t(1.0),
                replica: 0,
                requeued: 1,
            },
            TraceEvent::StandbyPromoted {
                at: t(1.002),
                conv: 3,
                from: 0,
                to: 1,
                replicated_tokens: 64,
                lag_tokens: 32,
                latency: SimDuration::from_millis(2.0),
            },
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.replica_failures, 1);
        assert_eq!(r.replication_flushes, 2);
        assert_eq!(r.replication_lost_flushes, 1);
        assert_eq!(r.replicated_tokens, 64);
        assert_eq!(r.replicated_bytes, 6144);
        assert_eq!(r.promotions.len(), 1);
        assert_eq!(r.promotions[0].lag_tokens, 32);
        let text = r.render();
        assert!(text.contains("-- failover --"), "{text}");
        assert!(text.contains("promotion conv 3 replica 0->1"), "{text}");
        assert!(text.contains("lag at crash 32 tokens"), "{text}");
    }

    #[test]
    fn storage_tier_section_attributes_demotions_and_rehydrations() {
        use crate::event::StorageTier;
        let calm = TraceReport::from_events(&[]);
        assert!(!calm.render().contains("-- storage tiers --"));
        let events = vec![
            TraceEvent::ChunkDemoted {
                at: t(0.1),
                conv: 1,
                chunk: 0,
                tokens: 32,
                from: StorageTier::Cpu,
                to: StorageTier::Ssd,
            },
            TraceEvent::ChunkDemoted {
                at: t(0.2),
                conv: 1,
                chunk: 1,
                tokens: 32,
                from: StorageTier::Ssd,
                to: StorageTier::Cold,
            },
            TraceEvent::TierReadCommitted {
                at: t(0.5),
                conv: 1,
                tokens: 64,
                tier: StorageTier::Cold,
            },
            TraceEvent::ManifestPersisted {
                at: t(0.6),
                conv: 1,
                tokens: 64,
                bytes: 48,
                torn: true,
            },
            TraceEvent::SessionRehydrated {
                at: t(0.9),
                conv: 1,
                tokens: 64,
                replica: 0,
            },
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.demotion_tokens.get("cpu->ssd"), Some(&32));
        assert_eq!(r.demotion_tokens.get("ssd->cold"), Some(&32));
        assert_eq!(r.tier_read_tokens.get("cold"), Some(&64));
        assert_eq!(r.manifests_persisted, 1);
        assert_eq!(r.torn_manifests, 1);
        assert_eq!(r.rehydrations, 1);
        assert_eq!(r.rehydrated_tokens, 64);
        let text = r.render();
        assert!(text.contains("-- storage tiers --"), "{text}");
        assert!(text.contains("demoted cpu->ssd 32 tokens"), "{text}");
        assert!(text.contains("read back from cold 64 tokens"), "{text}");
        assert!(
            text.contains("manifests persisted 1 (1 torn)  rehydrations 1 (64 tokens)"),
            "{text}"
        );
    }

    #[test]
    fn empty_log_renders_without_dividing_by_zero() {
        let r = TraceReport::from_events(&[]);
        assert_eq!(r.span, SimDuration::ZERO);
        let text = r.render();
        assert!(text.contains("turns 0"), "{text}");
    }
}
