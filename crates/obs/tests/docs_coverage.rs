//! Keeps `docs/OBSERVABILITY.md` in sync with the code: every trace
//! event variant and every canonical metric name must be documented.
//! Adding a variant or metric without documenting it fails this test.

use pensieve_obs::event::VARIANTS;
use pensieve_obs::metrics::names;

fn doc_text() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("docs")
        .join("OBSERVABILITY.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("docs/OBSERVABILITY.md must exist ({e})"))
}

#[test]
fn every_event_variant_is_documented() {
    let doc = doc_text();
    let missing: Vec<&str> = VARIANTS
        .iter()
        .filter(|v| !doc.contains(&format!("`{v}`")))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "docs/OBSERVABILITY.md is missing event variants: {missing:?}"
    );
}

#[test]
fn every_metric_is_documented() {
    let doc = doc_text();
    let missing: Vec<&str> = names::ALL
        .iter()
        .filter(|m| !doc.contains(&format!("`{m}`")))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "docs/OBSERVABILITY.md is missing metrics: {missing:?}"
    );
}
