//! Property test: any interleaving of trace events round-trips through
//! the JSONL exporter byte-for-byte in order and value.
//!
//! Numbers ride over the wire as JSON `f64`s, so integer fields are
//! generated within the 2^53 exactly-representable range — the same
//! contract the instrumented code obeys (token counts, chunk indices and
//! ids never approach it).

use pensieve_model::{SimDuration, SimTime};
use pensieve_obs::{parse_jsonl, to_jsonl, DropReason, RecoveryKind, SwapDir, TraceEvent};
use proptest::prelude::*;

/// Samples one event of any variant from the raw entropy in `w`.
fn arbitrary_event(variant: usize, w: &[u64; 6], t: f64) -> TraceEvent {
    let at = SimTime::from_secs(t);
    let u = |i: usize| w[i] % (1 << 53);
    let n = |i: usize| (w[i] % 100_000) as usize;
    let dur = |i: usize| SimDuration::from_secs((w[i] % 10_000) as f64 * 1e-4);
    match variant % 16 {
        0 => TraceEvent::IterationStart {
            at,
            iteration: u(0),
            running: n(1),
            waiting: n(2),
        },
        1 => TraceEvent::BatchComposed {
            at,
            iteration: u(0),
            prefill_seqs: n(1),
            decode_seqs: n(2),
            prefill_tokens: n(3),
            decode_tokens: n(4),
        },
        2 => TraceEvent::IterationEnd {
            at,
            iteration: u(0),
            queue_delay: dur(1),
            compute: dur(2),
            stall: dur(3),
        },
        3 => TraceEvent::Admitted {
            at,
            iteration: u(0),
            request: u(1),
            conv: u(2),
            resumed: w[3].is_multiple_of(2),
            prompt_tokens: n(3),
            tail_tokens: n(4),
            shared_tokens: n(5),
            gpu_hit_tokens: n(0),
            revalidate_tokens: n(1),
            swap_in_tokens: n(2),
            recompute_tokens: n(4),
        },
        4 => TraceEvent::SwapStart {
            at,
            dir: if w[0].is_multiple_of(2) {
                SwapDir::In
            } else {
                SwapDir::Out
            },
            bytes: u(1),
        },
        5 => TraceEvent::SwapEnd {
            at,
            dir: if w[0].is_multiple_of(2) {
                SwapDir::In
            } else {
                SwapDir::Out
            },
            bytes: u(1),
        },
        6 => TraceEvent::ChunkEvicted {
            at,
            conv: u(0),
            chunk: n(1),
            tokens: n(2),
            dropped: w[3].is_multiple_of(2),
        },
        7 => TraceEvent::ChunkDropped {
            at,
            conv: u(0),
            chunk: n(1),
            tokens: n(2),
            reason: match w[3] % 4 {
                0 => DropReason::CpuPressure,
                1 => DropReason::HostLoss,
                2 => DropReason::HostCorruption,
                _ => DropReason::SwapInFault,
            },
        },
        8 => TraceEvent::Revalidated {
            at,
            conv: u(0),
            tokens: n(1),
        },
        9 => TraceEvent::SwapInCommitted {
            at,
            conv: u(0),
            tokens: n(1),
        },
        10 => TraceEvent::RecomputeCommitted {
            at,
            conv: u(0),
            tokens: n(1),
        },
        11 => TraceEvent::Suspended {
            at,
            conv: u(0),
            tokens: n(1),
        },
        12 => TraceEvent::FaultRecovery {
            at,
            conv: if w[0].is_multiple_of(3) {
                None
            } else {
                Some(u(1))
            },
            kind: match w[2] % 4 {
                0 => RecoveryKind::SwapInRetry,
                1 => RecoveryKind::RecomputeFallback,
                2 => RecoveryKind::GpuAllocFault,
                _ => RecoveryKind::WorkerStall,
            },
            tokens: n(3),
        },
        13 => TraceEvent::RequestCompleted {
            at,
            request: u(0),
            conv: u(1),
            arrival: SimTime::from_secs(t * 0.5),
            first_token: SimTime::from_secs(t * 0.75),
            output_tokens: n(2),
            prefill_tokens: n(3),
            cached_tokens: n(4),
        },
        14 => TraceEvent::PipelinedSwapIn {
            at,
            bytes: u(0),
            compute: dur(1),
            total: dur(2),
        },
        _ => TraceEvent::TpPass {
            at,
            pass: u(0),
            conv: u(1),
            query_tokens: n(2),
            shards: n(3) % 8 + 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any mix of variants, timestamps and payloads survives
    /// serialize → parse with order and equality preserved.
    #[test]
    fn any_interleaving_round_trips(
        spec in prop::collection::vec(
            (
                0usize..16,
                (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
                (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
                0.0f64..100_000.0,
            ),
            0..40,
        ),
    ) {
        let events: Vec<TraceEvent> = spec
            .iter()
            .map(|(variant, (a, b, c), (d, e, f), t)| {
                arbitrary_event(*variant, &[*a, *b, *c, *d, *e, *f], *t)
            })
            .collect();
        let text = to_jsonl(&events);
        let back = parse_jsonl(&text).expect("round trip parses");
        prop_assert_eq!(back, events);
    }
}
