//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The exporter must be byte-stable: Perfetto/`chrome://tracing` users
//! diff traces across runs, and the docs embed excerpts of this exact
//! output. Regenerate the golden file after an intentional format change
//! with:
//!
//! ```text
//! cargo test -p pensieve-obs --test chrome_golden -- --ignored regenerate
//! ```

use pensieve_obs::{chrome_trace, chrome_trace_string, sample_events};
use serde::Value;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("chrome_trace.json")
}

#[test]
fn chrome_trace_matches_golden_file() {
    let rendered = chrome_trace_string(&sample_events());
    let golden = std::fs::read_to_string(golden_path()).expect("golden file exists");
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "chrome_trace output drifted from tests/golden/chrome_trace.json; \
         if intentional, regenerate with \
         `cargo test -p pensieve-obs --test chrome_golden -- --ignored regenerate`"
    );
}

#[test]
fn golden_file_is_valid_chrome_json() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file exists");
    let doc: Value = serde_json::from_str(&golden).expect("golden parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph field");
        assert!(
            ["X", "M", "i", "C"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        assert!(ev.get("pid").is_some(), "missing pid in {ev:?}");
        if ph != "M" {
            assert!(ev.get("ts").is_some(), "missing ts in {ev:?}");
        }
    }
}

/// Timestamps ascend (stable sort by ts), so Perfetto renders tracks
/// without re-sorting surprises.
#[test]
fn golden_trace_events_are_time_ordered() {
    let doc = chrome_trace(&sample_events());
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let ts: Vec<f64> = events
        .iter()
        .filter_map(|e| e.get("ts").and_then(Value::as_f64))
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
}

/// Not a test: rewrites the golden file from the current exporter.
#[test]
#[ignore = "run explicitly to regenerate the golden file"]
fn regenerate() {
    let rendered = chrome_trace_string(&sample_events());
    std::fs::write(golden_path(), rendered).expect("write golden");
}
