//! Placement policies: where a new turn lands among the replicas.
//!
//! The interesting one is [`RouterPolicy::CacheAware`] — Pensieve's
//! stateful serving makes placement matter, because only the replica that
//! served a conversation before holds its KV state. Pure load balancing
//! (round-robin, least-loaded) scatters turns and forfeits the cache;
//! pure affinity overloads hot replicas. Cache-aware placement scores
//! both: hit-tokens saved minus a load-imbalance penalty.

use std::fmt;

/// Which placement policy the router runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cyclic placement over alive replicas, ignoring state and load.
    RoundRobin,
    /// Place on the alive replica with the smallest queue depth
    /// (ties: lowest index).
    LeastLoaded,
    /// Session-affinity placement: score each alive replica by cached
    /// hit tokens for the session minus a penalty proportional to how
    /// far its queue depth exceeds the cluster minimum; place on the
    /// best score (ties: lowest index). Saturated affine replicas
    /// trigger conversation migration instead of blind queueing.
    CacheAware,
}

impl RouterPolicy {
    /// Parses a CLI-style policy name (`round_robin`, `least_loaded`,
    /// `cache_aware`). Returns `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<RouterPolicy> {
        match s {
            "round_robin" => Some(RouterPolicy::RoundRobin),
            "least_loaded" => Some(RouterPolicy::LeastLoaded),
            "cache_aware" => Some(RouterPolicy::CacheAware),
            _ => None,
        }
    }

    /// The canonical CLI name, inverse of [`RouterPolicy::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round_robin",
            RouterPolicy::LeastLoaded => "least_loaded",
            RouterPolicy::CacheAware => "cache_aware",
        }
    }
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_name() {
        for p in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::CacheAware,
        ] {
            assert_eq!(RouterPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RouterPolicy::parse("random"), None);
    }
}
