//! Multi-replica cluster serving for the Pensieve reproduction.
//!
//! The paper evaluates Pensieve on a single serving node; this crate
//! extends the simulation to a fleet. Stateful serving changes the
//! cluster story in a way stateless serving never faced: a conversation's
//! KV state lives on *one* replica, so placement is no longer
//! interchangeable — sending a turn anywhere else forfeits the cache the
//! whole system exists to keep. The pieces:
//!
//! * [`RouterPolicy`] — `round_robin` and `least_loaded` baselines, plus
//!   `cache_aware` session-affinity placement that weighs cached
//!   hit-tokens against load imbalance.
//! * [`Router`] — N replicas behind one [`ServingBackend`] facade,
//!   driven only through that trait. Includes conversation migration
//!   over a simulated inter-node link (with dropped-token recomputation
//!   for chunks lost in transit) and replica fail-stop recovery.
//! * [`ReplicationConfig`] — streaming KV replication to a standby
//!   replica (DéjàVu-style): async mode bounds replication lag, sync
//!   mode adds a turn-commit barrier, and on fail-stop the standby is
//!   promoted so only the unreplicated suffix is recomputed. Chaos
//!   schedules ([`pensieve_sim::FaultSchedule`]) drive seeded crash and
//!   link-partition injections.
//! * [`RouterConfig`] — saturation/hysteresis and link-shape knobs.
//!
//! The whole cluster is deterministic: identical inputs produce an
//! identical event trace, which `results/BENCH_cluster.json` pins with a
//! trace hash.
//!
//! ```
//! use pensieve_cluster::{Router, RouterConfig, RouterPolicy};
//! use pensieve_core::{EngineConfig, ServingBackend, SimServingEngine};
//! use pensieve_model::{HardwareSpec, ModelConfig};
//!
//! let replicas: Vec<_> = (0..4)
//!     .map(|_| {
//!         SimServingEngine::builder(
//!             EngineConfig::pensieve(),
//!             ModelConfig::opt_13b(),
//!             HardwareSpec::azure_nc_a100(1),
//!         )
//!         .build()
//!     })
//!     .collect();
//! let router = Router::new(replicas, RouterPolicy::CacheAware, RouterConfig::default());
//! assert!(router.is_idle());
//! ```

pub mod policy;
pub mod replication;
pub mod router;

pub use policy::RouterPolicy;
pub use replication::{ReplicationConfig, ReplicationMode};
pub use router::{Router, RouterConfig};

// Re-exported so downstream code (benches, tests) can name the trait the
// router both implements and consumes without an extra dependency edge.
pub use pensieve_core::ServingBackend;

// Re-exported because `Router::pool` takes it — facade users must be
// able to name the worker pool without depending on the shim directly.
pub use crossbeam::pool::Pool;
