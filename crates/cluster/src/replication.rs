//! Streaming KV replication to a standby replica.
//!
//! Pensieve's single-node recovery story is recompute-from-raw-tokens:
//! when KV state is lost, the dropped-token pipeline rebuilds it. That is
//! correct but pays the full prefill cost of the lost context. DéjàVu
//! showed the alternative for stateful serving: continuously stream
//! newly committed KV deltas to a standby node, so a fail-stop loses at
//! most the *unreplicated suffix* — everything older is already safe and
//! imports through the same session-export path migration uses.
//!
//! This module owns the replication bookkeeping; the [`Router`]
//! (`router.rs`) drives it:
//!
//! * After every scheduling step the router drains each replica's commit
//!   log ([`ServingBackend::take_committed_kv`]) and hands the deltas to
//!   [`Replicator::observe`]. Deltas beyond the flush threshold stream
//!   to the session's standby over a per-source [`NodeLink`].
//! * [`ReplicationMode::Async`] bounds the replication lag: at most
//!   `flush_threshold_tokens` committed-but-unflushed tokens per session
//!   (plus whatever is still on the wire), never delaying a response.
//! * [`ReplicationMode::Sync`] adds a turn-commit barrier: a response is
//!   not reported finished until its turn's KV delta is durable on the
//!   standby, trading tail latency for a zero-loss failover.
//! * On fail-stop the router calls [`Replicator::take_failover`]: the
//!   delivered chunks materialize on the standby via `import_session`,
//!   and only the unreplicated suffix flows through dropped-chunk
//!   recomputation — failover and migration share one code path.
//!
//! Everything is deterministic: the per-source links derive their loss
//! and partition seeds from the configured link seed and the replica
//! index, so a fleet-wide run has a stable trace hash.
//!
//! [`Router`]: crate::Router
//! [`ServingBackend::take_committed_kv`]: pensieve_core::ServingBackend::take_committed_kv

use std::collections::BTreeMap;

use pensieve_kvcache::SessionId;
use pensieve_model::SimTime;
use pensieve_obs::{Recorder as _, SharedRecorder, TraceEvent};
use pensieve_sim::{NodeLink, NodeLinkSpec};

/// Whether and how committed KV streams to a standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// No replication: failover recomputes everything from raw tokens.
    Disabled,
    /// Stream deltas in the background; replication lag is bounded by
    /// the flush threshold but a crash loses the unreplicated suffix.
    Async,
    /// Turn-commit barrier: a turn is reported finished only once its KV
    /// delta is delivered to the standby.
    Sync,
}

/// Replication knobs. The default is `Disabled` so existing cluster
/// configurations (and their pinned benchmark traces) are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationConfig {
    /// Replication mode.
    pub mode: ReplicationMode,
    /// Async mode flushes a session once at least this many committed
    /// tokens are pending — the bounded replication lag `L`. Sync mode
    /// flushes every pending delta at each pump regardless.
    pub flush_threshold_tokens: usize,
    /// Shape of each source replica's replication link. Per-replica
    /// links derive decorrelated seeds from this spec's seed.
    pub link: NodeLinkSpec,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            mode: ReplicationMode::Disabled,
            flush_threshold_tokens: 64,
            link: NodeLinkSpec::datacenter_25g(),
        }
    }
}

/// Per-session replication state.
#[derive(Debug, Clone)]
pub(crate) struct SessionRepl {
    /// Replica whose commits this state mirrors.
    pub(crate) primary: usize,
    /// Replica holding the replicated copy.
    pub(crate) standby: usize,
    /// Delivered deltas in stream order: `(tokens, usable_at)`. A chunk
    /// streamed before a crash still delivers (it was on the wire);
    /// promotion readiness waits for the last delivery.
    pub(crate) chunks: Vec<(usize, SimTime)>,
    /// Tokens safely delivered to the standby (sum over `chunks`).
    pub(crate) replicated: usize,
    /// Tokens committed at the primary (latest commit-log total).
    pub(crate) committed: usize,
}

/// Replication bookkeeping: per-source links, per-session lag state, and
/// fleet-wide counters. Crate-private; the router is the only driver.
#[derive(Debug)]
pub(crate) struct Replicator {
    cfg: ReplicationConfig,
    /// One link per *source* replica (its NIC toward the standby), so a
    /// chatty replica cannot serialize everyone else's flushes.
    links: Vec<NodeLink>,
    sessions: BTreeMap<SessionId, SessionRepl>,
    replicated_tokens: u64,
    standby_bytes: u64,
    lost_flushes: u64,
}

impl Replicator {
    pub(crate) fn new(cfg: ReplicationConfig, replicas: usize) -> Self {
        let links = (0..replicas)
            .map(|i| {
                // Decorrelate the per-source streams: same golden-ratio
                // seed derivation the rest of the workspace uses.
                let stride = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut spec = cfg.link.clone();
                spec.seed = spec.seed.wrapping_add(stride);
                if let Some(p) = &mut spec.partition {
                    p.seed = p.seed.wrapping_add(stride);
                }
                NodeLink::new(spec)
            })
            .collect();
        Replicator {
            cfg,
            links,
            sessions: BTreeMap::new(),
            replicated_tokens: 0,
            standby_bytes: 0,
            lost_flushes: 0,
        }
    }

    pub(crate) fn mode(&self) -> ReplicationMode {
        self.cfg.mode
    }

    /// Records a commit-log observation: `committed` is the session's new
    /// total committed context at `primary`, mirrored toward `standby`.
    ///
    /// A binding change (the session migrated, or its standby died and a
    /// new one was elected) invalidates the replicated copy — the old
    /// standby's chunks are unreachable from the new pair — so the state
    /// resets and the whole context re-replicates from scratch.
    pub(crate) fn observe(
        &mut self,
        conv: SessionId,
        primary: usize,
        standby: usize,
        committed: usize,
    ) {
        let e = self.sessions.entry(conv).or_insert(SessionRepl {
            primary,
            standby,
            chunks: Vec::new(),
            replicated: 0,
            committed: 0,
        });
        if e.primary != primary || e.standby != standby {
            e.primary = primary;
            e.standby = standby;
            e.chunks.clear();
            e.replicated = 0;
        }
        e.committed = e.committed.max(committed);
    }

    /// Sessions bound to `primary` whose pending delta has reached
    /// `threshold` tokens, in deterministic (session id) order.
    pub(crate) fn due_flushes(&self, primary: usize, threshold: usize) -> Vec<SessionId> {
        self.sessions
            .iter()
            .filter(|(_, s)| {
                s.primary == primary && s.committed.saturating_sub(s.replicated) >= threshold
            })
            .map(|(&conv, _)| conv)
            .collect()
    }

    /// Streams `conv`'s pending delta (everything committed but not yet
    /// replicated) to its standby as one chunk, retrying a lost chunk up
    /// to `attempts` times. Returns the delivery time, or `None` when
    /// nothing was pending or every attempt was lost (the tokens stay
    /// pending and are retried at the next pump).
    pub(crate) fn flush(
        &mut self,
        conv: SessionId,
        at: SimTime,
        bytes_per_token: usize,
        attempts: usize,
        rec: &Option<SharedRecorder>,
    ) -> Option<SimTime> {
        let s = self.sessions.get_mut(&conv)?;
        let pending = s.committed.saturating_sub(s.replicated);
        if pending == 0 {
            return None;
        }
        let link = self.links.get_mut(s.primary)?;
        let bytes = pending * bytes_per_token;
        for _ in 0..attempts.max(1) {
            match link.stream_chunk(at, bytes) {
                Ok((_start, end)) => {
                    s.chunks.push((pending, end));
                    s.replicated += pending;
                    self.replicated_tokens += pending as u64;
                    self.standby_bytes += bytes as u64;
                    rec.record(TraceEvent::ReplicationFlush {
                        at: end,
                        conv: conv.0,
                        from: s.primary,
                        to: s.standby,
                        tokens: pending,
                        bytes: bytes as u64,
                        lost: false,
                    });
                    return Some(end);
                }
                Err(lost) => {
                    // Wire time was spent but nothing landed; the delta
                    // stays pending for the retry (here or next pump).
                    self.lost_flushes += 1;
                    self.standby_bytes += bytes as u64;
                    rec.record(TraceEvent::ReplicationFlush {
                        at: lost.completes,
                        conv: conv.0,
                        from: s.primary,
                        to: s.standby,
                        tokens: pending,
                        bytes: bytes as u64,
                        lost: true,
                    });
                }
            }
        }
        None
    }

    /// Removes and returns the replication state of every session whose
    /// primary just failed (the promotion set). Sessions whose *standby*
    /// was the failed replica lose their replicated copy instead: their
    /// state resets so the next pump re-replicates toward a new standby.
    pub(crate) fn take_failover(&mut self, failed: usize) -> Vec<(SessionId, SessionRepl)> {
        let promoted: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.primary == failed)
            .map(|(&conv, _)| conv)
            .collect();
        let mut out = Vec::with_capacity(promoted.len());
        for conv in promoted {
            if let Some(s) = self.sessions.remove(&conv) {
                out.push((conv, s));
            }
        }
        for s in self.sessions.values_mut() {
            if s.standby == failed {
                s.chunks.clear();
                s.replicated = 0;
            }
        }
        out
    }

    /// Largest per-session pending delta — the replication-lag gauge.
    pub(crate) fn max_pending_tokens(&self) -> usize {
        self.sessions
            .values()
            .map(|s| s.committed.saturating_sub(s.replicated))
            .max()
            .unwrap_or(0)
    }

    /// KV tokens delivered to standbys so far.
    pub(crate) fn replicated_tokens(&self) -> u64 {
        self.replicated_tokens
    }

    /// Bytes put on replication wires so far (delivered or lost).
    pub(crate) fn standby_bytes(&self) -> u64 {
        self.standby_bytes
    }

    /// Flush attempts lost in transit so far.
    pub(crate) fn lost_flushes(&self) -> u64 {
        self.lost_flushes
    }

    /// Chunks lost across every replication link.
    pub(crate) fn link_lost_chunks(&self) -> u64 {
        self.links.iter().map(NodeLink::lost_chunks).sum()
    }

    /// Bytes streamed across every replication link.
    pub(crate) fn link_streamed_bytes(&self) -> u64 {
        self.links.iter().map(NodeLink::streamed_bytes).sum()
    }

    /// Schedules a forced outage window on every replication link — a
    /// fleet-wide partition fault.
    pub(crate) fn add_outage(&mut self, start: SimTime, end: SimTime) {
        for link in &mut self.links {
            link.add_outage(start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: ReplicationMode) -> ReplicationConfig {
        ReplicationConfig {
            mode,
            flush_threshold_tokens: 32,
            link: NodeLinkSpec::datacenter_25g(),
        }
    }

    #[test]
    fn default_is_disabled_and_cheap() {
        let c = ReplicationConfig::default();
        assert_eq!(c.mode, ReplicationMode::Disabled);
        assert!(c.flush_threshold_tokens > 0);
    }

    #[test]
    fn observe_then_flush_tracks_lag() {
        let mut r = Replicator::new(cfg(ReplicationMode::Async), 2);
        let conv = SessionId(7);
        r.observe(conv, 0, 1, 48);
        assert_eq!(r.max_pending_tokens(), 48);
        assert_eq!(r.due_flushes(0, 32), vec![conv]);
        assert!(r.due_flushes(0, 64).is_empty(), "below threshold");
        let end = r.flush(conv, SimTime::ZERO, 1024, 1, &None);
        assert!(end.is_some());
        assert_eq!(r.max_pending_tokens(), 0);
        assert_eq!(r.replicated_tokens(), 48);
        // A later commit grows the pending delta from the new total.
        r.observe(conv, 0, 1, 80);
        assert_eq!(r.max_pending_tokens(), 32);
    }

    #[test]
    fn rebind_resets_replicated_state() {
        let mut r = Replicator::new(cfg(ReplicationMode::Async), 3);
        let conv = SessionId(1);
        r.observe(conv, 0, 1, 100);
        assert!(r.flush(conv, SimTime::ZERO, 8, 1, &None).is_some());
        assert_eq!(r.max_pending_tokens(), 0);
        // The session migrates to replica 2: the copy on replica 1 no
        // longer fronts for the new primary, so everything re-replicates.
        r.observe(conv, 2, 0, 100);
        assert_eq!(r.max_pending_tokens(), 100);
    }

    #[test]
    fn failover_splits_promoted_from_reset_sessions() {
        let mut r = Replicator::new(cfg(ReplicationMode::Async), 3);
        r.observe(SessionId(1), 0, 1, 64); // primary fails -> promoted
        r.observe(SessionId(2), 1, 0, 64); // standby fails -> reset
        assert!(r.flush(SessionId(1), SimTime::ZERO, 8, 1, &None).is_some());
        assert!(r.flush(SessionId(2), SimTime::ZERO, 8, 1, &None).is_some());
        let promoted = r.take_failover(0);
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].0, SessionId(1));
        assert_eq!(promoted[0].1.replicated, 64);
        // Session 2 survives but lost its copy: full lag again.
        assert_eq!(r.max_pending_tokens(), 64);
    }

    #[test]
    fn per_source_links_are_decorrelated_and_deterministic() {
        let lossy = ReplicationConfig {
            mode: ReplicationMode::Async,
            flush_threshold_tokens: 1,
            link: NodeLinkSpec::lossy_25g(0.5, 11),
        };
        let run = |primary: usize| {
            let mut r = Replicator::new(lossy.clone(), 4);
            let conv = SessionId(9);
            let mut outcomes = Vec::new();
            for step in 1..=16usize {
                r.observe(conv, primary, (primary + 1) % 4, step * 8);
                outcomes.push(r.flush(conv, SimTime::ZERO, 64, 1, &None).is_some());
            }
            outcomes
        };
        assert_eq!(run(0), run(0), "same source, same loss schedule");
        assert_ne!(run(0), run(1), "different sources diverge");
    }
}
