//! The [`Router`]: N replicas behind one [`ServingBackend`] facade.
//!
//! The router owns a fleet of replicas (anything implementing
//! [`ServingBackend`] — in practice `SimServingEngine`s) and is itself a
//! [`ServingBackend`], so the same closed-loop workload driver that runs
//! a single engine runs a cluster unchanged. Placement follows a
//! [`RouterPolicy`]; the cache-aware policy adds two stateful-serving
//! mechanisms on top:
//!
//! * **Conversation migration.** When a session's affine replica is
//!   saturated, its KV chunks stream to a less-loaded replica over the
//!   simulated [`NodeLink`] (DéjàVu-style KV streaming). Chunks lost in
//!   transit are marked dropped and fall back to Pensieve's dropped-token
//!   recomputation at the target — migration trades network time and a
//!   little recomputation against head-of-line queueing.
//! * **Fail-stop recovery.** [`Router::fail_replica_at`] schedules a
//!   replica death: its KV state vanishes, completed responses remain
//!   drainable, and queued/running requests are re-routed to survivors
//!   (which recompute any lost context from raw tokens).
//! * **Standby replication.** With [`ReplicationConfig`] enabled, newly
//!   committed KV deltas stream to each session's standby replica in the
//!   background (see [`crate::replication`]). On fail-stop the standby is
//!   *promoted*: the replicated chunks import through the same
//!   `export_session`/`import_session` path migration uses, and only the
//!   unreplicated suffix flows through dropped-chunk recomputation.
//!   [`Router::apply_fault_schedule`] turns a seeded
//!   [`pensieve_sim::FaultSchedule`] into scheduled crashes and link
//!   partitions for chaos testing.
//! * **Cold-store manifest persistence.** With
//!   [`RouterConfig::manifest_persistence`] on, every replication
//!   barrier also serializes each session's chunk manifest to a
//!   simulated cold object store that survives replica fail-stops. A
//!   turn whose session has no cached KV anywhere rehydrates its chunk
//!   layout from the manifest on a survivor — chunks re-admitted at the
//!   cold tier, read back through that replica's own cold device at
//!   admission — instead of recomputing from scratch. Torn manifest
//!   writes (seeded [`pensieve_sim::FaultKind::TornManifestWrite`]
//!   rolls) fail their checksum at rehydration time and fall back to
//!   recomputation. See `docs/STORAGE.md` for the full storage model.
//!
//! Everything is deterministic: replica polling order, placement
//! tie-breaks and the link's loss schedule are pure functions of the
//! inputs, so a cluster run has a stable trace hash.
//!
//! # Parallel replica stepping
//!
//! [`Router::run_until`] advances replicas in **conservative time
//! windows**: every alive replica runs independently up to the next
//! inter-replica event horizon (the earliest scheduled fail-stop, then
//! the caller's deadline), and only at those barriers does the router
//! perform cross-replica work — replication pumping, standby promotion,
//! failure injection. Because those are already the *only* interactions
//! between replicas, partitioning the per-window loop across a
//! persistent worker [`Pool`] (see [`Router::pool`]) cannot change any
//! replica's state: each replica's simulation inside a window depends
//! only on its own inputs. Traces stay deterministic by giving each
//! replica its own [`SharedRecorder`]
//! ([`Router::replica_recorders`]); at every barrier the router drains
//! them into its own recorder in replica-index order, so the merged
//! event stream — and its hash — is identical at every pool width.

use std::collections::BTreeMap;

use crossbeam::pool::Pool;
use pensieve_core::{Request, RequestId, Response, ServingBackend};
use pensieve_kvcache::{
    CacheStats, ChunkId, ChunkState, ColdObjectStore, ManifestChunk, ManifestError,
    SessionExport, SessionId, SessionManifest, Tier,
};
use pensieve_model::{SimDuration, SimTime};
use pensieve_obs::{metrics, Recorder as _, RecoveryKind, SharedRecorder, TraceEvent};
use pensieve_sim::{
    ClusterFaultKind, FaultConfig, FaultInjector, FaultKind, FaultSchedule, NodeLink, NodeLinkSpec,
};

use crate::policy::RouterPolicy;
use crate::replication::{ReplicationConfig, ReplicationMode, Replicator};

/// Tuning knobs for the router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Queue depth at which a session's affine replica counts as
    /// saturated and the cache-aware policy considers migrating the
    /// conversation instead of queueing behind the backlog.
    pub saturation_depth: usize,
    /// Cache-aware score penalty, in hit-tokens, per request of queue
    /// depth above the cluster minimum: placement prefers the affine
    /// replica until its backlog costs more than the cache hit saves.
    pub imbalance_penalty_tokens: usize,
    /// Shape of the inter-node link migrations stream over.
    pub link: NodeLinkSpec,
    /// Standby KV replication knobs (default: disabled, so existing
    /// cluster configurations and their pinned traces are unchanged).
    pub replication: ReplicationConfig,
    /// Persist each session's chunk manifest to a simulated cold object
    /// store at every replication barrier, so sessions orphaned by a
    /// fail-stopped replica rehydrate their KV layout from the cold tier
    /// instead of recomputing everything (see `docs/STORAGE.md`).
    /// Default: off, so existing cluster traces are unchanged.
    pub manifest_persistence: bool,
    /// Seeded fault stream for manifest writes: each write rolls
    /// [`FaultKind::TornManifestWrite`] once. `None` means writes never
    /// tear. Ignored unless `manifest_persistence` is on.
    pub manifest_faults: Option<FaultConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            saturation_depth: 4,
            imbalance_penalty_tokens: 256,
            link: NodeLinkSpec::datacenter_25g(),
            replication: ReplicationConfig::default(),
            manifest_persistence: false,
            manifest_faults: None,
        }
    }
}

/// One replica slot: the backend plus its liveness flag.
#[derive(Debug)]
struct Replica<B> {
    backend: B,
    alive: bool,
}

/// N replicas behind a placement policy; itself a [`ServingBackend`].
/// See the [module docs](self) for the design.
#[derive(Debug)]
pub struct Router<B> {
    replicas: Vec<Replica<B>>,
    policy: RouterPolicy,
    cfg: RouterConfig,
    /// Next round-robin candidate.
    rr_next: usize,
    /// Which replica last held each session's KV state.
    affinity: BTreeMap<SessionId, usize>,
    link: NodeLink,
    /// Original arrival per in-flight request: migrations and re-routes
    /// re-submit with a later effective arrival so queueing delay lands
    /// on the right replica clock, and the original is patched back on
    /// drain so reported latency honestly includes that wait.
    origin_arrivals: BTreeMap<RequestId, SimTime>,
    /// Scheduled fail-stop injections, sorted by (time, replica).
    scheduled_failures: Vec<(SimTime, usize)>,
    /// Future effective arrivals the router itself created (migration
    /// transfer completions, failure re-dispatch times). `poll(None)`
    /// treats them as due work: without this a delayed submission on an
    /// otherwise idle replica would never be reached.
    wakeups: Vec<SimTime>,
    /// Responses salvaged from replicas that have since died.
    buffered: Vec<Response>,
    /// Requests that could not be placed because no replica is alive.
    parked: Vec<Request>,
    recorder: Option<SharedRecorder>,
    /// Per-replica event recorders for the merged deterministic trace;
    /// index-aligned with `replicas`. Required for parallel stepping.
    replica_recorders: Option<Vec<SharedRecorder>>,
    /// Worker pool for windowed replica stepping (serial by default).
    pool: Pool,
    /// Standby replication state; `None` when disabled or with fewer
    /// than two replicas (there is nobody to stand by).
    replication: Option<Replicator>,
    /// Cold-tier manifest store: session chunk layouts that survive any
    /// replica's fail-stop (empty unless manifest persistence is on).
    cold_store: ColdObjectStore,
    /// Seeded torn-write roll source for manifest persistence.
    manifest_faults: Option<FaultInjector>,
    routed: u64,
    migrations: u64,
    migrated_tokens: u64,
    migration_lost_tokens: u64,
    replica_failures: u64,
    promotions: u64,
    recomputed_suffix_tokens: u64,
    manifests_persisted: u64,
    torn_manifests: u64,
    rehydrations: u64,
    rehydrated_tokens: u64,
}

impl<B: ServingBackend> Router<B> {
    /// Builds a router over `replicas` (index order is placement order).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    #[must_use]
    pub fn new(replicas: Vec<B>, policy: RouterPolicy, cfg: RouterConfig) -> Self {
        assert!(!replicas.is_empty(), "a cluster needs at least one replica");
        let link = NodeLink::new(cfg.link.clone());
        let replication =
            if cfg.replication.mode != ReplicationMode::Disabled && replicas.len() >= 2 {
                Some(Replicator::new(cfg.replication.clone(), replicas.len()))
            } else {
                None
            };
        let mut router = Router {
            replicas: replicas
                .into_iter()
                .map(|backend| Replica {
                    backend,
                    alive: true,
                })
                .collect(),
            policy,
            cfg,
            rr_next: 0,
            affinity: BTreeMap::new(),
            link,
            origin_arrivals: BTreeMap::new(),
            scheduled_failures: Vec::new(),
            wakeups: Vec::new(),
            buffered: Vec::new(),
            parked: Vec::new(),
            recorder: None,
            replica_recorders: None,
            pool: Pool::serial(),
            replication,
            cold_store: ColdObjectStore::new(),
            manifest_faults: None,
            routed: 0,
            migrations: 0,
            migrated_tokens: 0,
            migration_lost_tokens: 0,
            replica_failures: 0,
            promotions: 0,
            recomputed_suffix_tokens: 0,
            manifests_persisted: 0,
            torn_manifests: 0,
            rehydrations: 0,
            rehydrated_tokens: 0,
        };
        router.manifest_faults = router.cfg.manifest_faults.clone().map(FaultInjector::new);
        router
    }

    /// Attaches a recorder for router-level events and metrics. The
    /// replicas keep whatever recorder they were built with — share one
    /// [`SharedRecorder`] across the fleet for a merged trace.
    #[must_use]
    pub fn recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Installs a persistent worker [`Pool`] for windowed replica
    /// stepping (see the [module docs](self)). With a serial pool — the
    /// default — replicas step sequentially; wider pools partition them
    /// across the parked workers. Results are bit-identical either way.
    ///
    /// Parallel stepping additionally requires
    /// [`Router::replica_recorders`]: replicas sharing one recorder
    /// would interleave events nondeterministically (the router cannot
    /// see how the replicas were built), so it steps sequentially until
    /// per-replica recorders are registered.
    #[must_use]
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Registers each replica's own [`SharedRecorder`] (index-aligned
    /// with the construction order). At every stepping barrier the
    /// router drains these into its own recorder in replica-index
    /// order, producing one merged event stream that is identical at
    /// every pool width — the determinism pin for parallel stepping.
    /// The per-replica recorders must be the ones the replica engines
    /// were built with, and distinct from the router's recorder.
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the replica count.
    #[must_use]
    pub fn replica_recorders(mut self, recorders: Vec<SharedRecorder>) -> Self {
        assert_eq!(
            recorders.len(),
            self.replicas.len(),
            "one recorder per replica, index-aligned"
        );
        self.replica_recorders = Some(recorders);
        self
    }

    /// Schedules replica `idx` to fail-stop at time `at`. The failure
    /// takes effect when the cluster's clock (or an arriving request)
    /// reaches `at`; scheduling twice is idempotent once the replica is
    /// dead.
    pub fn fail_replica_at(&mut self, idx: usize, at: SimTime) {
        debug_assert!(idx < self.replicas.len());
        self.scheduled_failures.push((at, idx));
        self.scheduled_failures
            .sort_by_key(|&(at, idx)| (OrdTime(at), idx));
    }

    /// The placement policy in force.
    #[must_use]
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Number of replicas, dead or alive.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Indices of replicas still alive.
    #[must_use]
    pub fn alive_replicas(&self) -> Vec<usize> {
        self.alive_indices().collect()
    }

    /// Conversations migrated so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// KV tokens successfully streamed between replicas so far.
    #[must_use]
    pub fn migrated_tokens(&self) -> u64 {
        self.migrated_tokens
    }

    /// KV tokens lost in transit (recomputed at the target) so far.
    #[must_use]
    pub fn migration_lost_tokens(&self) -> u64 {
        self.migration_lost_tokens
    }

    /// Requests that could not be placed because every replica was dead.
    #[must_use]
    pub fn parked_requests(&self) -> usize {
        self.parked.len()
    }

    /// Standby promotions performed so far.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// KV tokens delivered to standby replicas so far.
    #[must_use]
    pub fn replicated_tokens(&self) -> u64 {
        self.replication
            .as_ref()
            .map_or(0, Replicator::replicated_tokens)
    }

    /// Bytes put on replication wires so far (delivered or lost).
    #[must_use]
    pub fn standby_bytes(&self) -> u64 {
        self.replication
            .as_ref()
            .map_or(0, Replicator::standby_bytes)
    }

    /// Replication flush attempts lost in transit so far.
    #[must_use]
    pub fn replication_lost_flushes(&self) -> u64 {
        self.replication
            .as_ref()
            .map_or(0, Replicator::lost_flushes)
    }

    /// Unreplicated-suffix tokens that fell back to recomputation at
    /// promotion time (the cost replication did *not* save).
    #[must_use]
    pub fn recomputed_suffix_tokens(&self) -> u64 {
        self.recomputed_suffix_tokens
    }

    /// Manifest records written to the cold store so far (torn included).
    #[must_use]
    pub fn manifests_persisted(&self) -> u64 {
        self.manifests_persisted
    }

    /// Manifest writes torn mid-write by fault injection so far.
    #[must_use]
    pub fn torn_manifests(&self) -> u64 {
        self.torn_manifests
    }

    /// Sessions rebuilt from cold-store manifests after failures so far.
    #[must_use]
    pub fn rehydrations(&self) -> u64 {
        self.rehydrations
    }

    /// KV tokens re-admitted at the cold tier by those rehydrations.
    #[must_use]
    pub fn rehydrated_tokens(&self) -> u64 {
        self.rehydrated_tokens
    }

    /// Sessions with a manifest currently in the cold store.
    #[must_use]
    pub fn persisted_manifest_count(&self) -> usize {
        self.cold_store.len()
    }

    /// Largest per-session committed-but-unreplicated delta right now.
    #[must_use]
    pub fn replication_lag_tokens(&self) -> usize {
        self.replication
            .as_ref()
            .map_or(0, Replicator::max_pending_tokens)
    }

    /// Schedules every event of a seeded [`FaultSchedule`]: replica
    /// crashes become [`Router::fail_replica_at`] injections and link
    /// partitions become forced outage windows on the migration link and
    /// every replication link. Crash targets beyond the fleet size are
    /// ignored (the schedule generator caps targets, but schedules are
    /// data and may come from anywhere).
    pub fn apply_fault_schedule(&mut self, schedule: &FaultSchedule) {
        for ev in schedule.events() {
            match ev.kind {
                ClusterFaultKind::ReplicaCrash { replica } => {
                    if replica < self.replicas.len() {
                        self.fail_replica_at(replica, ev.at);
                    }
                }
                ClusterFaultKind::LinkPartition { duration } => {
                    let until = ev.at + duration;
                    self.link.add_outage(ev.at, until);
                    if let Some(rep) = &mut self.replication {
                        rep.add_outage(ev.at, until);
                    }
                    self.recorder
                        .record(TraceEvent::LinkPartitioned { at: ev.at, until });
                }
            }
        }
    }

    /// Direct access to replica `idx`'s backend (inspection in tests and
    /// benches; routing itself never bypasses the trait).
    #[must_use]
    pub fn replica(&self, idx: usize) -> &B {
        // lint:allow(r1-index): harness-only inspection accessor; a bad
        // index should fail the test loudly, not be masked with a default.
        &self.replicas[idx].backend
    }

    fn alive_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.alive_backends().map(|(i, _)| i)
    }

    /// Every alive replica's `(index, backend)`, in index order — the
    /// borrow-based walk that placement and aggregation build on.
    fn alive_backends(&self) -> impl Iterator<Item = (usize, &B)> + '_ {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive)
            .map(|(i, r)| (i, &r.backend))
    }

    fn min_alive_depth(&self) -> usize {
        self.alive_backends()
            .map(|(_, b)| b.queue_depth())
            .min()
            .unwrap_or(0)
    }

    /// Applies every scheduled failure that is due: the victim's own
    /// clock reached the failure time, or `frontier` (e.g. an arriving
    /// request's timestamp) passed it.
    fn apply_due_failures(&mut self, frontier: Option<SimTime>) {
        loop {
            let due = self.scheduled_failures.iter().position(|&(at, idx)| {
                self.replicas
                    .get(idx)
                    .is_some_and(|r| r.backend.now() >= at)
                    || frontier.is_some_and(|f| f >= at)
            });
            let Some(pos) = due else { return };
            let (at, idx) = self.scheduled_failures.remove(pos);
            self.fail_replica_now(idx, at);
        }
    }

    fn fail_replica_now(&mut self, idx: usize, at: SimTime) {
        let Some(victim) = self.replicas.get_mut(idx) else {
            return;
        };
        if !victim.alive {
            return;
        }
        let t = at.max(victim.backend.now());
        // Responses completed before the failure survive it.
        self.buffered.extend(victim.backend.drain_responses());
        let orphans = victim.backend.fail_stop();
        victim.alive = false;
        self.affinity.retain(|_, r| *r != idx);
        self.replica_failures += 1;
        self.recorder.record(TraceEvent::ReplicaFailed {
            at: t,
            replica: idx,
            requeued: orphans.len(),
        });
        let promoted = self.promote_standbys(idx, t, &orphans);
        for mut req in orphans {
            // The orphan restarts on a survivor; its effective arrival is
            // the failure time (it cannot be re-admitted in the past) or,
            // when its session was promoted, the instant the replicated
            // state is usable at the standby. Drain patches the original
            // arrival back so reported latency spans the failover.
            match promoted.get(&req.conv).copied() {
                Some((standby, ready)) => {
                    req.arrival = req.arrival.max(ready);
                    self.dispatch_to(req, standby);
                }
                None => {
                    // No replicated standby: `dispatch` consults the cold
                    // store's manifests before recompute placement.
                    req.arrival = req.arrival.max(t);
                    self.dispatch(req);
                }
            }
        }
        self.publish_metrics(t);
    }

    /// Promotes the standby of every session whose primary just failed:
    /// the replicated chunks import into the standby (CPU tier, same path
    /// migration uses), affinity moves, and only the unreplicated suffix
    /// is left for dropped-chunk recomputation. Returns the promoted
    /// sessions' `(standby, ready)` placements; `ready` is when the last
    /// in-flight replication chunk delivers — promotion latency.
    fn promote_standbys(
        &mut self,
        failed: usize,
        t: SimTime,
        orphans: &[Request],
    ) -> BTreeMap<SessionId, (usize, SimTime)> {
        let mut promoted = BTreeMap::new();
        let Some(rep) = self.replication.as_mut() else {
            return promoted;
        };
        let failover = rep.take_failover(failed);
        if failover.is_empty() {
            return promoted;
        }
        // An in-flight turn's partial output may already be committed and
        // replicated; the orphan restarts that turn from its original
        // history, so cap the import there to keep the standby's cache
        // consistent with what the retried request expects.
        let caps: BTreeMap<SessionId, usize> =
            orphans.iter().map(|r| (r.conv, r.history_tokens)).collect();
        for (conv, state) in failover {
            let standby = state.standby;
            if !self.replicas.get(standby).is_some_and(|r| r.alive) {
                // Standby died too (multi-fault schedule): nothing to
                // promote, the session recomputes from raw tokens.
                continue;
            }
            let cap = caps.get(&conv).copied().unwrap_or(usize::MAX);
            let mut ready = t;
            let mut pos = 0usize;
            let mut chunks = Vec::new();
            for &(tokens, usable_at) in &state.chunks {
                if pos >= cap {
                    break;
                }
                let take = tokens.min(cap - pos);
                pos += take;
                chunks.push(ChunkState {
                    tier: Tier::Cpu,
                    tokens: take,
                    context_end: pos,
                });
                ready = ready.max(usable_at);
            }
            let lag = state.committed.saturating_sub(state.replicated);
            if !chunks.is_empty() {
                // Replicated deltas carry *private* committed tokens only;
                // a globally shared preamble is never byte-streamed (every
                // replica already holds its chunks), so the failover export
                // attaches no shared chain and the retried turn re-derives
                // any preamble credit through the standby's own index.
                let export = SessionExport {
                    session: conv,
                    chunks,
                    shared: Vec::new(),
                };
                let admitted = self
                    .replicas
                    .get_mut(standby)
                    .map_or(0, |r| r.backend.import_session(export));
                if admitted > 0 {
                    self.affinity.insert(conv, standby);
                }
            }
            self.promotions += 1;
            self.recomputed_suffix_tokens += lag as u64;
            let latency = SimDuration::from_secs((ready.as_secs() - t.as_secs()).max(0.0));
            self.recorder.record(TraceEvent::StandbyPromoted {
                at: ready,
                conv: conv.0,
                from: failed,
                to: standby,
                replicated_tokens: pos,
                lag_tokens: lag,
                latency,
            });
            if let Some(rec) = self.recorder.clone() {
                let _ = rec.with_metrics(|m| {
                    m.observe(
                        metrics::names::PROMOTION_LATENCY_SECONDS,
                        metrics::PROMOTION_LATENCY_SECONDS_BUCKETS,
                        latency.as_secs(),
                    );
                });
            }
            promoted.insert(conv, (standby, ready));
        }
        promoted
    }

    /// The failover target for sessions whose primary is `primary`: the
    /// next alive replica in ring order. `None` when no *other* replica
    /// is alive.
    fn standby_of(&self, primary: usize) -> Option<usize> {
        let n = self.replicas.len();
        (1..n)
            .map(|off| (primary + off) % n)
            .find(|&i| self.replicas.get(i).is_some_and(|r| r.alive))
    }

    /// Drains each per-replica recorder into the router's recorder, in
    /// replica-index order. Called at every stepping barrier so the
    /// merged stream interleaves replica and router events identically
    /// at every pool width. No-op without per-replica recorders.
    fn merge_replica_events(&mut self) {
        let Some(recs) = self.replica_recorders.as_ref() else {
            return;
        };
        let Some(sink) = self.recorder.clone() else {
            return;
        };
        for rec in recs {
            for ev in rec.take_events() {
                sink.record(ev);
            }
        }
    }

    /// Drains every alive replica's commit log into the replicator and
    /// flushes sessions whose pending delta reached the threshold (every
    /// pending delta in sync mode). Called at each scheduling boundary so
    /// replication keeps pace with generation; a pure bookkeeping step —
    /// it never advances a replica clock.
    fn pump_replication(&mut self) {
        // Every scheduling boundary passes through here, so this is also
        // where the merged deterministic trace is stitched together.
        self.merge_replica_events();
        self.persist_manifests();
        if self.replication.is_none() {
            return;
        }
        for i in 0..self.replicas.len() {
            let Some(primary) = self.replicas.get_mut(i) else {
                break;
            };
            if !primary.alive {
                continue;
            }
            let commits = primary.backend.take_committed_kv();
            let now = primary.backend.now();
            let bytes_per_token = primary.backend.kv_bytes_per_token();
            // With no second replica alive there is nobody to stand by:
            // the drained commits are dropped (the log stays bounded).
            let Some(standby) = self.standby_of(i) else {
                continue;
            };
            let Some(rep) = self.replication.as_mut() else {
                return;
            };
            for (conv, committed) in commits {
                rep.observe(conv, i, standby, committed);
            }
            let threshold = match rep.mode() {
                ReplicationMode::Sync => 1,
                _ => self.cfg.replication.flush_threshold_tokens.max(1),
            };
            for conv in rep.due_flushes(i, threshold) {
                rep.flush(conv, now, bytes_per_token, 1, &self.recorder);
            }
        }
    }

    /// Routes and submits one request (the single entry point for fresh
    /// submissions and re-routes alike).
    fn dispatch(&mut self, req: Request) {
        self.origin_arrivals.entry(req.id).or_insert(req.arrival);
        // A turn with history but no cached KV anywhere — its replica
        // fail-stopped, or pressure demoted-then-dropped everything —
        // may rebuild its chunk layout from the cold store's persisted
        // manifest instead of recomputing. The chunk *reads* are charged
        // by the target replica's own cold device at admission; only
        // placement happens here.
        let affine_cached = self
            .affinity
            .get(&req.conv)
            .and_then(|&i| self.replicas.get(i))
            .filter(|r| r.alive)
            .map_or(0, |r| r.backend.cached_tokens(req.conv));
        if req.history_tokens > 0 && affine_cached == 0 {
            if let Some(target) = self.try_rehydrate(req.conv, req.history_tokens, req.arrival) {
                self.dispatch_to(req, target);
                return;
            }
        }
        let Some(target) = self.pick_replica(&req) else {
            self.parked.push(req);
            return;
        };
        let (req, target) = if self.policy == RouterPolicy::CacheAware {
            self.maybe_migrate(req, target)
        } else {
            (req, target)
        };
        self.dispatch_to(req, target);
    }

    /// Submits `req` to a specific replica, bypassing placement: the tail
    /// of [`Router::dispatch`], and the direct path failover promotion
    /// uses so the orphan lands on the standby that now holds its KV
    /// regardless of policy.
    fn dispatch_to(&mut self, req: Request, target: usize) {
        self.origin_arrivals.entry(req.id).or_insert(req.arrival);
        let Some(rep) = self.replicas.get(target) else {
            // A target outside the fleet (corrupt schedule data): keep the
            // request rather than lose it; a later dispatch re-places it.
            self.parked.push(req);
            return;
        };
        if req.arrival > rep.backend.now() {
            self.wakeups.push(req.arrival);
            self.wakeups.sort_by_key(|&t| OrdTime(t));
        }
        let cached = rep.backend.cached_tokens(req.conv);
        self.affinity.insert(req.conv, target);
        self.routed += 1;
        self.recorder.record(TraceEvent::Routed {
            at: req.arrival,
            request: req.id.0,
            conv: req.conv.0,
            replica: target,
            cached_tokens: cached,
        });
        self.publish_metrics(req.arrival);
        if let Some(rep) = self.replicas.get_mut(target) {
            rep.backend.submit(req);
        }
    }

    /// Picks the placement target per policy. `None` only when every
    /// replica is dead.
    fn pick_replica(&mut self, req: &Request) -> Option<usize> {
        let n = self.replicas.len();
        match self.policy {
            RouterPolicy::RoundRobin => {
                for off in 0..n {
                    let i = (self.rr_next + off) % n;
                    if self.replicas.get(i).is_some_and(|r| r.alive) {
                        self.rr_next = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            RouterPolicy::LeastLoaded => self
                .alive_backends()
                .min_by_key(|&(i, b)| (b.queue_depth(), i))
                .map(|(i, _)| i),
            RouterPolicy::CacheAware => {
                let min_depth = self.min_alive_depth();
                // Highest score wins: cached hit-tokens minus the load
                // imbalance penalty; ties go to the lowest index.
                self.alive_backends()
                    .map(|(i, b)| {
                        let cached = b.cached_tokens(req.conv) as i64;
                        let excess = (b.queue_depth() - min_depth) as i64;
                        let score = cached - excess * self.cfg.imbalance_penalty_tokens as i64;
                        (score, i)
                    })
                    .fold(None, |best: Option<(i64, usize)>, cand| match best {
                        Some(b) if b.0 >= cand.0 => Some(b),
                        _ => Some(cand),
                    })
                    .map(|(_, i)| i)
            }
        }
    }

    /// If `target` is the session's saturated affine replica and a
    /// clearly less-loaded alternative exists, migrates the session's KV
    /// there and retargets the request; otherwise returns it unchanged.
    fn maybe_migrate(&mut self, mut req: Request, target: usize) -> (Request, usize) {
        let Some(affine) = self.replicas.get(target) else {
            return (req, target);
        };
        let depth = affine.backend.queue_depth();
        if depth < self.cfg.saturation_depth {
            return (req, target);
        }
        if self.affinity.get(&req.conv) != Some(&target)
            || affine.backend.cached_tokens(req.conv) == 0
        {
            return (req, target);
        }
        // Hysteresis: only move when the alternative is at least two
        // requests lighter, so a borderline depth difference cannot
        // bounce a session back and forth.
        let alt = self
            .alive_backends()
            .filter(|&(i, _)| i != target)
            .map(|(i, b)| (b.queue_depth(), i))
            .min();
        let Some((alt_depth, alt)) = alt else {
            return (req, target);
        };
        if alt_depth + 2 > depth {
            return (req, target);
        }
        let Some(end) = self.migrate(req.conv, target, alt, req.arrival) else {
            return (req, target);
        };
        // The turn cannot start before its KV lands at the target.
        req.arrival = req.arrival.max(end);
        (req, alt)
    }

    /// Streams `session`'s KV from `from` to `to` over the link. Returns
    /// the transfer completion time, or `None` when the source refuses
    /// the export (session unknown or still in flight there).
    fn migrate(
        &mut self,
        session: SessionId,
        from: usize,
        to: usize,
        at: SimTime,
    ) -> Option<SimTime> {
        let source = self.replicas.get_mut(from)?;
        let mut export = source.backend.export_session(session)?;
        let bytes_per_token = source.backend.kv_bytes_per_token() as u64;
        let total_bytes: u64 = export
            .chunks
            .iter()
            .filter(|c| c.tier != Tier::Dropped)
            .map(|c| c.tokens as u64 * bytes_per_token)
            .sum();
        self.recorder.record(TraceEvent::MigrationStart {
            at,
            conv: session.0,
            from,
            to,
            chunks: export.chunks.len(),
            bytes: total_bytes,
        });
        let mut transfer_end = at;
        let mut lost_tokens = 0usize;
        for i in 0..export.chunks.len() {
            let Some(chunk) = export.chunks.get(i).copied() else {
                break;
            };
            if chunk.tier == Tier::Dropped {
                continue;
            }
            let bytes = chunk.tokens * bytes_per_token as usize;
            match self.link.stream_chunk(at, bytes) {
                Ok((_start, end)) => transfer_end = transfer_end.max(end),
                Err(lost) => {
                    // The wire time was spent; the chunk is recomputed at
                    // the target from raw tokens instead.
                    transfer_end = transfer_end.max(lost.completes);
                    lost_tokens += export.mark_lost(i);
                }
            }
        }
        let streamed = export.streamable_tokens();
        self.recorder.record(TraceEvent::MigrationEnd {
            at: transfer_end,
            conv: session.0,
            to,
            streamed_tokens: streamed,
            lost_tokens,
        });
        self.migrations += 1;
        self.migrated_tokens += streamed as u64;
        self.migration_lost_tokens += lost_tokens as u64;
        let _admitted = self
            .replicas
            .get_mut(to)
            .map_or(0, |r| r.backend.import_session(export));
        self.affinity.insert(session, to);
        Some(transfer_end)
    }

    /// Serializes every alive replica's *changed* session manifests to
    /// the cold object store — a pure bookkeeping step on the barrier
    /// path (it never advances a replica clock). Each actual write rolls
    /// [`FaultKind::TornManifestWrite`] once; a torn record fails its
    /// checksum at rehydration time, and because unchanged manifests are
    /// skipped by value comparison a torn record is rewritten (healed) at
    /// the next barrier.
    fn persist_manifests(&mut self) {
        if !self.cfg.manifest_persistence {
            return;
        }
        for i in 0..self.replicas.len() {
            let Some(rep) = self.replicas.get(i) else {
                break;
            };
            if !rep.alive {
                continue;
            }
            let now = rep.backend.now();
            for conv in rep.backend.manifest_sessions() {
                let Some(manifest) = rep.backend.session_manifest(conv) else {
                    continue;
                };
                if manifest.total_tokens() == 0 {
                    continue;
                }
                if self.cold_store.get(conv).is_ok_and(|m| m == manifest) {
                    continue; // unchanged since the last barrier
                }
                let torn = self
                    .manifest_faults
                    .as_mut()
                    .is_some_and(|f| f.roll(FaultKind::TornManifestWrite));
                let bytes = self.cold_store.put(&manifest, torn);
                self.manifests_persisted += 1;
                if torn {
                    self.torn_manifests += 1;
                }
                self.recorder.record(TraceEvent::ManifestPersisted {
                    at: now,
                    conv: conv.0,
                    tokens: manifest.total_tokens(),
                    bytes: bytes as u64,
                    torn,
                });
            }
        }
    }

    /// Attempts to rebuild an orphaned session from its cold-store
    /// manifest on the least-loaded survivor. Returns the replica that
    /// now holds the rehydrated (cold-tier) chunks, or `None` when the
    /// session must recompute instead: persistence off, no manifest, a
    /// torn manifest (recorded as a [`RecoveryKind::TornManifest`]
    /// recovery), or the survivor refused the chunks.
    fn try_rehydrate(&mut self, conv: SessionId, cap: usize, t: SimTime) -> Option<usize> {
        if !self.cfg.manifest_persistence {
            return None;
        }
        let manifest = match self.cold_store.get(conv) {
            Ok(m) => m,
            Err(ManifestError::Missing) => return None,
            Err(ManifestError::Torn) => {
                // The record failed its checksum: drop it so the next
                // barrier re-persists a clean one, and recompute now.
                self.cold_store.remove(conv);
                self.recorder.record(TraceEvent::FaultRecovery {
                    at: t,
                    conv: Some(conv.0),
                    kind: RecoveryKind::TornManifest,
                    tokens: 0,
                });
                return None;
            }
        };
        // Cap at the orphan's history: a partially committed turn
        // restarts from its original context, the same rule standby
        // promotion applies to replicated chunks.
        let mut chunks = Vec::new();
        let mut pos = 0usize;
        for m in &manifest.chunks {
            if pos >= cap {
                break;
            }
            let take = m.tokens.min(cap - pos);
            pos += take;
            // A truncated shared chunk cannot re-attach by id (attaching
            // would bring the whole chunk back); demote it to a private
            // cold entry of the capped size instead.
            let id = if take == m.tokens { m.id } else { ChunkId::NONE };
            chunks.push(ManifestChunk { id, tokens: take });
        }
        let capped = SessionManifest {
            session: conv,
            chunks,
        };
        if capped.total_tokens() == 0 {
            return None;
        }
        let target = self
            .alive_backends()
            .min_by_key(|&(i, b)| (b.queue_depth(), i))
            .map(|(i, _)| i)?;
        let admitted = self
            .replicas
            .get_mut(target)
            .map_or(0, |r| r.backend.rehydrate_session(&capped));
        if admitted == 0 {
            return None;
        }
        self.affinity.insert(conv, target);
        self.rehydrations += 1;
        self.rehydrated_tokens += admitted as u64;
        self.recorder.record(TraceEvent::SessionRehydrated {
            at: t,
            conv: conv.0,
            tokens: admitted,
            replica: target,
        });
        Some(target)
    }

    fn publish_metrics(&self, now: SimTime) {
        let Some(rec) = self.recorder.clone() else {
            return;
        };
        let _ = rec.with_metrics(|m| {
            m.counter_set(metrics::names::ROUTED_REQUESTS_TOTAL, self.routed);
            m.counter_set(metrics::names::MIGRATIONS_TOTAL, self.migrations);
            m.counter_set(metrics::names::MIGRATED_TOKENS_TOTAL, self.migrated_tokens);
            m.counter_set(
                metrics::names::MIGRATION_LOST_TOKENS_TOTAL,
                self.migration_lost_tokens,
            );
            m.counter_set(
                metrics::names::REPLICA_FAILURES_TOTAL,
                self.replica_failures,
            );
            let mut lost_chunks = self.link.lost_chunks();
            let mut streamed_bytes = self.link.streamed_bytes();
            if let Some(rep) = &self.replication {
                lost_chunks += rep.link_lost_chunks();
                streamed_bytes += rep.link_streamed_bytes();
                m.counter_set(
                    metrics::names::REPLICATED_TOKENS_TOTAL,
                    rep.replicated_tokens(),
                );
                m.counter_set(metrics::names::STANDBY_BYTES_TOTAL, rep.standby_bytes());
                m.counter_set(metrics::names::STANDBY_PROMOTIONS_TOTAL, self.promotions);
                m.counter_set(
                    metrics::names::RECOMPUTED_SUFFIX_TOKENS_TOTAL,
                    self.recomputed_suffix_tokens,
                );
                m.gauge_set(
                    metrics::names::REPLICATION_LAG_TOKENS,
                    rep.max_pending_tokens() as f64,
                );
            }
            m.counter_set(metrics::names::LINK_LOST_CHUNKS_TOTAL, lost_chunks);
            m.counter_set(metrics::names::LINK_STREAMED_BYTES_TOTAL, streamed_bytes);
            if self.cfg.manifest_persistence {
                m.counter_set(
                    metrics::names::MANIFESTS_PERSISTED_TOTAL,
                    self.manifests_persisted,
                );
                m.counter_set(
                    metrics::names::SESSION_REHYDRATIONS_TOTAL,
                    self.rehydrations,
                );
            }
            m.sample(now);
        });
    }

    /// Patches a drained response's arrival back to its original
    /// submission time, so migration/re-route wait counts as latency.
    fn patch_arrival(&mut self, mut resp: Response) -> Response {
        if let Some(orig) = self.origin_arrivals.remove(&resp.id) {
            resp.arrival = orig;
        }
        resp
    }
}

impl<B: ServingBackend + Send> Router<B> {
    /// Advances every alive replica to `horizon` — one conservative
    /// time window. Replicas are partitioned across the worker pool
    /// when one is installed alongside per-replica recorders; otherwise
    /// they step sequentially. Either way each replica's state after
    /// the window is a pure function of its own state before it, so the
    /// two paths are interchangeable (and the trace merge at the
    /// barrier keeps the event stream identical too).
    fn step_replicas_to(&mut self, horizon: SimTime) {
        if self.pool.threads() > 1 && self.replica_recorders.is_some() {
            let _durs = self.pool.for_each_mut(&mut self.replicas, |_, r| {
                if r.alive {
                    r.backend.run_until(horizon);
                }
            });
        } else {
            for r in &mut self.replicas {
                if r.alive {
                    r.backend.run_until(horizon);
                }
            }
        }
    }
}

impl<B: ServingBackend + Send> ServingBackend for Router<B> {
    fn submit(&mut self, req: Request) {
        self.apply_due_failures(Some(req.arrival));
        self.dispatch(req);
    }

    fn poll(&mut self, deadline: Option<SimTime>) -> bool {
        loop {
            self.apply_due_failures(None);
            if self.responses_ready() {
                return true;
            }
            // Cap each replica's advance at the next scheduled failure so
            // the injection lands before any later work is simulated.
            // Pending failures and router-created future arrivals count
            // as due work, so they may pull idle clocks forward even
            // under `deadline: None`.
            let frontier = self.now();
            self.wakeups.retain(|&w| w > frontier);
            let next_fail = self.scheduled_failures.first().map(|&(at, _)| at);
            let next_wake = match (next_fail, self.wakeups.first().copied()) {
                (Some(f), Some(w)) => Some(if w < f { w } else { f }),
                (f, w) => f.or(w),
            };
            let eff = match (deadline, next_wake) {
                (Some(d), Some(f)) => Some(if f < d { f } else { d }),
                (Some(d), None) => Some(d),
                (None, f) => f,
            };
            // Poll the laggard replica first: deterministic order, and the
            // cluster clock (the minimum) advances as fast as possible.
            let mut order: Vec<(OrdTime, usize)> = self
                .alive_backends()
                .map(|(i, b)| (OrdTime(b.now()), i))
                .collect();
            order.sort();
            let mut progressed = false;
            for (before, i) in order {
                let Some(rep) = self.replicas.get_mut(i) else {
                    continue;
                };
                let ready = rep.backend.poll(eff);
                if ready || OrdTime(rep.backend.now()) > before {
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                // Nothing due anywhere (and any due failures were applied
                // at the top of the loop): with a deadline every alive
                // clock has reached it; without one we must not advance.
                self.apply_due_failures(None);
                return self.responses_ready();
            }
            // Replication keeps pace with generation: stream whatever the
            // step just committed before simulating further work (and in
            // particular before any scheduled crash lands).
            self.pump_replication();
        }
    }

    fn responses_ready(&self) -> bool {
        !self.buffered.is_empty() || self.alive_backends().any(|(_, b)| b.responses_ready())
    }

    fn drain_responses(&mut self) -> Vec<Response> {
        self.apply_due_failures(None);
        self.pump_replication();
        let sync = self
            .replication
            .as_ref()
            .is_some_and(|r| r.mode() == ReplicationMode::Sync);
        let mut out = std::mem::take(&mut self.buffered);
        for i in 0..self.replicas.len() {
            let Some(rep) = self.replicas.get_mut(i) else {
                break;
            };
            if !rep.alive {
                continue;
            }
            let mut fresh = rep.backend.drain_responses();
            let bytes_per_token = rep.backend.kv_bytes_per_token();
            if sync {
                // Turn-commit barrier: the turn is not finished until its
                // KV delta is durable on the standby. The pump above
                // flushed eagerly, so this usually covers only the final
                // partial delta; a lost flush retries on the spot.
                for resp in &mut fresh {
                    let Some(rep) = self.replication.as_mut() else {
                        break;
                    };
                    if let Some(end) =
                        rep.flush(resp.conv, resp.finish, bytes_per_token, 3, &self.recorder)
                    {
                        resp.finish = resp.finish.max(end);
                    }
                }
            }
            out.extend(fresh);
        }
        let mut out: Vec<Response> = out.into_iter().map(|r| self.patch_arrival(r)).collect();
        out.sort_by_key(|r| (OrdTime(r.finish), r.id));
        out
    }

    fn now(&self) -> SimTime {
        // The cluster's frontier is the slowest alive replica: everything
        // before it is fully simulated. With no survivors, freeze at the
        // fastest clock ever reached.
        let alive = self
            .alive_backends()
            .map(|(_, b)| b.now())
            .min_by_key(|&t| OrdTime(t));
        alive.unwrap_or_else(|| {
            self.replicas
                .iter()
                .map(|r| r.backend.now())
                .fold(SimTime::ZERO, SimTime::max)
        })
    }

    fn run_until(&mut self, t: SimTime) {
        // Windowed stepping: stop at each scheduled failure first so the
        // injection lands before later work is simulated. Within each
        // window replicas are independent, so `step_replicas_to` may
        // fan them out across the worker pool.
        while let Some(&(at, _)) = self.scheduled_failures.first() {
            if at > t {
                break;
            }
            self.step_replicas_to(at);
            // Stream everything committed up to the crash instant before
            // the injection lands: KV already on the wire survives, and
            // the victim's unflushed tail is exactly the failover lag.
            self.pump_replication();
            self.apply_due_failures(Some(at));
        }
        self.step_replicas_to(t);
        self.pump_replication();
    }

    fn is_idle(&self) -> bool {
        self.buffered.is_empty() && self.alive_backends().all(|(_, b)| b.is_idle())
    }

    fn running_requests(&self) -> usize {
        self.alive_backends()
            .map(|(_, b)| b.running_requests())
            .sum()
    }

    fn waiting_requests(&self) -> usize {
        self.alive_backends()
            .map(|(_, b)| b.waiting_requests())
            .sum()
    }

    fn gpu_slots_used(&self) -> usize {
        self.alive_backends().map(|(_, b)| b.gpu_slots_used()).sum()
    }

    fn gpu_capacity_tokens(&self) -> usize {
        self.alive_backends()
            .map(|(_, b)| b.gpu_capacity_tokens())
            .sum()
    }

    fn cpu_tokens_used(&self) -> usize {
        self.alive_backends()
            .map(|(_, b)| b.cpu_tokens_used())
            .sum()
    }

    fn kv_bytes_per_token(&self) -> usize {
        // The fleet is uniform by construction (same model, same
        // hardware), so replica 0 speaks for everyone.
        self.replicas
            .first()
            .map_or(0, |r| r.backend.kv_bytes_per_token())
    }

    fn cached_tokens(&self, session: SessionId) -> usize {
        self.affinity
            .get(&session)
            .and_then(|&i| self.replicas.get(i))
            .filter(|r| r.alive)
            .map_or(0, |r| r.backend.cached_tokens(session))
    }

    fn cache_stats(&self) -> CacheStats {
        // Dead replicas still contribute: their counters describe work
        // that really happened before the failure.
        let mut total = CacheStats::default();
        for r in &self.replicas {
            total.merge(&r.backend.cache_stats());
        }
        total
    }

    fn export_session(&mut self, session: SessionId) -> Option<SessionExport> {
        let &i = self.affinity.get(&session)?;
        let rep = self.replicas.get_mut(i).filter(|r| r.alive)?;
        let export = rep.backend.export_session(session)?;
        self.affinity.remove(&session);
        Some(export)
    }

    fn import_session(&mut self, export: SessionExport) -> usize {
        let Some(target) = self
            .alive_backends()
            .min_by_key(|&(i, b)| (b.queue_depth(), i))
            .map(|(i, _)| i)
        else {
            return 0;
        };
        let session = export.session;
        let admitted = self
            .replicas
            .get_mut(target)
            .map_or(0, |r| r.backend.import_session(export));
        self.affinity.insert(session, target);
        admitted
    }

    fn fail_stop(&mut self) -> Vec<Request> {
        let mut orphans = Vec::new();
        for r in &mut self.replicas {
            if r.alive {
                self.buffered.extend(r.backend.drain_responses());
                orphans.extend(r.backend.fail_stop());
                r.alive = false;
            }
        }
        // Requests parked while every replica was dead were accepted but
        // never placed: they are orphans too, owed to the caller rather
        // than silently dropped. Pending injections and wakeups die with
        // the cluster.
        orphans.extend(std::mem::take(&mut self.parked));
        self.scheduled_failures.clear();
        self.wakeups.clear();
        self.affinity.clear();
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_core::{EngineConfig, SimServingEngine};
    use pensieve_model::{HardwareSpec, ModelConfig};

    fn engine() -> SimServingEngine {
        SimServingEngine::builder(
            EngineConfig::pensieve(),
            ModelConfig::opt_13b(),
            HardwareSpec::azure_nc_a100(1),
        )
        .build()
    }

    fn cluster(n: usize, policy: RouterPolicy, cfg: RouterConfig) -> Router<SimServingEngine> {
        Router::new((0..n).map(|_| engine()).collect(), policy, cfg)
    }

    fn req(id: u64, conv: u64, at: f64, prompt: usize, out: usize, hist: usize) -> Request {
        Request::builder()
            .id(RequestId(id))
            .session(SessionId(conv))
            .arrival(SimTime::from_secs(at))
            .prompt_tokens(prompt)
            .output_tokens(out)
            .history_tokens(hist)
            .build()
            .unwrap()
    }

    fn drain_all(r: &mut Router<SimServingEngine>) -> Vec<Response> {
        let mut out = Vec::new();
        for _ in 0..1000 {
            r.run_until(r.now() + pensieve_model::SimDuration::from_secs(1000.0));
            out.extend(r.drain_responses());
            if r.is_idle() && r.parked_requests() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn round_robin_cycles_over_replicas() {
        let mut r = cluster(3, RouterPolicy::RoundRobin, RouterConfig::default());
        for i in 0..4 {
            r.submit(req(i, i, 0.0, 64, 8, 0));
        }
        let depths: Vec<usize> = (0..3).map(|i| r.replica(i).queue_depth()).collect();
        assert_eq!(depths, vec![2, 1, 1]);
    }

    #[test]
    fn least_loaded_prefers_shallowest_queue() {
        let mut r = cluster(2, RouterPolicy::LeastLoaded, RouterConfig::default());
        r.submit(req(0, 0, 0.0, 64, 512, 0));
        r.submit(req(1, 1, 0.0, 64, 8, 0));
        r.submit(req(2, 2, 0.0, 64, 8, 0));
        // 0 -> replica 0 (tie, lowest index), 1 -> replica 1, 2 -> either
        // at depth 1 each -> lowest index.
        assert_eq!(r.replica(0).queue_depth(), 2);
        assert_eq!(r.replica(1).queue_depth(), 1);
    }

    #[test]
    fn cache_aware_sticks_to_affine_replica() {
        let mut r = cluster(4, RouterPolicy::CacheAware, RouterConfig::default());
        r.submit(req(0, 7, 0.0, 256, 64, 0));
        let first = drain_all(&mut r);
        assert_eq!(first.len(), 1);
        assert!(r.cached_tokens(SessionId(7)) > 0, "turn 1 left KV behind");
        // Follow-up turn: must land on the replica holding the cache.
        r.submit(req(1, 7, 50.0, 64, 32, 320));
        let second = drain_all(&mut r);
        assert_eq!(second.len(), 1);
        assert!(
            second[0].cached_history_tokens > 0,
            "affine routing found no cached history"
        );
    }

    #[test]
    fn saturation_triggers_migration_and_preserves_cache() {
        let cfg = RouterConfig {
            saturation_depth: 2,
            ..RouterConfig::default()
        };
        let mut r = cluster(2, RouterPolicy::CacheAware, cfg);
        // Three conversations complete a turn each; ties route them all
        // to replica 0, which now holds all the KV state.
        for (id, conv) in [(0u64, 1u64), (1, 2), (2, 3)] {
            r.submit(req(id, conv, 0.0, 512, 64, 0));
            let done = drain_all(&mut r);
            assert_eq!(done.len(), 1);
        }
        let t = r.now().as_secs() + 1.0;
        // Two long follow-ups saturate replica 0 (their cache pins them
        // there)...
        r.submit(req(10, 2, t, 64, 512, 576));
        r.submit(req(11, 3, t, 64, 512, 576));
        assert_eq!(r.replica(0).queue_depth(), 2);
        // ...so conversation 1's follow-up migrates to replica 1.
        r.submit(req(12, 1, t, 64, 64, 576));
        assert_eq!(r.migrations(), 1, "saturated affine replica must migrate");
        assert!(r.migrated_tokens() > 0);
        let done = drain_all(&mut r);
        assert_eq!(done.len(), 3);
        let moved = done.iter().find(|resp| resp.id == RequestId(12)).unwrap();
        assert!(
            moved.cached_history_tokens > 0,
            "migrated KV should still produce cache hits at the target"
        );
        assert_eq!(
            moved.arrival,
            SimTime::from_secs(t),
            "latency must include the migration wait (original arrival)"
        );
        assert!(
            r.cached_tokens(SessionId(1)) > 0,
            "affinity moved with the KV"
        );
    }

    #[test]
    fn lost_chunks_fall_back_to_recomputation() {
        let cfg = RouterConfig {
            saturation_depth: 2,
            link: NodeLinkSpec::lossy_25g(1.0, 9), // every chunk lost
            ..RouterConfig::default()
        };
        let mut r = cluster(2, RouterPolicy::CacheAware, cfg);
        for (id, conv) in [(0u64, 1u64), (1, 2), (2, 3)] {
            r.submit(req(id, conv, 0.0, 512, 64, 0));
            let _ = drain_all(&mut r);
        }
        let t = r.now().as_secs() + 1.0;
        r.submit(req(10, 2, t, 64, 512, 576));
        r.submit(req(11, 3, t, 64, 512, 576));
        r.submit(req(12, 1, t, 64, 64, 576));
        assert_eq!(r.migrations(), 1);
        assert!(r.migration_lost_tokens() > 0, "lossy link must lose chunks");
        let done = drain_all(&mut r);
        // The turn still completes correctly: lost KV is recomputed.
        let moved = done.iter().find(|resp| resp.id == RequestId(12)).unwrap();
        assert_eq!(moved.output_tokens, 64);
        assert_eq!(
            moved.prefill_tokens + moved.cached_history_tokens,
            64 + 576,
            "every context token is either cached or recomputed, never lost"
        );
    }

    #[test]
    fn replica_failure_requeues_in_flight_work() {
        let mut r = cluster(2, RouterPolicy::RoundRobin, RouterConfig::default());
        r.fail_replica_at(0, SimTime::from_secs(0.5));
        r.submit(req(0, 1, 0.0, 64, 2000, 0)); // replica 0, dies mid-decode
        r.submit(req(1, 2, 0.0, 64, 8, 0)); // replica 1
        let done = drain_all(&mut r);
        assert_eq!(r.alive_replicas(), vec![1]);
        assert_eq!(
            done.len(),
            2,
            "orphaned request must complete on a survivor"
        );
        let restarted = done.iter().find(|resp| resp.id == RequestId(0)).unwrap();
        assert_eq!(restarted.output_tokens, 2000);
        assert_eq!(
            restarted.arrival,
            SimTime::ZERO,
            "latency spans the failure (original arrival restored)"
        );
        assert!(restarted.finish > SimTime::from_secs(0.5));
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let run = || {
            let cfg = RouterConfig {
                saturation_depth: 2,
                link: NodeLinkSpec::lossy_25g(0.5, 42),
                ..RouterConfig::default()
            };
            let mut r = cluster(2, RouterPolicy::CacheAware, cfg);
            r.fail_replica_at(1, SimTime::from_secs(40.0));
            for (id, conv) in [(0u64, 1u64), (1, 2), (2, 3)] {
                r.submit(req(id, conv, 0.0, 512, 64, 0));
                let _ = drain_all(&mut r);
            }
            let t = r.now().as_secs() + 1.0;
            r.submit(req(10, 2, t, 64, 512, 576));
            r.submit(req(11, 3, t, 64, 512, 576));
            r.submit(req(12, 1, t, 64, 64, 576));
            let mut done = drain_all(&mut r);
            done.sort_by_key(|resp| resp.id);
            done.iter()
                .map(|resp| (resp.id.0, resp.finish.as_secs(), resp.cached_history_tokens))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn router_fail_stop_orphans_everything() {
        let mut r = cluster(2, RouterPolicy::RoundRobin, RouterConfig::default());
        r.submit(req(0, 1, 0.0, 64, 100, 0));
        r.submit(req(1, 2, 0.0, 64, 100, 0));
        let orphans = r.fail_stop();
        assert_eq!(orphans.len(), 2);
        assert!(r.alive_replicas().is_empty());
        assert!(r.is_idle());
    }

    #[test]
    fn router_fail_stop_returns_parked_requests() {
        let mut r = cluster(1, RouterPolicy::RoundRobin, RouterConfig::default());
        r.fail_replica_at(0, SimTime::ZERO);
        // The arrival reaches the scheduled failure first, so the request
        // finds every replica dead and parks.
        r.submit(req(0, 1, 1.0, 64, 8, 0));
        assert_eq!(r.parked_requests(), 1);
        let orphans = r.fail_stop();
        assert_eq!(
            orphans.len(),
            1,
            "parked requests are owed to the caller, not dropped"
        );
        assert_eq!(r.parked_requests(), 0);
    }
}

/// Total order over [`SimTime`] for sort keys (simulated times are always
/// finite; NaN cannot arise from the engines).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdTime(SimTime);

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}
