//! Deep-storage integration tests: cold-tier manifest persistence,
//! cross-restart session rehydration and seeded storage chaos.
//!
//! The headline property mirrors migration's and replication's: the
//! storage hierarchy changes *when* tokens are produced (and how much
//! context is recomputed), never *what* is produced. A replica restart
//! that rehydrates sessions from tier-3 manifests, a torn manifest
//! write, or a seeded cold-read fault must all leave per-request outputs
//! bit-identical to the calm run — and every faulty run must replay
//! bit-identically from its seeds.
//!
//! The fault seed honors `PENSIEVE_FAULT_SEED` (CI sweeps several).

use pensieve_cluster::{Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineConfig, Request, RequestId, Response, ServingBackend, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_obs::{RecoveryKind, SharedRecorder, TraceEvent};
use pensieve_sim::{FaultConfig, FaultInjector};

/// Fault-stream seed: `PENSIEVE_FAULT_SEED` env var, default 1.
fn fault_seed() -> u64 {
    std::env::var("PENSIEVE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A deep-tier engine on the paper's hardware (capacities far above the
/// test workloads, so only restarts — not pressure — move chunks).
fn deep_engine() -> SimServingEngine {
    SimServingEngine::builder(
        EngineConfig::pensieve_deep_tiers(1 << 20, 1 << 20),
        ModelConfig::opt_13b(),
        HardwareSpec::azure_nc_a100(1),
    )
    .build()
}

fn cluster(n: usize, cfg: RouterConfig) -> Router<SimServingEngine> {
    Router::new(
        (0..n).map(|_| deep_engine()).collect(),
        RouterPolicy::CacheAware,
        cfg,
    )
}

/// Router config with cold-store manifest persistence on; `torn` sets
/// the probability that a manifest write tears mid-write.
fn persistent_cfg(torn: f64) -> RouterConfig {
    RouterConfig {
        manifest_persistence: true,
        manifest_faults: (torn > 0.0).then(|| FaultConfig {
            torn_manifest_write: torn,
            ..FaultConfig::disabled(fault_seed())
        }),
        ..RouterConfig::default()
    }
}

fn req(id: u64, conv: u64, at: SimTime, prompt: usize, out: usize, hist: usize) -> Request {
    Request::builder()
        .id(RequestId(id))
        .session(SessionId(conv))
        .arrival(at)
        .prompt_tokens(prompt)
        .output_tokens(out)
        .history_tokens(hist)
        .build()
        .expect("test turns are non-empty")
}

fn drain_all<B: ServingBackend>(b: &mut B) -> Vec<Response> {
    let mut out = Vec::new();
    for _ in 0..1000 {
        b.run_until(b.now() + SimDuration::from_secs(1000.0));
        out.extend(b.drain_responses());
        if b.is_idle() {
            break;
        }
    }
    out
}

/// Generation identity: `(id, conv, output tokens)` sorted by id — what
/// must be bit-identical across calm and faulty runs. Context accounting
/// (cached vs recomputed) legitimately differs and is conservation-
/// checked separately.
fn ids(responses: &[Response]) -> Vec<(u64, u64, usize)> {
    let mut out: Vec<(u64, u64, usize)> = responses
        .iter()
        .map(|r| (r.id.0, r.conv.0, r.output_tokens))
        .collect();
    out.sort_unstable();
    out
}

const TURNS: [(u64, usize, usize); 2] = [(0, 600, 48), (1, 420, 32)];
const FOLLOW_OUT: usize = 40;

/// Phase 1 builds per-conversation KV on the affine replica (ties route
/// everything to replica 0); optionally replica 0 then fail-stops while
/// idle; phase 2's follow-ups arrive afterwards. Returns all responses.
fn run_restart_script(r: &mut Router<SimServingEngine>, crash: bool) -> Vec<Response> {
    let mut responses = Vec::new();
    for &(conv, prompt, out) in &TURNS {
        r.submit(req(conv, conv, r.now(), prompt, out, 0));
        let done = drain_all(r);
        assert_eq!(done.len(), 1, "phase-1 turn must complete");
        responses.extend(done);
    }
    if crash {
        let at = r.now() + SimDuration::from_secs(0.5);
        r.fail_replica_at(0, at);
        r.run_until(at + SimDuration::from_secs(0.1));
    }
    let t = r.now() + SimDuration::from_secs(1.0);
    for &(conv, prompt, out) in &TURNS {
        r.submit(req(100 + conv, conv, t, 64, FOLLOW_OUT, prompt + out));
    }
    let done = drain_all(r);
    for resp in &done {
        let (_, prompt, out) = TURNS[resp.conv.0 as usize];
        assert_eq!(
            resp.prefill_tokens + resp.cached_history_tokens,
            64 + prompt + out,
            "follow-up context must be fully cached or recomputed, never lost"
        );
    }
    responses.extend(done);
    responses
}

/// A replica restart rehydrates its sessions from their cold-store
/// manifests on a survivor: generation output is bit-identical to the
/// never-restarted run, the follow-ups hit rehydrated (cold-tier) KV
/// instead of recomputing, and the whole thing replays bit-identically.
#[test]
fn restart_rehydrates_sessions_from_cold_manifests() {
    let mut calm = cluster(2, persistent_cfg(0.0));
    let reference = run_restart_script(&mut calm, false);

    let faulty_run = || {
        let rec = SharedRecorder::new();
        let mut r = cluster(2, persistent_cfg(0.0)).recorder(rec.clone());
        let responses = run_restart_script(&mut r, true);
        (
            ids(&responses),
            r.rehydrations(),
            r.rehydrated_tokens(),
            r.manifests_persisted(),
            rec.events(),
        )
    };
    let (faulty, rehydrations, tokens, persisted, events) = faulty_run();

    assert_eq!(faulty, ids(&reference), "restart must not change outputs");
    assert_eq!(rehydrations, 2, "both orphaned sessions rehydrate");
    // The final generated token of a turn is never cache-committed (it is
    // recomputed with the next turn's prefill), so each conversation's
    // manifest holds its history minus one token.
    let expected: usize = TURNS.iter().map(|&(_, p, o)| p + o - 1).sum();
    assert_eq!(
        tokens as usize, expected,
        "full committed histories rehydrate"
    );
    assert!(persisted >= 2, "manifests persisted at barriers");

    let rehydrated: Vec<(u64, usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SessionRehydrated {
                conv,
                tokens,
                replica,
                ..
            } => Some((*conv, *tokens, *replica)),
            _ => None,
        })
        .collect();
    assert_eq!(rehydrated.len(), 2);
    for &(conv, tokens, replica) in &rehydrated {
        let (_, p, o) = TURNS[conv as usize];
        assert_eq!(tokens, p + o - 1);
        assert_eq!(replica, 1, "sessions land on the survivor");
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::ManifestPersisted { torn: false, .. })),
        "clean manifest writes must be recorded"
    );

    // And the rehydrated KV actually serves the follow-ups.
    let again = faulty_run();
    assert_eq!(again.0, faulty, "faulty run must replay bit-identically");
    assert_eq!(
        (again.1, again.2, again.3),
        (rehydrations, tokens, persisted)
    );
}

/// Every manifest write torn: rehydration is abandoned (checksum fails),
/// the sessions recompute from raw tokens, and outputs stay
/// bit-identical to the calm run.
#[test]
fn torn_manifest_writes_fall_back_to_recompute() {
    let mut calm = cluster(2, persistent_cfg(0.0));
    let reference = run_restart_script(&mut calm, false);

    let faulty_run = || {
        let rec = SharedRecorder::new();
        let mut r = cluster(2, persistent_cfg(1.0)).recorder(rec.clone());
        let responses = run_restart_script(&mut r, true);
        (
            ids(&responses),
            r.rehydrations(),
            r.torn_manifests(),
            rec.events(),
        )
    };
    let (faulty, rehydrations, torn, events) = faulty_run();

    assert_eq!(
        faulty,
        ids(&reference),
        "torn manifests must not change outputs — recompute covers them"
    );
    assert_eq!(rehydrations, 0, "a torn manifest must never rehydrate");
    assert!(torn >= 2, "every manifest write tears at p=1.0");
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::FaultRecovery {
                kind: RecoveryKind::TornManifest,
                ..
            }
        )),
        "the torn-manifest recovery path must be recorded"
    );

    let again = faulty_run();
    assert_eq!(again.0, faulty, "faulty run must replay bit-identically");
    assert_eq!((again.1, again.2), (rehydrations, torn));
}

/// Manifest persistence is strictly passive without faults: enabling it
/// must not move a single clock edge of a calm run.
#[test]
fn manifest_persistence_is_passive_without_faults() {
    let timeline = |cfg: RouterConfig| {
        let mut r = cluster(2, cfg);
        let responses = run_restart_script(&mut r, false);
        let mut out: Vec<(u64, u64, usize, usize, u64)> = responses
            .iter()
            .map(|r| {
                (
                    r.id.0,
                    r.conv.0,
                    r.output_tokens,
                    r.prefill_tokens + r.cached_history_tokens,
                    r.finish.as_secs().to_bits(),
                )
            })
            .collect();
        out.sort_unstable();
        out
    };
    let plain = timeline(RouterConfig::default());
    let persistent = timeline(persistent_cfg(0.0));
    assert_eq!(plain, persistent);
}

/// A deep-tier engine under memory pressure with seeded cold-read faults
/// (stalls and outright failures): every failed deep read falls back to
/// dropped-chunk recomputation and the outputs stay bit-identical to the
/// fault-free engine.
#[test]
fn cold_read_faults_fall_back_to_recompute() {
    let n_convs = 6u64;
    let prompt = 800usize;
    let out1 = 32usize;

    // Tiny GPU/CPU tiers so idle sessions demote all the way down.
    let tiny_engine = |faults: Option<FaultConfig>| {
        let model = ModelConfig::opt_13b();
        let mut hw = HardwareSpec::azure_nc_a100(1);
        let probe =
            SimServingEngine::builder(EngineConfig::pensieve(), model.clone(), hw.clone()).build();
        let bpt = probe.kv_bytes_per_token();
        hw.gpu_kv_budget_bytes = bpt * 4096;
        hw.cpu_cache_bytes_per_gpu = bpt * 1024;
        let mut b =
            SimServingEngine::builder(EngineConfig::pensieve_deep_tiers(2048, 1 << 20), model, hw);
        if let Some(f) = faults {
            b = b.fault_injector(FaultInjector::new(f));
        }
        b.build()
    };

    let script = |e: &mut SimServingEngine| {
        let mut responses = Vec::new();
        for i in 0..n_convs {
            e.submit(req(i, i, e.now(), prompt, out1, 0));
            let done = drain_all(e);
            assert_eq!(done.len(), 1);
            responses.extend(done);
        }
        // Oldest conversations first: their chunks demoted the deepest.
        for i in 0..n_convs {
            let t = e.now() + SimDuration::from_secs(1.0);
            e.submit(req(100 + i, i, t, 64, 16, prompt + out1));
            let done = drain_all(e);
            for r in &done {
                assert_eq!(
                    r.prefill_tokens + r.cached_history_tokens,
                    64 + prompt + out1,
                    "context fully cached or recomputed, never lost"
                );
            }
            responses.extend(done);
        }
        responses
    };

    let mut calm = tiny_engine(None);
    let reference = script(&mut calm);
    let stats = calm.cache_stats();
    assert!(
        stats.ssd_hit_tokens + stats.cold_hit_tokens > 0,
        "the pressure script must actually exercise deep-tier restores \
         (got ssd {} cold {})",
        stats.ssd_hit_tokens,
        stats.cold_hit_tokens
    );

    let faulty_run = || {
        let mut e = tiny_engine(Some(FaultConfig {
            cold_read_stall: 0.5,
            cold_read_failure: 1.0,
            ..FaultConfig::disabled(fault_seed())
        }));
        let responses = script(&mut e);
        (ids(&responses), e.counters().cold_read_faults)
    };
    let (faulty, faults) = faulty_run();

    assert_eq!(
        faulty,
        ids(&reference),
        "cold-read faults must not change outputs — recompute covers them"
    );
    assert!(faults > 0, "deep reads must have been attempted and failed");

    let again = faulty_run();
    assert_eq!(
        again,
        (faulty, faults),
        "faulty run replays bit-identically"
    );
}
