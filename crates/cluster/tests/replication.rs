//! Failover integration tests: streaming KV replication under seeded
//! chaos schedules.
//!
//! The headline property mirrors the migration one: replication and
//! standby promotion change *when* tokens are produced (and how much
//! context is recomputed), never *what* is produced. A chaos schedule
//! that crashes a replica mid-run must leave per-conversation outputs
//! bit-identical to the fault-free run, with every context token either
//! cached at the standby or recomputed — and the whole thing replays
//! bit-identically under the same seeds.
//!
//! The fault seed honors `PENSIEVE_FAULT_SEED` (CI sweeps several).

use pensieve_cluster::{ReplicationConfig, ReplicationMode, Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineConfig, Request, RequestId, Response, ServingBackend, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_obs::{SharedRecorder, TraceEvent};
use pensieve_sim::{FaultSchedule, NodeLinkSpec};
use proptest::prelude::*;

/// Fault-stream seed: `PENSIEVE_FAULT_SEED` env var, default 1.
fn fault_seed() -> u64 {
    std::env::var("PENSIEVE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn engine() -> SimServingEngine {
    SimServingEngine::builder(
        EngineConfig::pensieve(),
        ModelConfig::opt_13b(),
        HardwareSpec::azure_nc_a100(1),
    )
    .build()
}

fn cluster(n: usize, cfg: RouterConfig) -> Router<SimServingEngine> {
    Router::new(
        (0..n).map(|_| engine()).collect(),
        RouterPolicy::CacheAware,
        cfg,
    )
}

fn replicated_cfg(mode: ReplicationMode, threshold: usize) -> RouterConfig {
    RouterConfig {
        replication: ReplicationConfig {
            mode,
            flush_threshold_tokens: threshold,
            link: NodeLinkSpec::datacenter_25g(),
        },
        ..RouterConfig::default()
    }
}

fn drain_all<B: ServingBackend>(b: &mut B) -> Vec<Response> {
    let mut out = Vec::new();
    for _ in 0..1000 {
        b.run_until(b.now() + SimDuration::from_secs(1000.0));
        out.extend(b.drain_responses());
        if b.is_idle() {
            break;
        }
    }
    out
}

fn req(id: u64, conv: u64, at: SimTime, prompt: usize, out: usize, hist: usize) -> Request {
    Request::builder()
        .id(RequestId(id))
        .session(SessionId(conv))
        .arrival(at)
        .prompt_tokens(prompt)
        .output_tokens(out)
        .history_tokens(hist)
        .build()
        .expect("test turns are non-empty")
}

/// Two-phase script: each conversation completes a first turn (building
/// KV state that replication streams to the standby), then every
/// follow-up arrives in a burst — the window chaos crashes land in.
/// Returns per-request `(id, conv, output, prefill + cached, finish
/// bits)` sorted by id, after asserting token conservation for every
/// follow-up.
fn run_script<B: ServingBackend>(
    backend: &mut B,
    turns: &[(usize, usize, usize)], // (prompt1, out1, out2) per conversation
) -> Vec<(u64, u64, usize, usize, u64)> {
    let mut responses = Vec::new();
    for (i, &(prompt, out, _)) in turns.iter().enumerate() {
        backend.submit(req(i as u64, i as u64, backend.now(), prompt, out, 0));
        let done = drain_all(backend);
        assert_eq!(done.len(), 1, "phase-1 turn must complete");
        responses.extend(done);
    }
    let burst = backend.now() + SimDuration::from_secs(1.0);
    for (i, &(prompt, out, out2)) in turns.iter().enumerate() {
        let id = 100 + i as u64;
        backend.submit(req(id, i as u64, burst, 64, out2, prompt + out));
        let done = drain_all(backend);
        for r in &done {
            assert_eq!(
                r.prefill_tokens + r.cached_history_tokens,
                64 + turns[(r.conv.0) as usize].0 + turns[(r.conv.0) as usize].1,
                "follow-up context must be fully cached or recomputed, never lost"
            );
        }
        responses.extend(done);
    }
    responses.extend(drain_all(backend));
    let mut out: Vec<(u64, u64, usize, usize, u64)> = responses
        .into_iter()
        .map(|r| {
            (
                r.id.0,
                r.conv.0,
                r.output_tokens,
                r.prefill_tokens + r.cached_history_tokens,
                r.finish.as_secs().to_bits(),
            )
        })
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Failover with streaming replication preserves generation exactly:
    /// across fault seeds, sync/async modes and lag thresholds, a seeded
    /// chaos schedule (replica crash + link partition mid-run) yields
    /// the same per-request outputs as the fault-free run, and the
    /// faulty run itself replays bit-identically.
    #[test]
    fn chaos_failover_preserves_generation(
        seed_off in 0u64..24,
        sync in 0usize..2,
        threshold in 0usize..3,
        n_convs in 2usize..4,
        prompt in 256usize..600,
        out1 in 16usize..80,
    ) {
        let seed = fault_seed().wrapping_add(seed_off);
        let mode = if sync == 1 { ReplicationMode::Sync } else { ReplicationMode::Async };
        let threshold = [16usize, 64, 256][threshold];
        let turns: Vec<(usize, usize, usize)> =
            (0..n_convs).map(|i| (prompt + 32 * i, out1 + i, 48)).collect();

        // Reference: same cluster, same replication config, no faults.
        let mut calm = cluster(2, replicated_cfg(mode, threshold));
        let reference = run_script(&mut calm, &turns);

        let faulty_run = || {
            let mut r = cluster(2, replicated_cfg(mode, threshold));
            let schedule = FaultSchedule::generate(
                seed,
                2,
                SimDuration::from_secs(40.0),
                1,
                1,
                SimDuration::from_secs(2.0),
            );
            r.apply_fault_schedule(&schedule);
            let outputs = run_script(&mut r, &turns);
            (outputs, r.promotions(), r.replicated_tokens(), r.recomputed_suffix_tokens())
        };
        let (faulty, promotions, replicated, recomputed) = faulty_run();

        // Outputs (id, conv, output tokens) match the fault-free run;
        // context accounting may differ (failover legitimately recomputes
        // the unreplicated suffix) and is conservation-checked in-script.
        let ids = |v: &Vec<(u64, u64, usize, usize, u64)>| -> Vec<(u64, u64, usize)> {
            v.iter().map(|&(id, conv, out, ..)| (id, conv, out)).collect()
        };
        prop_assert_eq!(ids(&faulty), ids(&reference));

        // Bounded lag: a crash through the scheduled-failure path loses
        // strictly less than one flush threshold per promoted session
        // (the pump streams everything due right before the injection).
        prop_assert!(
            recomputed <= promotions * threshold as u64,
            "recomputed suffix {} exceeds lag bound {} x {}",
            recomputed, promotions, threshold
        );
        if promotions > 0 {
            prop_assert!(replicated > 0, "promotion without replicated state");
        }

        // And the whole faulty timeline is deterministic.
        let again = faulty_run();
        prop_assert_eq!(again.0, faulty);
        prop_assert_eq!((again.1, again.2, again.3), (promotions, replicated, recomputed));
    }
}

/// Promotion latency is part of the affected request's reported TTFT:
/// the drained response keeps its *original* arrival time, so latency
/// measured as `finish - arrival` spans the crash, the promotion wait
/// and the suffix recompute.
#[test]
fn promotion_latency_counts_toward_ttft() {
    let rec = SharedRecorder::new();
    let mut r = cluster(2, replicated_cfg(ReplicationMode::Async, 32)).recorder(rec.clone());
    r.submit(req(0, 7, SimTime::ZERO, 1024, 64, 0));
    let first = drain_all(&mut r);
    assert_eq!(first.len(), 1);

    // Follow-up lands on the affine replica; it dies mid-decode.
    let t = r.now().as_secs() + 1.0;
    let crash = SimTime::from_secs(t + 0.5);
    r.fail_replica_at(0, crash);
    r.submit(req(1, 7, SimTime::from_secs(t), 64, 2000, 1088));
    let done = drain_all(&mut r);
    assert_eq!(done.len(), 1, "orphan completes on the standby");
    let resp = &done[0];

    assert_eq!(r.promotions(), 1, "the standby must be promoted");
    assert!(r.replicated_tokens() > 0, "phase 1 KV must have replicated");
    assert_eq!(
        resp.arrival,
        SimTime::from_secs(t),
        "original arrival preserved: TTFT includes the failover"
    );
    assert!(resp.finish > crash, "the turn finishes after the crash");
    assert!(
        resp.cached_history_tokens > 0,
        "replicated KV must produce cache hits at the standby"
    );

    let events = rec.events();
    let promoted = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::StandbyPromoted {
                at,
                conv,
                from,
                to,
                replicated_tokens,
                ..
            } => Some((*at, *conv, *from, *to, *replicated_tokens)),
            _ => None,
        })
        .expect("a StandbyPromoted event must be recorded");
    assert_eq!(promoted.1, 7);
    assert_eq!(promoted.2, 0, "replica 0 failed");
    assert_eq!(promoted.3, 1, "replica 1 promoted");
    assert!(promoted.4 > 0);
    assert!(promoted.0 >= crash, "state usable at or after the crash");
}

/// Sync mode's turn-commit barrier makes failover lossless: everything
/// committed by a finished turn is on the standby, so a crash between
/// turns recomputes nothing.
#[test]
fn sync_mode_failover_recomputes_nothing_between_turns() {
    let mut r = cluster(2, replicated_cfg(ReplicationMode::Sync, 64));
    r.submit(req(0, 3, SimTime::ZERO, 768, 32, 0));
    let first = drain_all(&mut r);
    assert_eq!(first.len(), 1);

    // Crash the affine replica while the session is idle.
    let crash = r.now() + SimDuration::from_secs(1.0);
    r.fail_replica_at(0, crash);
    r.run_until(crash + SimDuration::from_secs(0.1));
    assert_eq!(r.promotions(), 1);
    assert_eq!(
        r.recomputed_suffix_tokens(),
        0,
        "sync replication leaves no unreplicated suffix between turns"
    );

    // The follow-up finds its full context cached at the standby.
    let t = r.now() + SimDuration::from_secs(1.0);
    r.submit(req(1, 3, t, 64, 16, 800));
    let done = drain_all(&mut r);
    assert_eq!(done.len(), 1);
    assert!(done[0].cached_history_tokens > 0);
}

/// Replicated failover strictly beats recompute-from-scratch on the
/// orphaned request's completion time — the claim the failover benchmark
/// pins with numbers.
#[test]
fn replicated_failover_beats_recompute_from_scratch() {
    let finish_with = |mode: ReplicationMode| {
        let mut r = cluster(2, replicated_cfg(mode, 64));
        r.submit(req(0, 1, SimTime::ZERO, 3072, 128, 0));
        let first = drain_all(&mut r);
        assert_eq!(first.len(), 1);
        let t = r.now().as_secs() + 1.0;
        r.fail_replica_at(0, SimTime::from_secs(t + 0.2));
        r.submit(req(1, 1, SimTime::from_secs(t), 64, 256, 3200));
        let done = drain_all(&mut r);
        assert_eq!(done.len(), 1);
        done[0].finish.as_secs()
    };
    let replicated = finish_with(ReplicationMode::Async);
    let scratch = finish_with(ReplicationMode::Disabled);
    assert!(
        replicated < scratch,
        "failover with replicated KV ({replicated:.3}s) must finish before \
         recompute-from-scratch ({scratch:.3}s)"
    );
}

/// Async replication is strictly passive until a failure: enabling it
/// must not move a single clock edge of a fault-free run.
#[test]
fn async_replication_is_passive_without_faults() {
    let timeline = |cfg: RouterConfig| {
        let mut r = cluster(3, cfg);
        let turns = [(512, 48, 32), (416, 24, 48), (600, 64, 16)];
        run_script(&mut r, &turns)
    };
    let plain = timeline(RouterConfig::default());
    let replicated = timeline(replicated_cfg(ReplicationMode::Async, 64));
    assert_eq!(plain, replicated);
}
