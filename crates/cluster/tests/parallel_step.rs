//! Parallel cluster stepping determinism: the merged event trace of a
//! 64-replica chaos run hashes identically at every worker-pool width.
//!
//! Replicas advance independently only between scheduling barriers
//! (failure injections and router pumps), and the router drains each
//! replica's private recorder into the merged stream in replica-index
//! order at every barrier — so partitioning the replica walk across a
//! pool must not move a single byte of the trace. CI runs this test
//! under `PENSIEVE_THREADS` 1/2/4; each run asserts equality against an
//! in-process serial (width-1) run, which makes the hash transitively
//! identical across the whole matrix.

use crossbeam::pool::Pool;
use pensieve_cluster::{ReplicationConfig, ReplicationMode, Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineConfig, Request, RequestId, Response, ServingBackend, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_obs::{to_jsonl, SharedRecorder};
use pensieve_sim::{FaultSchedule, NodeLinkSpec};

const REPLICAS: usize = 64;
const CONVS: usize = 48;

/// Pool width under test: `PENSIEVE_THREADS`, default 4.
fn env_threads() -> usize {
    std::env::var("PENSIEVE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Fault-stream seed: `PENSIEVE_FAULT_SEED`, default 1 (CI sweeps it).
fn fault_seed() -> u64 {
    std::env::var("PENSIEVE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// FNV-1a over the JSONL trace — the same pin `bench_cluster` uses.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn req(id: u64, conv: u64, at: SimTime, prompt: usize, out: usize, hist: usize) -> Request {
    Request::builder()
        .id(RequestId(id))
        .session(SessionId(conv))
        .arrival(at)
        .prompt_tokens(prompt)
        .output_tokens(out)
        .history_tokens(hist)
        .build()
        .expect("test turns are non-empty")
}

fn drain_all<B: ServingBackend>(b: &mut B) -> Vec<Response> {
    let mut out = Vec::new();
    for _ in 0..1000 {
        b.run_until(b.now() + SimDuration::from_secs(1000.0));
        out.extend(b.drain_responses());
        if b.is_idle() {
            break;
        }
    }
    out
}

/// `(request id, conversation, output tokens, finish-time bits)` — the
/// observable outcome of one turn.
type TurnOutput = (u64, u64, usize, u64);

/// One full chaos run at the given pool width: 64 replicas with private
/// recorders, a seeded fault schedule (crashes + a link partition), and
/// a two-phase conversation script. Returns the FNV-1a hash of the
/// merged JSONL trace, the per-request outputs, and the event count.
fn run_at_width(width: usize) -> (u64, Vec<TurnOutput>, usize) {
    let recorders: Vec<SharedRecorder> = (0..REPLICAS).map(|_| SharedRecorder::new()).collect();
    let sink = SharedRecorder::new();
    let engines: Vec<SimServingEngine> = recorders
        .iter()
        .map(|rec| {
            SimServingEngine::builder(
                EngineConfig::pensieve(),
                ModelConfig::opt_13b(),
                HardwareSpec::azure_nc_a100(1),
            )
            .recorder(rec.clone())
            .build()
        })
        .collect();
    let cfg = RouterConfig {
        replication: ReplicationConfig {
            mode: ReplicationMode::Async,
            flush_threshold_tokens: 64,
            link: NodeLinkSpec::datacenter_25g(),
        },
        ..RouterConfig::default()
    };
    let mut router = Router::new(engines, RouterPolicy::CacheAware, cfg)
        .recorder(sink.clone())
        .replica_recorders(recorders)
        .pool(Pool::new(width));
    let schedule = FaultSchedule::generate(
        fault_seed(),
        REPLICAS,
        SimDuration::from_secs(60.0),
        6,
        1,
        SimDuration::from_secs(2.0),
    );
    router.apply_fault_schedule(&schedule);

    // Phase 1: every conversation builds KV state on its affine replica.
    let mut responses = Vec::new();
    for c in 0..CONVS {
        let prompt = 192 + 8 * (c % 7);
        router.submit(req(c as u64, c as u64, router.now(), prompt, 12 + c % 5, 0));
    }
    responses.extend(drain_all(&mut router));

    // Phase 2: follow-up burst landing inside the chaos window.
    let burst = router.now() + SimDuration::from_secs(1.0);
    for c in 0..CONVS {
        let prompt = 192 + 8 * (c % 7);
        let hist = prompt + 12 + c % 5;
        router.submit(req(1000 + c as u64, c as u64, burst, 48, 16, hist));
    }
    responses.extend(drain_all(&mut router));

    let mut outputs: Vec<(u64, u64, usize, u64)> = responses
        .into_iter()
        .map(|r| {
            (
                r.id.0,
                r.conv.0,
                r.output_tokens,
                r.finish.as_secs().to_bits(),
            )
        })
        .collect();
    outputs.sort_unstable();

    let events = sink.events();
    (fnv1a(to_jsonl(&events).as_bytes()), outputs, events.len())
}

/// The headline pin: a wide pool reproduces the serial trace and the
/// serial responses byte-for-byte.
#[test]
fn trace_hash_is_identical_across_pool_widths() {
    let width = env_threads();
    let (serial_hash, serial_out, serial_events) = run_at_width(1);
    assert!(serial_events > 0, "the chaos run must record events");
    assert_eq!(serial_out.len(), 2 * CONVS, "every turn must complete");

    let (wide_hash, wide_out, wide_events) = run_at_width(width);
    assert_eq!(
        (wide_hash, wide_events),
        (serial_hash, serial_events),
        "merged trace must be bit-identical at pool width {width}"
    );
    assert_eq!(
        wide_out, serial_out,
        "per-request outputs must be bit-identical at pool width {width}"
    );
}
