//! Cluster-level integration tests: the router under the real workload
//! driver, and the migration-correctness property.

use std::collections::BTreeMap;

use pensieve_cluster::{Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineConfig, Request, RequestId, Response, ServingBackend, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_sim::NodeLinkSpec;
use pensieve_workload::driver::run_closed_loop;
use pensieve_workload::{DatasetSpec, DriverConfig};
use proptest::prelude::*;

fn engine() -> SimServingEngine {
    SimServingEngine::builder(
        EngineConfig::pensieve(),
        ModelConfig::opt_13b(),
        HardwareSpec::azure_nc_a100(1),
    )
    .build()
}

fn cluster(n: usize, policy: RouterPolicy, cfg: RouterConfig) -> Router<SimServingEngine> {
    Router::new((0..n).map(|_| engine()).collect(), policy, cfg)
}

fn drain_all<B: ServingBackend>(b: &mut B) -> Vec<Response> {
    let mut out = Vec::new();
    for _ in 0..1000 {
        b.run_until(b.now() + SimDuration::from_secs(1000.0));
        out.extend(b.drain_responses());
        if b.is_idle() {
            break;
        }
    }
    out
}

/// A two-phase script: every conversation completes a first turn
/// back-to-back (piling affinity onto one replica), then every follow-up
/// turn arrives at once — the burst that saturates the affine replica
/// and, on a cluster, forces migrations. Returns per-conversation
/// `(output_tokens, prefill + cached)` for the follow-up turn.
fn run_script<B: ServingBackend>(
    backend: &mut B,
    turns: &[(usize, usize, usize)], // (prompt1, out1, out2) per conversation
) -> BTreeMap<u64, (usize, usize)> {
    let mut next_id = 0u64;
    let mut submit = |b: &mut B, conv: u64, at: SimTime, prompt: usize, out: usize, hist: usize| {
        let req = Request::builder()
            .id(RequestId(next_id))
            .session(SessionId(conv))
            .arrival(at)
            .prompt_tokens(prompt)
            .output_tokens(out)
            .history_tokens(hist)
            .build()
            .expect("script turns are non-empty");
        next_id += 1;
        b.submit(req);
    };
    for (i, &(prompt, out, _)) in turns.iter().enumerate() {
        submit(backend, i as u64, backend.now(), prompt, out, 0);
        let done = drain_all(backend);
        assert_eq!(done.len(), 1, "phase-1 turn must complete");
    }
    let burst = backend.now() + SimDuration::from_secs(1.0);
    for (i, &(prompt, out, out2)) in turns.iter().enumerate() {
        submit(backend, i as u64, burst, 64, out2, prompt + out);
    }
    let done = drain_all(backend);
    assert_eq!(done.len(), turns.len(), "every follow-up must complete");
    done.into_iter()
        .map(|r| {
            (
                r.conv.0,
                (r.output_tokens, r.prefill_tokens + r.cached_history_tokens),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Migration plus the recompute fallback for lost chunks changes
    /// *when* tokens are produced, never *what* is produced: the
    /// follow-up turns generate bit-identical output and process exactly
    /// the same context as a single replica that never migrates, for any
    /// link loss rate — every context token is either streamed, cached
    /// or recomputed, never lost or double-counted.
    #[test]
    fn migration_preserves_generation(
        n_convs in 2usize..6,
        prompt in 1usize..600,
        out1 in 1usize..200,
        out2 in 1usize..300,
        loss_tenths in 0u32..11,
        link_seed in 0u64..50,
        saturation in 2usize..4,
    ) {
        let turns: Vec<(usize, usize, usize)> =
            (0..n_convs).map(|i| (prompt + 32 * i, out1 + i, out2)).collect();
        let mut single = engine();
        let reference = run_script(&mut single, &turns);

        let cfg = RouterConfig {
            saturation_depth: saturation,
            link: NodeLinkSpec::lossy_25g(f64::from(loss_tenths) / 10.0, link_seed),
            ..RouterConfig::default()
        };
        let mut clustered = cluster(2, RouterPolicy::CacheAware, cfg);
        let migrated = run_script(&mut clustered, &turns);

        prop_assert_eq!(&migrated, &reference);

        // And the cluster run itself is bit-deterministic.
        let cfg2 = RouterConfig {
            saturation_depth: saturation,
            link: NodeLinkSpec::lossy_25g(f64::from(loss_tenths) / 10.0, link_seed),
            ..RouterConfig::default()
        };
        let mut again = cluster(2, RouterPolicy::CacheAware, cfg2);
        let replay = run_script(&mut again, &turns);
        prop_assert_eq!(&replay, &migrated);
    }
}

/// The headline claim of cache-aware routing, at test scale: under the
/// real closed-loop driver, session affinity serves strictly more
/// history tokens from cache than round-robin scattering does.
#[test]
fn cache_aware_beats_round_robin_under_driver() {
    let convs = DatasetSpec::sharegpt().generate(32, 5);
    let drv = DriverConfig {
        request_rate: 4.0,
        mean_think_time: 5.0,
        seed: 17,
        system_prompt_tokens: 0,
    };
    let hit_tokens = |policy: RouterPolicy| {
        let mut r = cluster(4, policy, RouterConfig::default());
        let result = run_closed_loop(&mut r, &convs, &drv);
        assert!(!result.responses.is_empty());
        let stats = r.cache_stats();
        stats.gpu_hit_tokens + stats.cpu_hit_tokens
    };
    let affine = hit_tokens(RouterPolicy::CacheAware);
    let scattered = hit_tokens(RouterPolicy::RoundRobin);
    assert!(
        affine > scattered,
        "cache-aware ({affine}) must beat round-robin ({scattered}) on hit tokens"
    );
}

/// A replica failure mid-run under the driver: the workload still
/// completes every turn, on the survivors.
#[test]
fn driver_survives_replica_failure() {
    let convs = DatasetSpec::sharegpt().generate(16, 6);
    let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
    let mut r = cluster(4, RouterPolicy::CacheAware, RouterConfig::default());
    r.fail_replica_at(2, SimTime::from_secs(30.0));
    let result = run_closed_loop(
        &mut r,
        &convs,
        &DriverConfig {
            request_rate: 4.0,
            mean_think_time: 5.0,
            seed: 23,
            system_prompt_tokens: 0,
        },
    );
    assert_eq!(r.alive_replicas().len(), 3);
    assert_eq!(
        result.responses.len(),
        total_turns,
        "every turn completes despite the failure"
    );
}
