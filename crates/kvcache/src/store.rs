//! Persistent raw-token store (paper Figure 7, "persistent store").
//!
//! Pensieve keeps every conversation's raw token ids durably so that
//! dropped KV chunks can be recomputed: the scheduler fetches the dropped
//! range's raw tokens and prepends them to the new prompt (§4.3.4). This
//! in-memory implementation stands in for the paper's external store; it
//! is the source of truth for conversation *text*, while the tiered
//! cache — every level of it, from GPU slots down to the simulated cold
//! object store — is only ever an optimization. (The cold tier's
//! *manifests* live separately in [`crate::manifest::ColdObjectStore`];
//! this store holds the tokens themselves.)

use std::collections::BTreeMap;

use crate::tiered::CacheError;
use crate::types::SessionId;

/// Durable store of each conversation's full raw-token history.
///
/// Keyed by a `BTreeMap` so any future iteration over the store is
/// deterministic by construction (the replay/recomputation paths are
/// bit-identity tested).
#[derive(Debug, Default)]
pub struct RawTokenStore {
    convs: BTreeMap<SessionId, Vec<u32>>,
}

impl RawTokenStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends tokens to a conversation's history, creating it on first
    /// use.
    pub fn append(&mut self, conv: SessionId, tokens: &[u32]) {
        self.convs
            .entry(conv)
            .or_default()
            .extend_from_slice(tokens);
    }

    /// Total stored tokens for a conversation (0 if unknown).
    #[must_use]
    pub fn len(&self, conv: SessionId) -> usize {
        self.convs.get(&conv).map_or(0, Vec::len)
    }

    /// True if the conversation has no stored tokens.
    #[must_use]
    pub fn is_empty(&self, conv: SessionId) -> bool {
        self.len(conv) == 0
    }

    /// Fetches the raw tokens in `range` (for dropped-chunk recomputation).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownConversation`] for a never-stored
    /// conversation and [`CacheError::HistoryRangeOutOfBounds`] when the
    /// range exceeds the stored history — the store is durable, so both
    /// indicate a scheduler logic error the caller must surface, not a
    /// panic.
    pub fn fetch(
        &self,
        conv: SessionId,
        range: std::ops::Range<usize>,
    ) -> Result<&[u32], CacheError> {
        let hist = self
            .convs
            .get(&conv)
            .ok_or(CacheError::UnknownConversation(conv))?;
        hist.get(range.clone())
            .ok_or(CacheError::HistoryRangeOutOfBounds {
                conv,
                end: range.end,
                len: hist.len(),
            })
    }

    /// Removes a conversation's history entirely (end of conversation).
    pub fn remove(&mut self, conv: SessionId) {
        self.convs.remove(&conv);
    }

    /// Number of tracked conversations.
    #[must_use]
    pub fn num_conversations(&self) -> usize {
        self.convs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_fetch_ranges() {
        let mut s = RawTokenStore::new();
        let c = SessionId(1);
        s.append(c, &[1, 2, 3]);
        s.append(c, &[4, 5]);
        assert_eq!(s.len(c), 5);
        assert_eq!(s.fetch(c, 1..4).unwrap(), &[2, 3, 4]);
        assert_eq!(s.fetch(c, 0..0).unwrap(), &[] as &[u32]);
    }

    #[test]
    fn unknown_conversation_is_empty() {
        let s = RawTokenStore::new();
        assert!(s.is_empty(SessionId(9)));
        assert_eq!(s.len(SessionId(9)), 0);
    }

    #[test]
    fn fetch_unknown_is_a_typed_error() {
        let s = RawTokenStore::new();
        assert!(matches!(
            s.fetch(SessionId(9), 0..1),
            Err(CacheError::UnknownConversation(SessionId(9)))
        ));
    }

    #[test]
    fn fetch_past_history_is_a_typed_error() {
        let mut s = RawTokenStore::new();
        let c = SessionId(3);
        s.append(c, &[1, 2]);
        assert!(matches!(
            s.fetch(c, 0..5),
            Err(CacheError::HistoryRangeOutOfBounds { end: 5, len: 2, .. })
        ));
    }

    #[test]
    fn remove_forgets_history() {
        let mut s = RawTokenStore::new();
        let c = SessionId(2);
        s.append(c, &[7]);
        assert_eq!(s.num_conversations(), 1);
        s.remove(c);
        assert_eq!(s.num_conversations(), 0);
        assert!(s.is_empty(c));
    }
}
