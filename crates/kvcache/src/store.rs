//! Persistent raw-token store (paper Figure 7, "persistent store"),
//! deduplicated by content-addressed chunks.
//!
//! Pensieve keeps every conversation's raw token ids durably so that
//! dropped KV chunks can be recomputed: the scheduler reads the dropped
//! range's raw tokens and prepends them to the new prompt (§4.3.4). This
//! in-memory implementation stands in for the paper's external store; it
//! is the source of truth for conversation *text*, while the tiered
//! cache — every level of it, from GPU slots down to the simulated cold
//! object store — is only ever an optimization. (The cold tier's
//! *manifests* live separately in [`crate::manifest::ColdObjectStore`];
//! this store holds the tokens themselves.)
//!
//! Storage is chunked and content-addressed: each conversation owns a
//! chain of refcounted [`ChunkId`]s plus a private unsealed tail, so N
//! conversations sharing a tool preamble — or forked from one history —
//! store the shared tokens once. There is no session-keyed `fetch`
//! returning a contiguous slice; callers read through a [`SessionView`],
//! which composes the shared chain and the tail back into logical
//! history order.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::tiered::CacheError;
use crate::types::{ChunkId, SessionId};

/// One physical chunk of raw tokens, shared by every conversation whose
/// chain references it.
#[derive(Debug, Clone)]
struct StoredChunk {
    tokens: Vec<u32>,
    refs: usize,
}

/// A conversation's logical history: a chain of sealed shared chunks
/// plus a private unsealed tail (the not-yet-chunk-aligned suffix).
#[derive(Debug, Clone, Default)]
struct ConvTokens {
    chain: Vec<ChunkId>,
    tail: Vec<u32>,
}

/// Durable, deduplicated store of each conversation's raw-token history.
///
/// Keyed by `BTreeMap`s so any iteration over the store is deterministic
/// by construction (the replay/recomputation paths are bit-identity
/// tested). Chunks are sealed at `chunk_tokens` tokens and keyed by
/// [`ChunkId::derive`], so identical prefixes collapse to one copy with
/// a reference count; a chunk is garbage-collected when its last
/// referencing conversation is removed.
#[derive(Debug)]
pub struct TokenChunkStore {
    chunk_tokens: usize,
    chunks: BTreeMap<ChunkId, StoredChunk>,
    convs: BTreeMap<SessionId, ConvTokens>,
}

/// Read-only composed view of one conversation's logical token history,
/// in order: sealed shared chunks first, then the private tail.
///
/// This is the only read surface the store offers — it replaces the old
/// session-keyed `fetch` that handed out a contiguous private slice and
/// therefore could not represent shared storage.
#[derive(Debug, Clone)]
pub struct SessionView<'a> {
    conv: SessionId,
    chunks: Vec<&'a [u32]>,
    tail: &'a [u32],
}

impl TokenChunkStore {
    /// Creates an empty store sealing chunks at `chunk_tokens` tokens.
    #[must_use]
    pub fn new(chunk_tokens: usize) -> Self {
        TokenChunkStore {
            chunk_tokens: chunk_tokens.max(1),
            chunks: BTreeMap::new(),
            convs: BTreeMap::new(),
        }
    }

    /// Appends tokens to a conversation's history, creating it on first
    /// use. Full chunks are sealed and content-addressed as they fill;
    /// identical prefixes across conversations share one stored copy.
    pub fn append(&mut self, conv: SessionId, tokens: &[u32]) {
        let entry = self.convs.entry(conv).or_default();
        entry.tail.extend_from_slice(tokens);
        while entry.tail.len() >= self.chunk_tokens {
            let rest = entry.tail.split_off(self.chunk_tokens);
            let sealed = std::mem::replace(&mut entry.tail, rest);
            let parent = entry.chain.last().copied().unwrap_or(ChunkId::ROOT);
            let id = ChunkId::derive(parent, &sealed);
            entry.chain.push(id);
            self.chunks
                .entry(id)
                .or_insert_with(|| StoredChunk {
                    tokens: sealed,
                    refs: 0,
                })
                .refs += 1;
        }
    }

    /// Total stored tokens for a conversation (0 if unknown).
    #[must_use]
    pub fn len(&self, conv: SessionId) -> usize {
        self.convs.get(&conv).map_or(0, |c| {
            c.chain.len() * self.chunk_tokens + c.tail.len()
        })
    }

    /// True if the conversation has no stored tokens.
    #[must_use]
    pub fn is_empty(&self, conv: SessionId) -> bool {
        self.len(conv) == 0
    }

    /// Opens a composed read view of the conversation's logical history.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownConversation`] for a never-stored
    /// conversation, and [`CacheError::UnknownChunk`] if the chain
    /// references a chunk the store no longer holds (a refcount logic
    /// error the caller must surface, not a panic).
    pub fn view(&self, conv: SessionId) -> Result<SessionView<'_>, CacheError> {
        let entry = self
            .convs
            .get(&conv)
            .ok_or(CacheError::UnknownConversation(conv))?;
        let mut chunks = Vec::with_capacity(entry.chain.len());
        for id in &entry.chain {
            let chunk = self.chunks.get(id).ok_or(CacheError::UnknownChunk(*id))?;
            chunks.push(chunk.tokens.as_slice());
        }
        Ok(SessionView {
            conv,
            chunks,
            tail: &entry.tail,
        })
    }

    /// Forks `parent`'s full history into a new conversation `child`:
    /// the sealed chain is shared by reference (each chunk's refcount
    /// increments — no tokens are copied) and the unsealed tail is
    /// cloned, after which the two histories diverge independently.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownConversation`] if `parent` is not stored;
    /// [`CacheError::SessionExists`] if `child` already is.
    pub fn fork(&mut self, parent: SessionId, child: SessionId) -> Result<(), CacheError> {
        if self.convs.contains_key(&child) {
            return Err(CacheError::SessionExists(child));
        }
        let src = self
            .convs
            .get(&parent)
            .ok_or(CacheError::UnknownConversation(parent))?
            .clone();
        for id in &src.chain {
            if let Some(chunk) = self.chunks.get_mut(id) {
                chunk.refs += 1;
            }
        }
        self.convs.insert(child, src);
        Ok(())
    }

    /// Removes a conversation's history (end of conversation), releasing
    /// its chain references; chunks no other conversation references are
    /// garbage-collected.
    pub fn remove(&mut self, conv: SessionId) {
        let Some(entry) = self.convs.remove(&conv) else {
            return;
        };
        for id in entry.chain {
            if let Some(chunk) = self.chunks.get_mut(&id) {
                chunk.refs = chunk.refs.saturating_sub(1);
                if chunk.refs == 0 {
                    self.chunks.remove(&id);
                }
            }
        }
    }

    /// Number of tracked conversations.
    #[must_use]
    pub fn num_conversations(&self) -> usize {
        self.convs.len()
    }

    /// Tokens physically stored: each shared chunk counted once, plus
    /// every conversation's private tail.
    #[must_use]
    pub fn physical_tokens(&self) -> usize {
        let sealed: usize = self.chunks.values().map(|c| c.tokens.len()).sum();
        let tails: usize = self.convs.values().map(|c| c.tail.len()).sum();
        sealed + tails
    }

    /// Tokens logically stored: the sum of every conversation's history
    /// length. `logical / physical` is the store's dedup factor.
    #[must_use]
    pub fn logical_tokens(&self) -> usize {
        self.convs.keys().map(|&c| self.len(c)).sum()
    }

    /// Reference count of a stored chunk (0 if unknown).
    #[must_use]
    pub fn chunk_refs(&self, id: ChunkId) -> usize {
        self.chunks.get(&id).map_or(0, |c| c.refs)
    }
}

impl SessionView<'_> {
    /// Logical tokens visible through the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum::<usize>() + self.tail.len()
    }

    /// True when the conversation has no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the tokens in logical `range` out of the composed history
    /// (for dropped-chunk recomputation).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::HistoryRangeOutOfBounds`] when the range
    /// exceeds the stored history — the store is durable, so this
    /// indicates a scheduler logic error the caller must surface, not a
    /// panic.
    pub fn slice(&self, range: Range<usize>) -> Result<Vec<u32>, CacheError> {
        let len = self.len();
        if range.end > len || range.start > range.end {
            return Err(CacheError::HistoryRangeOutOfBounds {
                conv: self.conv,
                end: range.end,
                len,
            });
        }
        let mut out = Vec::with_capacity(range.end - range.start);
        let mut at = 0usize;
        for part in self.chunks.iter().copied().chain([self.tail]) {
            let part_range = at..at + part.len();
            let lo = range.start.max(part_range.start);
            let hi = range.end.min(part_range.end);
            if lo < hi {
                if let Some(s) = part.get(lo - at..hi - at) {
                    out.extend_from_slice(s);
                }
            }
            at = part_range.end;
        }
        Ok(out)
    }

    /// Copies the full logical history out of the view.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        for part in self.chunks.iter().copied().chain([self.tail]) {
            out.extend_from_slice(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_slice_ranges() {
        let mut s = TokenChunkStore::new(2);
        let c = SessionId(1);
        s.append(c, &[1, 2, 3]);
        s.append(c, &[4, 5]);
        assert_eq!(s.len(c), 5);
        let v = s.view(c).unwrap();
        assert_eq!(v.slice(1..4).unwrap(), vec![2, 3, 4]);
        assert_eq!(v.slice(0..0).unwrap(), Vec::<u32>::new());
        assert_eq!(v.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn unknown_conversation_is_empty() {
        let s = TokenChunkStore::new(4);
        assert!(s.is_empty(SessionId(9)));
        assert_eq!(s.len(SessionId(9)), 0);
        assert!(matches!(
            s.view(SessionId(9)),
            Err(CacheError::UnknownConversation(SessionId(9)))
        ));
    }

    #[test]
    fn slice_past_history_is_a_typed_error() {
        let mut s = TokenChunkStore::new(2);
        let c = SessionId(3);
        s.append(c, &[1, 2]);
        assert!(matches!(
            s.view(c).unwrap().slice(0..5),
            Err(CacheError::HistoryRangeOutOfBounds { end: 5, len: 2, .. })
        ));
    }

    #[test]
    fn identical_prefixes_share_physical_chunks() {
        let mut s = TokenChunkStore::new(2);
        s.append(SessionId(1), &[7, 8, 9, 10, 1]);
        s.append(SessionId(2), &[7, 8, 9, 10, 2]);
        // Two sealed chunks stored once each, two one-token tails.
        assert_eq!(s.physical_tokens(), 4 + 2);
        assert_eq!(s.logical_tokens(), 10);
        let first = ChunkId::derive(ChunkId::ROOT, &[7, 8]);
        assert_eq!(s.chunk_refs(first), 2);
    }

    #[test]
    fn fork_shares_the_chain_then_diverges() {
        let mut s = TokenChunkStore::new(2);
        let (p, f) = (SessionId(1), SessionId(2));
        s.append(p, &[1, 2, 3, 4, 5]);
        s.fork(p, f).unwrap();
        assert_eq!(s.view(f).unwrap().to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(s.physical_tokens(), 4 + 2); // chain shared, tail cloned
        s.append(f, &[6]);
        s.append(p, &[7]);
        assert_eq!(s.view(f).unwrap().to_vec(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(s.view(p).unwrap().to_vec(), vec![1, 2, 3, 4, 5, 7]);
        assert!(matches!(s.fork(p, f), Err(CacheError::SessionExists(_))));
        assert!(matches!(
            s.fork(SessionId(9), SessionId(10)),
            Err(CacheError::UnknownConversation(_))
        ));
    }

    #[test]
    fn remove_releases_refs_and_collects_unshared_chunks() {
        let mut s = TokenChunkStore::new(2);
        let (p, f) = (SessionId(1), SessionId(2));
        s.append(p, &[1, 2, 3, 4]);
        s.fork(p, f).unwrap();
        let first = ChunkId::derive(ChunkId::ROOT, &[1, 2]);
        assert_eq!(s.chunk_refs(first), 2);
        s.remove(p);
        assert_eq!(s.chunk_refs(first), 1, "survivor keeps the chunk alive");
        assert_eq!(s.view(f).unwrap().to_vec(), vec![1, 2, 3, 4]);
        s.remove(f);
        assert_eq!(s.chunk_refs(first), 0, "last release collects it");
        assert_eq!(s.physical_tokens(), 0);
        assert_eq!(s.num_conversations(), 0);
    }
}
