//! The tiered KV cache manager (§4.3), deepened below the CPU with the
//! SSD and cold storage tiers of `docs/STORAGE.md`.
//!
//! [`TieredKvCache`] tracks every active conversation's chunks across the
//! storage hierarchy (GPU-resident, lazily-copied, CPU-resident,
//! SSD-resident, cold-resident, dropped) and makes the paper's decisions:
//!
//! 1. **Ahead-of-time swap-out** (§4.3.2): when strictly-free GPU slots
//!    fall below the 25 % watermark, chunks chosen by the eviction policy
//!    are *copied* to the CPU tier ([`Tier::GpuCopied`]). Their GPU slots
//!    are reclaimed lazily — only when another allocation actually needs
//!    them — so a conversation that returns quickly gets its context back
//!    without any transfer ("revalidation").
//! 2. **Cross-tier demotion** (generalizing the paper's §4.3.4 dropping):
//!    when the CPU tier is full, the same retention-value policy chooses
//!    victims, but instead of dropping them outright each victim is
//!    demoted one tier down — CPU→SSD, SSD→cold — and only falls off the
//!    bottom of the hierarchy when the cold tier itself is full. With the
//!    deep tiers disabled (capacity `0`, the default), demotion reduces
//!    to the paper's two-tier dropping behaviour exactly.
//! 3. **Restore planning**: a returning conversation's context is split
//!    into generalized Figure-5 segments — dropped prefix (recompute),
//!    deep-tier and CPU middles (read back / swap in), GPU tail (hit) —
//!    and committed once the scheduler has verified GPU space.
//! 4. **Rehydration**: a restarted or failed-over replica can rebuild a
//!    session's chunks in the cold tier from a persisted manifest (see
//!    [`crate::manifest`]) via [`TieredKvCache::rehydrate_session`],
//!    turning a full recompute into cold reads.
//!
//! All quantities are in tokens; byte conversion and transfer timing are
//! the simulator's job (`pensieve_sim::storage` models the deep-tier
//! devices), physical KV bytes the functional engine's.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use pensieve_model::SimTime;
use pensieve_obs::{DropReason, Recorder as _, SharedRecorder, StorageTier, TraceEvent};

use crate::manifest::ManifestChunk;
use crate::policy::{EvictionPolicy, Granularity, LruPolicy, WithinOrder};
use crate::prefix::PrefixIndex;
use crate::stats::CacheStats;
use crate::types::{CacheConfig, ChunkId, ChunkState, SessionId, Tier};

/// Handles dropped without being released through
/// [`TieredKvCache::release`] — the leak-check counterpart of the
/// refcount errors. Global across caches (handles are just ids).
static LEAKED_HANDLES: AtomicU64 = AtomicU64::new(0);

/// Number of [`ChunkHandle`]s ever dropped without a matching
/// [`TieredKvCache::release`]. Test harnesses assert this stays zero;
/// the analyzer's leak lint points here.
#[must_use]
pub fn leaked_chunk_handles() -> u64 {
    LEAKED_HANDLES.load(Ordering::Relaxed)
}

/// Error from cache operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// Not enough effectively-free GPU slots for the request.
    OutOfGpu {
        /// Tokens requested.
        needed: usize,
        /// Tokens effectively free (counting reclaimable copies).
        free: usize,
    },
    /// The conversation is not tracked by the cache.
    UnknownConversation(SessionId),
    /// The addressed chunk holds no CPU-tier copy, so a CPU-tier fault
    /// cannot apply to it.
    ChunkNotInCpuTier {
        /// Owning conversation.
        conv: SessionId,
        /// Chunk index within the conversation.
        chunk: usize,
    },
    /// An imported session is already tracked by this cache; a handoff
    /// target must not hold prior state for the session.
    SessionExists(SessionId),
    /// A raw-token fetch addressed tokens beyond the stored history.
    HistoryRangeOutOfBounds {
        /// Owning conversation.
        conv: SessionId,
        /// One past the last requested token.
        end: usize,
        /// Stored history length.
        len: usize,
    },
    /// A shared-chunk operation addressed a chunk id the cache does not
    /// hold.
    UnknownChunk(ChunkId),
    /// A shared chunk's reference count would overflow — acquisitions
    /// are unbalanced by a full `u32::MAX` of missing releases.
    RefCountOverflow(ChunkId),
    /// A release was issued against a shared chunk with no outstanding
    /// matching acquire — a double release.
    RefCountUnderflow(ChunkId),
    /// A shared chunk chain's context offsets do not line up — the ids
    /// are not consecutive chunks of one prefix.
    BrokenSharedChain(ChunkId),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::OutOfGpu { needed, free } => {
                write!(f, "out of GPU KV slots: need {needed}, free {free}")
            }
            CacheError::UnknownConversation(c) => {
                write!(f, "unknown conversation {c:?}")
            }
            CacheError::ChunkNotInCpuTier { conv, chunk } => {
                write!(f, "chunk {chunk} of {conv:?} has no CPU-tier copy")
            }
            CacheError::SessionExists(c) => {
                write!(f, "session {c:?} already tracked by this cache")
            }
            CacheError::HistoryRangeOutOfBounds { conv, end, len } => {
                write!(
                    f,
                    "raw-token fetch past stored history of {conv:?}: end {end}, stored {len}"
                )
            }
            CacheError::UnknownChunk(id) => {
                write!(f, "unknown shared chunk {id:?}")
            }
            CacheError::RefCountOverflow(id) => {
                write!(f, "reference count overflow on shared chunk {id:?}")
            }
            CacheError::RefCountUnderflow(id) => {
                write!(f, "release without matching acquire on shared chunk {id:?}")
            }
            CacheError::BrokenSharedChain(id) => {
                write!(f, "shared chunk {id:?} breaks its chain's context continuity")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Portable snapshot of one session's chunk layout, produced by
/// [`TieredKvCache::export_session`] for KV handoff between replicas.
///
/// Resident tiers are normalized to [`Tier::Cpu`] — handoffs stream from
/// host memory, never device-to-device — while [`Tier::Dropped`] chunks
/// carry no bytes and survive only as recompute obligations. A router
/// models the inter-node transfer chunk by chunk and calls
/// [`SessionExport::mark_lost`] for any chunk the link loses, before
/// handing the snapshot to [`TieredKvCache::import_session`] on the
/// target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionExport {
    /// The exported session.
    pub session: SessionId,
    /// The session's leading shared chunk chain, *by reference*: shared
    /// chunks are content-addressed, so migration ships their ids, and
    /// the target re-attaches any chunk it already holds instead of
    /// streaming bytes. Ids the target does not hold become recompute
    /// obligations.
    pub shared: Vec<SharedChunkRef>,
    /// Private chunk states in context order (after the shared chain).
    pub chunks: Vec<ChunkState>,
}

/// One entry of a [`SessionExport`]'s shared chain: the chunk's
/// content-addressed identity plus its token count (so a target that
/// does not hold the chunk knows the size of the recompute obligation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedChunkRef {
    /// Content-addressed id.
    pub id: ChunkId,
    /// Tokens in the chunk.
    pub tokens: usize,
}

impl SessionExport {
    /// Tokens that carry KV bytes and must be streamed to the target.
    #[must_use]
    pub fn streamable_tokens(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.tier != Tier::Dropped)
            .map(|c| c.tokens)
            .sum()
    }

    /// Tokens already lost: recompute obligations at the target.
    #[must_use]
    pub fn dropped_tokens(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.tier == Tier::Dropped)
            .map(|c| c.tokens)
            .sum()
    }

    /// Marks chunk `index` as lost in transit ([`Tier::Dropped`]).
    /// Returns the tokens affected (0 if out of range or already
    /// dropped).
    pub fn mark_lost(&mut self, index: usize) -> usize {
        match self.chunks.get_mut(index) {
            Some(c) if c.tier != Tier::Dropped => {
                c.tier = Tier::Dropped;
                c.tokens
            }
            _ => 0,
        }
    }
}

/// One chunk chosen for ahead-of-time swap-out (GPU -> CPU copy), or for
/// direct dropping when the CPU tier cannot hold it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOutOp {
    /// Owning conversation. Meaningless (zero) when `shared` is set — a
    /// shared chunk has sharers, not an owner.
    pub conv: SessionId,
    /// Chunk index within the conversation. Meaningless (zero) when
    /// `shared` is set.
    pub chunk: usize,
    /// Tokens to copy.
    pub tokens: usize,
    /// True if the chunk was dropped instead of copied (no CPU space).
    pub dropped: bool,
    /// Set when the evicted chunk is a content-addressed shared chunk.
    pub shared: Option<ChunkId>,
}

/// Restore plan for a returning conversation (paper Figure 5,
/// generalized to the deep storage hierarchy).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestPlan {
    /// Tokens still resident in the GPU tier (free hits).
    pub gpu_hit_tokens: usize,
    /// Lazily-copied tokens revalidated in place (free hits).
    pub revalidate_tokens: usize,
    /// Tokens to transfer CPU -> GPU.
    pub swap_in_tokens: usize,
    /// Tokens to read back from the SSD tier (through the CPU staging
    /// path, then over PCIe).
    pub ssd_read_tokens: usize,
    /// Tokens to read back from the cold store (slowest path).
    pub cold_read_tokens: usize,
    /// Dropped tokens to recompute from raw text.
    pub recompute_tokens: usize,
    /// Of all the tokens above, how many were served from the
    /// conversation's *shared* chunk chain (any resident tier) — the
    /// cross-conversation sharing win, also counted in
    /// [`CacheStats::shared_hit_tokens`] at commit.
    pub shared_hit_tokens: usize,
    /// Token ranges, in context order, with the tier they were found in.
    /// `Tier::Dropped` ranges become recompute sub-requests.
    pub segments: Vec<(Range<usize>, Tier)>,
}

impl RequestPlan {
    /// New GPU slots this restore will occupy (swap-ins, deep-tier reads
    /// and recomputes).
    #[must_use]
    pub fn new_gpu_slots(&self) -> usize {
        self.swap_in_tokens + self.ssd_read_tokens + self.cold_read_tokens + self.recompute_tokens
    }

    /// Tokens read back from the deep (SSD + cold) tiers.
    #[must_use]
    pub fn deep_read_tokens(&self) -> usize {
        self.ssd_read_tokens + self.cold_read_tokens
    }

    /// Token ranges that must be recomputed, in ascending order.
    #[must_use]
    pub fn recompute_ranges(&self) -> Vec<Range<usize>> {
        self.segments
            .iter()
            .filter(|(_, t)| *t == Tier::Dropped)
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// True if the whole context was GPU-resident (or empty).
    #[must_use]
    pub fn is_full_gpu_hit(&self) -> bool {
        self.swap_in_tokens == 0 && self.deep_read_tokens() == 0 && self.recompute_tokens == 0
    }
}

/// One eviction victim: a conversation-private chunk or a shared chunk.
/// The derived order (`Conv` before `Shared`, then by id) is the
/// deterministic tie-break among equal policy scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Victim {
    /// Private chunk `index` of a conversation.
    Conv(SessionId, usize),
    /// A content-addressed shared chunk.
    Shared(ChunkId),
}

/// Caller-held eviction-candidate snapshots, one per host-side tier.
/// Each is collected lazily and at most once per eviction pass, then
/// consumed from the front with entries re-validated at use — the same
/// O(n log n)-per-pass discipline the two-tier drop queue used.
#[derive(Default)]
struct EvictQueues {
    cpu: Option<std::collections::VecDeque<Victim>>,
    ssd: Option<std::collections::VecDeque<Victim>>,
    cold: Option<std::collections::VecDeque<Victim>>,
}

/// One physical, content-addressed, reference-counted chunk shared
/// across conversations. Shared chunks never enter [`Tier::GpuCopied`]:
/// lazy reclamation is a per-conversation return-soon bet that has no
/// owner to bet on here, so GPU eviction moves them straight to the CPU
/// tier.
#[derive(Debug, Clone)]
struct SharedChunk {
    /// Tokens in the chunk.
    tokens: usize,
    /// Context length at the chunk's end within its chain.
    context_end: usize,
    /// Current tier (never [`Tier::GpuCopied`]).
    tier: Tier,
    /// Total references: chain memberships across conversations plus
    /// outstanding [`ChunkHandle`]s.
    refs: usize,
    /// Outstanding explicitly-acquired [`ChunkHandle`]s (a subset of
    /// `refs`), tracked separately so releases can be validated.
    external_refs: usize,
    /// References held by *pinned* (running-batch) conversations; a
    /// chunk with any is exempt from eviction.
    pinned_refs: usize,
    /// True for globally-materialized chunks (e.g. the deployment-wide
    /// tool preamble): exempt from eviction regardless of refs.
    global: bool,
    /// Last time any sharer touched the chunk.
    last_active: SimTime,
}

/// RAII guard for an explicit shared-chunk reference, returned by
/// [`TieredKvCache::acquire`] and [`TieredKvCache::materialize_global`].
///
/// The guard must be given back via [`TieredKvCache::release`] — the
/// cache owns the refcount, so the guard cannot decrement it on `Drop`.
/// Dropping an unreleased handle is *leak-checked* instead: it
/// increments the process-wide [`leaked_chunk_handles`] counter, which
/// tests and the analyzer's leak lint pin to zero.
#[derive(Debug)]
pub struct ChunkHandle {
    id: ChunkId,
    armed: bool,
}

impl ChunkHandle {
    /// The referenced chunk's content-addressed id.
    #[must_use]
    pub fn id(&self) -> ChunkId {
        self.id
    }
}

impl Drop for ChunkHandle {
    fn drop(&mut self) {
        if self.armed {
            LEAKED_HANDLES.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct ConvEntry {
    /// Leading shared chunk chain (ids into the cache's shared pool).
    shared: Vec<ChunkId>,
    /// Tokens covered by `shared`; private chunk positions start here.
    shared_tokens: usize,
    /// Conversation-private chunks, after the shared chain.
    chunks: Vec<ChunkState>,
    last_active: SimTime,
    pinned: bool,
}

impl ConvEntry {
    /// Private (non-shared) tokens.
    fn private_tokens(&self) -> usize {
        self.chunks.iter().map(|c| c.tokens).sum()
    }

    /// Logical context tokens: shared chain + private chunks.
    fn total_tokens(&self) -> usize {
        self.shared_tokens + self.private_tokens()
    }
}

/// The tiered cache manager.
///
/// # Examples
///
/// ```
/// use pensieve_kvcache::{CacheConfig, SessionId, LruPolicy, TieredKvCache};
/// use pensieve_model::SimTime;
///
/// let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, 1024, 4096))
///     .policy(Box::new(LruPolicy))
///     .build();
/// let conv = SessionId(1);
/// // A first turn appends its prompt + outputs to the GPU tier.
/// cache.append_tokens(conv, 300, SimTime::from_secs(0.0)).unwrap();
/// cache.unpin(conv);
/// // When the conversation returns, the whole context is a GPU hit.
/// let plan = cache.commit_restore(conv, SimTime::from_secs(30.0)).unwrap();
/// assert!(plan.is_full_gpu_hit());
/// assert_eq!(plan.gpu_hit_tokens, 300);
/// ```
pub struct TieredKvCache {
    cfg: CacheConfig,
    policy: Box<dyn EvictionPolicy>,
    convs: BTreeMap<SessionId, ConvEntry>,
    /// Tokens in `Tier::Gpu`.
    gpu_resident: usize,
    /// Tokens in `Tier::GpuCopied` (occupy a GPU slot *and* CPU space).
    gpu_copied: usize,
    /// Tokens in `Tier::Cpu`.
    cpu_resident: usize,
    /// Tokens in `Tier::Ssd` (the tier-2 simulated NVMe).
    ssd_resident: usize,
    /// Tokens in `Tier::Cold` (the tier-3 simulated NFS/object store).
    cold_resident: usize,
    /// Lazily-copied chunks in copy order, for O(1) slot reclamation.
    /// Entries are validated at pop (a chunk may have been revalidated or
    /// suspended since).
    copied_fifo: std::collections::VecDeque<(SessionId, usize)>,
    /// Commit log for KV replication: sessions whose committed *private*
    /// context grew since the last [`TieredKvCache::take_commits`] drain,
    /// mapped to their new private token count (shared chunks are
    /// attached by id at the standby, never byte-streamed). Bounded by
    /// the session count (one entry per session, overwritten on every
    /// append).
    commit_log: BTreeMap<SessionId, usize>,
    /// Pool of content-addressed shared chunks, keyed by id.
    shared: BTreeMap<ChunkId, SharedChunk>,
    /// Radix index from token prefixes to shared chunk chains.
    index: PrefixIndex,
    stats: CacheStats,
    /// Passive trace sink; `None` (the default) records nothing.
    recorder: Option<SharedRecorder>,
}

/// Builder for [`TieredKvCache`] — the only public construction path.
///
/// # Examples
///
/// ```
/// use pensieve_kvcache::{CacheConfig, TieredKvCache};
///
/// let cache = TieredKvCache::builder(CacheConfig::for_test(32, 2048, 8192))
///     .deep_tiers(16_384, 65_536)
///     .build();
/// assert_eq!(cache.config().ssd_capacity_tokens, 16_384);
/// ```
pub struct TieredKvCacheBuilder {
    cfg: CacheConfig,
    policy: Box<dyn EvictionPolicy>,
    recorder: Option<SharedRecorder>,
}

impl TieredKvCacheBuilder {
    /// Sets the eviction policy (default: [`LruPolicy`]).
    #[must_use]
    pub fn policy(mut self, policy: Box<dyn EvictionPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the SSD (tier-2) and cold (tier-3) capacities, in tokens;
    /// `0` leaves the corresponding tier off. Shorthand for
    /// [`CacheConfig::with_deep_tiers`] on the builder's config.
    #[must_use]
    pub fn deep_tiers(mut self, ssd: usize, cold: usize) -> Self {
        self.cfg = self.cfg.with_deep_tiers(ssd, cold);
        self
    }

    /// Attaches a passive trace recorder from the start.
    #[must_use]
    pub fn recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the cache.
    #[must_use]
    pub fn build(self) -> TieredKvCache {
        let mut cache = TieredKvCache::new(self.cfg, self.policy);
        cache.recorder = self.recorder;
        cache
    }
}

impl fmt::Debug for TieredKvCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TieredKvCache")
            .field("conversations", &self.convs.len())
            .field("gpu_resident", &self.gpu_resident)
            .field("gpu_copied", &self.gpu_copied)
            .field("cpu_resident", &self.cpu_resident)
            .field("ssd_resident", &self.ssd_resident)
            .field("cold_resident", &self.cold_resident)
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl TieredKvCache {
    /// Starts building a cache over `cfg`; see [`TieredKvCacheBuilder`].
    #[must_use]
    pub fn builder(cfg: CacheConfig) -> TieredKvCacheBuilder {
        TieredKvCacheBuilder {
            cfg,
            policy: Box::new(LruPolicy),
            recorder: None,
        }
    }

    /// Creates a cache with the given capacities and eviction policy
    /// (crate-internal; public construction goes through
    /// [`TieredKvCache::builder`]).
    fn new(cfg: CacheConfig, policy: Box<dyn EvictionPolicy>) -> Self {
        let chunk_tokens = cfg.chunk_tokens;
        TieredKvCache {
            cfg,
            policy,
            convs: BTreeMap::new(),
            gpu_resident: 0,
            gpu_copied: 0,
            cpu_resident: 0,
            ssd_resident: 0,
            cold_resident: 0,
            copied_fifo: std::collections::VecDeque::new(),
            commit_log: BTreeMap::new(),
            shared: BTreeMap::new(),
            index: PrefixIndex::new(chunk_tokens),
            stats: CacheStats::default(),
            recorder: None,
        }
    }

    /// Attaches a trace recorder. Recording is passive: eviction, drop
    /// and restore decisions are identical with or without it.
    pub fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.recorder = recorder;
    }

    /// The cache configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// GPU slots in use (resident + lazily-copied).
    #[must_use]
    pub fn gpu_slots_used(&self) -> usize {
        self.gpu_resident + self.gpu_copied
    }

    /// Strictly free GPU slots (no reclamation needed).
    #[must_use]
    pub fn gpu_free_strict(&self) -> usize {
        self.cfg.gpu_capacity_tokens - self.gpu_slots_used()
    }

    /// Effectively free GPU slots: strictly free plus lazily-reclaimable
    /// copies.
    #[must_use]
    pub fn gpu_free_effective(&self) -> usize {
        self.cfg.gpu_capacity_tokens - self.gpu_resident
    }

    /// CPU tokens in use (CPU-resident + lazy copies).
    #[must_use]
    pub fn cpu_used(&self) -> usize {
        self.cpu_resident + self.gpu_copied
    }

    /// SSD (tier-2) tokens in use.
    #[must_use]
    pub fn ssd_used(&self) -> usize {
        self.ssd_resident
    }

    /// Cold-store (tier-3) tokens in use.
    #[must_use]
    pub fn cold_used(&self) -> usize {
        self.cold_resident
    }

    /// Lazily-copied tokens belonging to `conv`.
    fn copied_tokens_of(&self, conv: SessionId) -> usize {
        self.convs.get(&conv).map_or(0, |e| {
            e.chunks
                .iter()
                .filter(|c| c.tier == Tier::GpuCopied)
                .map(|c| c.tokens)
                .sum()
        })
    }

    /// GPU tokens effectively free for *new allocations of `conv`*:
    /// strictly free slots plus copies reclaimable from other
    /// conversations. `conv`'s own lazy copies are excluded — they are
    /// revalidated in place on restore, not reclaimed, so they cannot
    /// back new slots.
    #[must_use]
    pub fn gpu_free_effective_for(&self, conv: SessionId) -> usize {
        self.gpu_free_effective() - self.copied_tokens_of(conv)
    }

    /// Tokens of `conv` currently tracked (0 if unknown).
    #[must_use]
    pub fn conversation_tokens(&self, conv: SessionId) -> usize {
        self.convs.get(&conv).map_or(0, ConvEntry::total_tokens)
    }

    /// All tracked conversations, in ascending id order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionId> {
        self.convs.keys().copied().collect()
    }

    /// Per-chunk manifest entries of `conv` in context order, regardless
    /// of tier (a dropped chunk still shapes the layout): the shared
    /// chain's content-addressed ids first, then private chunks as
    /// [`ChunkId::NONE`]. Empty for unknown conversations. This is what
    /// a cold-tier manifest records.
    #[must_use]
    pub fn manifest_chunks(&self, conv: SessionId) -> Vec<ManifestChunk> {
        let Some(e) = self.convs.get(&conv) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(e.shared.len() + e.chunks.len());
        for id in &e.shared {
            let tokens = self.shared.get(id).map_or(0, |s| s.tokens);
            out.push(ManifestChunk { id: *id, tokens });
        }
        for c in &e.chunks {
            out.push(ManifestChunk {
                id: ChunkId::NONE,
                tokens: c.tokens,
            });
        }
        out
    }

    /// True if the conversation has tracked context.
    #[must_use]
    pub fn contains(&self, conv: SessionId) -> bool {
        self.convs.contains_key(&conv)
    }

    /// Marks a conversation as part of the running batch: its chunks are
    /// exempt from eviction.
    pub fn pin(&mut self, conv: SessionId) {
        self.set_pinned(conv, true);
    }

    /// Clears the running-batch pin.
    pub fn unpin(&mut self, conv: SessionId) {
        self.set_pinned(conv, false);
    }

    /// Central pin transition: keeps each shared chunk's pinned-sharer
    /// refcount consistent by adjusting it exactly once per state change.
    fn set_pinned(&mut self, conv: SessionId, pinned: bool) {
        let Some(e) = self.convs.get_mut(&conv) else {
            return;
        };
        if e.pinned == pinned {
            return;
        }
        e.pinned = pinned;
        for id in e.shared.clone() {
            if let Some(s) = self.shared.get_mut(&id) {
                if pinned {
                    s.pinned_refs += 1;
                } else {
                    s.pinned_refs = s.pinned_refs.saturating_sub(1);
                }
            }
        }
    }

    /// Updates a conversation's last-active time (shared chain included).
    pub fn touch(&mut self, conv: SessionId, now: SimTime) {
        if let Some(e) = self.convs.get_mut(&conv) {
            e.last_active = now;
            for id in e.shared.clone() {
                if let Some(s) = self.shared.get_mut(&id) {
                    s.last_active = now;
                }
            }
        }
    }

    /// Computes the Figure-5 restore plan for `conv` without mutating
    /// anything: the shared chain first (in chain order), then the
    /// private chunks. Unknown conversations yield an empty plan.
    #[must_use]
    pub fn plan_restore(&self, conv: SessionId) -> RequestPlan {
        let Some(e) = self.convs.get(&conv) else {
            return RequestPlan::default();
        };
        let mut plan = RequestPlan::default();
        let mut pos = 0;
        let shared_states = e.shared.iter().filter_map(|id| {
            self.shared.get(id).map(|s| {
                (
                    ChunkState {
                        tier: s.tier,
                        tokens: s.tokens,
                        context_end: s.context_end,
                    },
                    true,
                )
            })
        });
        for (c, is_shared) in shared_states.chain(e.chunks.iter().map(|c| (*c, false))) {
            let range = pos..pos + c.tokens;
            match c.tier {
                Tier::Gpu => plan.gpu_hit_tokens += c.tokens,
                Tier::GpuCopied => plan.revalidate_tokens += c.tokens,
                Tier::Cpu => plan.swap_in_tokens += c.tokens,
                Tier::Ssd => plan.ssd_read_tokens += c.tokens,
                Tier::Cold => plan.cold_read_tokens += c.tokens,
                Tier::Dropped => plan.recompute_tokens += c.tokens,
            }
            if is_shared && c.tier != Tier::Dropped {
                plan.shared_hit_tokens += c.tokens;
            }
            // Merge adjacent ranges of the same effective segment kind
            // (GPU and GpuCopied both count as resident hits).
            let kind = match c.tier {
                Tier::Gpu | Tier::GpuCopied => Tier::Gpu,
                t => t,
            };
            match plan.segments.last_mut() {
                Some((r, t)) if *t == kind && r.end == range.start => r.end = range.end,
                _ => plan.segments.push((range, kind)),
            }
            pos += c.tokens;
        }
        plan
    }

    /// Commits a restore: revalidates lazy copies, swaps CPU chunks in,
    /// marks dropped chunks as recomputed-on-GPU, pins and touches the
    /// conversation, and updates statistics.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::OutOfGpu`] (without mutating) if the plan's
    /// new slots exceed effectively-free GPU space.
    pub fn commit_restore(
        &mut self,
        conv: SessionId,
        now: SimTime,
    ) -> Result<RequestPlan, CacheError> {
        let plan = self.plan_restore(conv);
        let needed = plan.new_gpu_slots();
        if needed > self.gpu_free_effective_for(conv) {
            return Err(CacheError::OutOfGpu {
                needed,
                free: self.gpu_free_effective_for(conv),
            });
        }
        self.reclaim_gpu_slots(needed, Some(conv));
        // Promote the shared chain first: one physical promotion serves
        // every sharer, and later sharers restore it as a free GPU hit.
        let chain = self
            .convs
            .get(&conv)
            .map_or_else(Vec::new, |e| e.shared.clone());
        for id in chain {
            let Some(s) = self.shared.get_mut(&id) else {
                continue;
            };
            match s.tier {
                Tier::Gpu => {}
                Tier::Cpu => {
                    self.cpu_resident -= s.tokens;
                    self.gpu_resident += s.tokens;
                    self.stats.swapped_in_tokens += s.tokens as u64;
                    s.tier = Tier::Gpu;
                }
                Tier::Ssd => {
                    self.ssd_resident -= s.tokens;
                    self.gpu_resident += s.tokens;
                    s.tier = Tier::Gpu;
                }
                Tier::Cold => {
                    self.cold_resident -= s.tokens;
                    self.gpu_resident += s.tokens;
                    s.tier = Tier::Gpu;
                }
                Tier::Dropped => {
                    self.gpu_resident += s.tokens;
                    s.tier = Tier::Gpu;
                }
                // Shared chunks never hold lazy GPU copies.
                Tier::GpuCopied => {}
            }
            s.last_active = now;
        }
        if let Some(e) = self.convs.get_mut(&conv) {
            for c in e.chunks.iter_mut() {
                match c.tier {
                    Tier::Gpu => {}
                    Tier::GpuCopied => {
                        // Revalidate: discard the CPU copy, keep the slot.
                        self.gpu_copied -= c.tokens;
                        self.gpu_resident += c.tokens;
                        self.stats.revalidated_tokens += c.tokens as u64;
                        c.tier = Tier::Gpu;
                    }
                    Tier::Cpu => {
                        self.cpu_resident -= c.tokens;
                        self.gpu_resident += c.tokens;
                        self.stats.swapped_in_tokens += c.tokens as u64;
                        c.tier = Tier::Gpu;
                    }
                    Tier::Ssd => {
                        self.ssd_resident -= c.tokens;
                        self.gpu_resident += c.tokens;
                        c.tier = Tier::Gpu;
                    }
                    Tier::Cold => {
                        self.cold_resident -= c.tokens;
                        self.gpu_resident += c.tokens;
                        c.tier = Tier::Gpu;
                    }
                    Tier::Dropped => {
                        self.gpu_resident += c.tokens;
                        c.tier = Tier::Gpu;
                    }
                }
            }
            e.last_active = now;
        }
        self.set_pinned(conv, true);
        self.stats.gpu_hit_tokens += (plan.gpu_hit_tokens + plan.revalidate_tokens) as u64;
        self.stats.cpu_hit_tokens += plan.swap_in_tokens as u64;
        self.stats.ssd_hit_tokens += plan.ssd_read_tokens as u64;
        self.stats.cold_hit_tokens += plan.cold_read_tokens as u64;
        self.stats.recomputed_tokens += plan.recompute_tokens as u64;
        self.stats.shared_hit_tokens += plan.shared_hit_tokens as u64;
        if plan.gpu_hit_tokens
            + plan.revalidate_tokens
            + plan.swap_in_tokens
            + plan.deep_read_tokens()
            + plan.recompute_tokens
            > 0
        {
            if plan.is_full_gpu_hit() {
                self.stats.full_gpu_hits += 1;
            } else {
                self.stats.partial_hits += 1;
            }
        }
        if self.recorder.enabled() {
            if plan.revalidate_tokens > 0 {
                self.recorder.record(TraceEvent::Revalidated {
                    at: now,
                    conv: conv.0,
                    tokens: plan.revalidate_tokens,
                });
            }
            if plan.swap_in_tokens > 0 {
                self.recorder.record(TraceEvent::SwapInCommitted {
                    at: now,
                    conv: conv.0,
                    tokens: plan.swap_in_tokens,
                });
            }
            if plan.ssd_read_tokens > 0 {
                self.recorder.record(TraceEvent::TierReadCommitted {
                    at: now,
                    conv: conv.0,
                    tokens: plan.ssd_read_tokens,
                    tier: StorageTier::Ssd,
                });
            }
            if plan.cold_read_tokens > 0 {
                self.recorder.record(TraceEvent::TierReadCommitted {
                    at: now,
                    conv: conv.0,
                    tokens: plan.cold_read_tokens,
                    tier: StorageTier::Cold,
                });
            }
            if plan.recompute_tokens > 0 {
                self.recorder.record(TraceEvent::RecomputeCommitted {
                    at: now,
                    conv: conv.0,
                    tokens: plan.recompute_tokens,
                });
            }
        }
        debug_assert!(self.check_invariants());
        Ok(plan)
    }

    /// Appends `n` freshly-computed tokens to `conv` in the GPU tier,
    /// creating the conversation if needed.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::OutOfGpu`] if effectively-free space is
    /// insufficient.
    ///
    /// # Panics
    ///
    /// Panics if the conversation's trailing chunk is not GPU-resident —
    /// callers must [`TieredKvCache::commit_restore`] first.
    pub fn append_tokens(
        &mut self,
        conv: SessionId,
        n: usize,
        now: SimTime,
    ) -> Result<(), CacheError> {
        if n > self.gpu_free_effective_for(conv) {
            return Err(CacheError::OutOfGpu {
                needed: n,
                free: self.gpu_free_effective_for(conv),
            });
        }
        self.reclaim_gpu_slots(n, Some(conv));
        let chunk_tokens = self.cfg.chunk_tokens;
        let e = self.convs.entry(conv).or_insert_with(|| ConvEntry {
            shared: Vec::new(),
            shared_tokens: 0,
            chunks: Vec::new(),
            last_active: now,
            pinned: true,
        });
        let mut remaining = n;
        let mut pos = e.total_tokens();
        while remaining > 0 {
            if let Some(last) = e.chunks.last_mut() {
                if last.tokens < chunk_tokens {
                    assert_eq!(
                        last.tier,
                        Tier::Gpu,
                        "appending into a non-resident trailing chunk"
                    );
                    let add = remaining.min(chunk_tokens - last.tokens);
                    last.tokens += add;
                    last.context_end += add;
                    pos += add;
                    remaining -= add;
                    continue;
                }
            }
            let add = remaining.min(chunk_tokens);
            e.chunks.push(ChunkState {
                tier: Tier::Gpu,
                tokens: add,
                context_end: pos + add,
            });
            pos += add;
            remaining -= add;
        }
        e.last_active = now;
        let committed = e.private_tokens();
        self.commit_log.insert(conv, committed);
        self.gpu_resident += n;
        debug_assert!(self.check_invariants());
        Ok(())
    }

    /// Drains the KV commit log: every session whose committed context
    /// grew since the previous drain, with its new total token count, in
    /// `SessionId` order. Replication streams consume this to learn what
    /// delta to ship to the standby; without a consumer the log stays
    /// bounded at one entry per live session.
    pub fn take_commits(&mut self) -> Vec<(SessionId, usize)> {
        let log = std::mem::take(&mut self.commit_log);
        log.into_iter().collect()
    }

    /// Ahead-of-time swap-out (§4.3.2): if strictly-free GPU slots are
    /// below the watermark, copies policy-chosen chunks to the CPU tier
    /// until the watermark is met or no candidate remains. Chunks that the
    /// CPU tier cannot hold (and nothing droppable remains) are dropped
    /// directly.
    ///
    /// Returns the operations performed, for transfer timing.
    pub fn maybe_swap_out(&mut self, now: SimTime) -> Vec<SwapOutOp> {
        self.swap_out_until(self.cfg.swap_trigger_tokens(), now)
    }

    /// Evicts (copies or drops) policy-chosen chunks until at least
    /// `target_free` GPU tokens are effectively free, or no candidate
    /// remains. Used both for the watermark-triggered ahead-of-time pass
    /// and for forced eviction when an admission cannot fit.
    pub fn swap_out_until(&mut self, target_free: usize, now: SimTime) -> Vec<SwapOutOp> {
        self.swap_out_until_for(target_free, None, now)
    }

    /// [`TieredKvCache::swap_out_until`] targeting the effective space
    /// available *to `for_conv`* (see
    /// [`TieredKvCache::gpu_free_effective_for`]): that conversation's own
    /// chunks are not eviction candidates, since demoting them cannot
    /// create space for its restore.
    pub fn swap_out_until_for(
        &mut self,
        target_free: usize,
        for_conv: Option<SessionId>,
        now: SimTime,
    ) -> Vec<SwapOutOp> {
        let trigger = target_free;
        let free = |cache: &Self| match for_conv {
            Some(c) => cache.gpu_free_effective_for(c),
            None => cache.gpu_free_effective(),
        };
        let mut ops = Vec::new();
        // Target *effective* free space: a copied chunk's GPU slot is
        // reclaimed lazily, so the copy itself already makes room.
        if free(self) >= trigger {
            return ops;
        }
        // One candidate collection per pass: the GPU eviction order and
        // (lazily) each lower tier's demotion order are snapshots walked
        // in sorted order, which keeps the pass O(n log n) instead of
        // O(n^2).
        let mut candidates = self.collect_candidates(Tier::Gpu, now, false);
        if let Some(c) = for_conv {
            candidates.retain(|&(v, _)| !matches!(v, Victim::Conv(conv, _) if conv == c));
        }
        let mut queues = EvictQueues::default();
        let conversation_granularity = self.policy.granularity() == Granularity::Conversation;
        let mut active_conv: Option<SessionId> = None;
        for (victim, _) in candidates {
            let finishing = conversation_granularity
                && matches!(victim, Victim::Conv(conv, _) if Some(conv) == active_conv);
            // Conversation-granularity policies finish the conversation
            // they started evicting before honoring the watermark.
            if free(self) >= trigger && !finishing {
                break;
            }
            let (conv, idx) = match victim {
                Victim::Conv(conv, idx) => (conv, idx),
                Victim::Shared(id) => {
                    // A shared GPU chunk is either moved to the CPU tier
                    // (a real transfer — every sharer still references
                    // it) or, when only unreferenced, dropped outright.
                    let Some(tokens) = self
                        .shared
                        .get(&id)
                        .filter(|s| s.tier == Tier::Gpu && s.pinned_refs == 0 && !s.global)
                        .map(|s| s.tokens)
                    else {
                        continue;
                    };
                    let copied = self.ensure_cpu_space_with(tokens, now, &mut queues);
                    let Some(s) = self.shared.get_mut(&id) else {
                        continue;
                    };
                    let refs = s.refs;
                    if copied {
                        s.tier = Tier::Cpu;
                        self.gpu_resident -= tokens;
                        self.cpu_resident += tokens;
                        self.stats.swapped_out_tokens += tokens as u64;
                    } else if refs == 0 {
                        s.tier = Tier::Dropped;
                        self.gpu_resident -= tokens;
                        self.stats.dropped_tokens += tokens as u64;
                    } else {
                        // Referenced but nowhere to put it: keep it
                        // resident rather than burn every sharer.
                        continue;
                    }
                    self.recorder.record(TraceEvent::SharedChunkEvicted {
                        at: now,
                        chunk: id.0,
                        tokens,
                        refs,
                        dropped: !copied,
                    });
                    ops.push(SwapOutOp {
                        conv: SessionId(0),
                        chunk: 0,
                        tokens,
                        dropped: !copied,
                        shared: Some(id),
                    });
                    continue;
                }
            };
            active_conv = Some(conv);
            // Candidates were collected from `convs` this pass, but the
            // walk is total anyway: a missing entry is skipped, not a
            // panic on the eviction path.
            let Some(tokens) = self
                .convs
                .get(&conv)
                .and_then(|e| e.chunks.get(idx))
                .map(|c| c.tokens)
            else {
                continue;
            };
            // Make CPU room; if impossible, drop the chunk instead.
            let copied = self.ensure_cpu_space_with(tokens, now, &mut queues);
            let Some(c) = self
                .convs
                .get_mut(&conv)
                .and_then(|e| e.chunks.get_mut(idx))
            else {
                continue;
            };
            debug_assert_eq!(c.tier, Tier::Gpu);
            self.gpu_resident -= tokens;
            if copied {
                c.tier = Tier::GpuCopied;
                self.gpu_copied += tokens;
                self.copied_fifo.push_back((conv, idx));
                self.stats.swapped_out_tokens += tokens as u64;
            } else {
                c.tier = Tier::Dropped;
                self.stats.dropped_tokens += tokens as u64;
            }
            self.recorder.record(TraceEvent::ChunkEvicted {
                at: now,
                conv: conv.0,
                chunk: idx,
                tokens,
                dropped: !copied,
            });
            ops.push(SwapOutOp {
                conv,
                chunk: idx,
                tokens,
                dropped: !copied,
                shared: None,
            });
        }
        debug_assert!(self.check_invariants());
        ops
    }

    /// Suspends a running request (§4.3.5): moves all its GPU-resident
    /// chunks to the CPU tier immediately and unpins it. Returns the
    /// number of tokens that must be transferred.
    pub fn suspend(&mut self, conv: SessionId, now: SimTime) -> usize {
        self.set_pinned(conv, false);
        let Some(e) = self.convs.get_mut(&conv) else {
            return 0;
        };
        let mut to_move = Vec::new();
        for (i, c) in e.chunks.iter().enumerate() {
            match c.tier {
                Tier::Gpu => to_move.push((i, c.tokens, false)),
                Tier::GpuCopied => to_move.push((i, c.tokens, true)),
                _ => {}
            }
        }
        let mut transferred = 0;
        for (i, tokens, already_copied) in to_move {
            if already_copied {
                // The CPU already holds a copy; just release the GPU slot.
                let Some(c) = self.convs.get_mut(&conv).and_then(|e| e.chunks.get_mut(i)) else {
                    continue;
                };
                c.tier = Tier::Cpu;
                self.gpu_copied -= tokens;
                self.cpu_resident += tokens;
                continue;
            }
            let copied = self.ensure_cpu_space(tokens, now);
            // ensure_cpu_space only demotes or drops host-tier chunks
            // and never removes a conversation entry, but the walk stays
            // total.
            let Some(c) = self.convs.get_mut(&conv).and_then(|e| e.chunks.get_mut(i)) else {
                continue;
            };
            self.gpu_resident -= tokens;
            if copied {
                c.tier = Tier::Cpu;
                self.cpu_resident += tokens;
                self.stats.swapped_out_tokens += tokens as u64;
                transferred += tokens;
            } else {
                c.tier = Tier::Dropped;
                self.stats.dropped_tokens += tokens as u64;
            }
        }
        self.recorder.record(TraceEvent::Suspended {
            at: now,
            conv: conv.0,
            tokens: transferred,
        });
        debug_assert!(self.check_invariants());
        transferred
    }

    /// Removes a conversation and frees all its private space, releasing
    /// its shared-chain references. A shared chunk whose last reference
    /// is released here stays in the pool (still resident, still
    /// indexed) but becomes fully evictable and falls out of the
    /// hierarchy under pressure.
    pub fn remove_conversation(&mut self, conv: SessionId) {
        self.set_pinned(conv, false);
        self.commit_log.remove(&conv);
        if let Some(e) = self.convs.remove(&conv) {
            for id in &e.shared {
                if let Some(s) = self.shared.get_mut(id) {
                    s.refs = s.refs.saturating_sub(1);
                }
            }
            for c in &e.chunks {
                match c.tier {
                    Tier::Gpu => self.gpu_resident -= c.tokens,
                    Tier::GpuCopied => self.gpu_copied -= c.tokens,
                    Tier::Cpu => self.cpu_resident -= c.tokens,
                    Tier::Ssd => self.ssd_resident -= c.tokens,
                    Tier::Cold => self.cold_resident -= c.tokens,
                    Tier::Dropped => {}
                }
            }
        }
        debug_assert!(self.check_invariants());
    }

    /// Removes `session` from this cache and returns a portable snapshot
    /// of its chunk layout for handoff to another replica. All resident
    /// chunks (GPU, lazily-copied, CPU, SSD, cold) are staged as
    /// [`Tier::Cpu`] in the export — the wire format carries host-memory
    /// bytes, so deep-tier chunks are read up before transfer;
    /// already-[`Tier::Dropped`] chunks stay dropped and
    /// become recompute obligations at the target. Returns `None` if the
    /// session is unknown or pinned in the running batch — pinned
    /// sessions must finish or be suspended before export.
    pub fn export_session(&mut self, session: SessionId) -> Option<SessionExport> {
        if self.convs.get(&session).is_none_or(|e| e.pinned) {
            return None;
        }
        self.commit_log.remove(&session);
        let e = self.convs.remove(&session)?;
        // Shared chunks travel by reference, never by bytes: the export
        // names their ids so the target can re-attach any it already
        // holds. The local references are released here; a chunk whose
        // last sharer departs stays pooled but becomes fully evictable.
        let mut shared = Vec::with_capacity(e.shared.len());
        for id in &e.shared {
            let tokens = self.shared.get(id).map_or(0, |s| s.tokens);
            shared.push(SharedChunkRef { id: *id, tokens });
            if let Some(s) = self.shared.get_mut(id) {
                s.refs = s.refs.saturating_sub(1);
            }
        }
        let mut chunks = e.chunks;
        for c in &mut chunks {
            match c.tier {
                Tier::Gpu => {
                    self.gpu_resident -= c.tokens;
                    c.tier = Tier::Cpu;
                }
                Tier::GpuCopied => {
                    self.gpu_copied -= c.tokens;
                    c.tier = Tier::Cpu;
                }
                Tier::Cpu => self.cpu_resident -= c.tokens,
                Tier::Ssd => {
                    self.ssd_resident -= c.tokens;
                    c.tier = Tier::Cpu;
                }
                Tier::Cold => {
                    self.cold_resident -= c.tokens;
                    c.tier = Tier::Cpu;
                }
                Tier::Dropped => {}
            }
        }
        debug_assert!(self.check_invariants());
        Some(SessionExport {
            session,
            chunks,
            shared,
        })
    }

    /// Installs a handed-off session snapshot into this cache's host
    /// tiers. Chunks are admitted in context order at the tier the
    /// snapshot names (peer exports stage everything as [`Tier::Cpu`];
    /// rehydrated manifests may carry [`Tier::Ssd`]/[`Tier::Cold`]
    /// placements); once a tier's capacity is exhausted the remainder is
    /// demoted to [`Tier::Dropped`] (counted in
    /// [`CacheStats::dropped_tokens`]) and recomputed on the next
    /// restore. Imports never evict existing residents — a migrated-in
    /// conversation has no claim over the target's warm cache. Returns
    /// the tokens admitted to resident tiers.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::SessionExists`] if the session is already
    /// tracked here; the cache is unchanged.
    pub fn import_session(
        &mut self,
        export: SessionExport,
        now: SimTime,
    ) -> Result<usize, CacheError> {
        if self.convs.contains_key(&export.session) {
            return Err(CacheError::SessionExists(export.session));
        }
        // Re-attach the leading run of shared chunks this cache already
        // pools (bytes never travel for shared state — only ids do). The
        // first unknown id breaks prefix continuity, so it and everything
        // after it become private recompute obligations.
        let mut shared_ids: Vec<ChunkId> = Vec::new();
        let mut shared_tokens = 0usize;
        let mut unknown: Vec<SharedChunkRef> = Vec::new();
        for r in &export.shared {
            if r.tokens == 0 {
                continue;
            }
            if unknown.is_empty() && self.shared.contains_key(&r.id) {
                shared_ids.push(r.id);
                shared_tokens += r.tokens;
            } else {
                unknown.push(*r);
            }
        }
        let mut admitted = 0usize;
        for id in &shared_ids {
            if let Some(s) = self.shared.get_mut(id) {
                s.refs += 1;
                s.last_active = now;
                if s.tier != Tier::Dropped {
                    admitted += s.tokens;
                }
            }
        }
        if !shared_ids.is_empty() {
            self.recorder.record(TraceEvent::SharedAttached {
                at: now,
                conv: export.session.0,
                tokens: shared_tokens,
                chunks: shared_ids.len(),
            });
        }
        // Normalize to local chunk granularity: exports from a peer cache
        // are already chunk-sized (this is a no-op), but replication
        // deltas arrive as one chunk per flush and must be split to keep
        // the eviction policy's unit of work intact. Unattached shared
        // spans lead the private chain as dropped chunks so the context
        // offsets stay contiguous.
        let mut chunks: Vec<ChunkState> = Vec::with_capacity(export.chunks.len() + unknown.len());
        let mut unknown_end = shared_tokens;
        for r in &unknown {
            unknown_end += r.tokens;
            chunks.push(ChunkState {
                tier: Tier::Dropped,
                tokens: r.tokens,
                context_end: unknown_end,
            });
            self.stats.dropped_tokens += r.tokens as u64;
        }
        for c in export.chunks {
            let mut remaining = c.tokens;
            let mut end = c.context_end - c.tokens;
            while remaining > 0 {
                let take = remaining.min(self.cfg.chunk_tokens);
                end += take;
                chunks.push(ChunkState {
                    tier: c.tier,
                    tokens: take,
                    context_end: end,
                });
                remaining -= take;
            }
        }
        for c in &mut chunks {
            match c.tier {
                Tier::Cpu => {
                    if self.cpu_used() + c.tokens <= self.cfg.cpu_capacity_tokens {
                        self.cpu_resident += c.tokens;
                        admitted += c.tokens;
                    } else {
                        c.tier = Tier::Dropped;
                        self.stats.dropped_tokens += c.tokens as u64;
                    }
                }
                Tier::Ssd => {
                    if self.ssd_resident + c.tokens <= self.cfg.ssd_capacity_tokens {
                        self.ssd_resident += c.tokens;
                        admitted += c.tokens;
                    } else {
                        c.tier = Tier::Dropped;
                        self.stats.dropped_tokens += c.tokens as u64;
                    }
                }
                Tier::Cold => {
                    if self.cold_resident + c.tokens <= self.cfg.cold_capacity_tokens {
                        self.cold_resident += c.tokens;
                        admitted += c.tokens;
                    } else {
                        c.tier = Tier::Dropped;
                        self.stats.dropped_tokens += c.tokens as u64;
                    }
                }
                Tier::Dropped => {}
                Tier::Gpu | Tier::GpuCopied => {
                    // Exports are CPU-staged by construction; a stray
                    // GPU-tier chunk carries no transferable bytes here.
                    c.tier = Tier::Dropped;
                    self.stats.dropped_tokens += c.tokens as u64;
                }
            }
        }
        self.convs.insert(
            export.session,
            ConvEntry {
                shared: shared_ids,
                shared_tokens,
                chunks,
                last_active: now,
                pinned: false,
            },
        );
        debug_assert!(self.check_invariants());
        Ok(admitted)
    }

    /// Every chunk with a CPU-tier copy ([`Tier::Cpu`] or
    /// [`Tier::GpuCopied`]), as `(conversation, chunk index, tokens)` in a
    /// deterministic `(conversation, index)` order. The fault injector
    /// picks loss/corruption victims from this listing; `convs` is a
    /// `BTreeMap`, so the walk is ordered by construction and no
    /// post-sort is needed.
    #[must_use]
    pub fn cpu_resident_chunks(&self) -> Vec<(SessionId, usize, usize)> {
        let mut out: Vec<(SessionId, usize, usize)> = Vec::new();
        for (&cid, e) in &self.convs {
            for (i, c) in e.chunks.iter().enumerate() {
                if matches!(c.tier, Tier::Cpu | Tier::GpuCopied) {
                    out.push((cid, i, c.tokens));
                }
            }
        }
        out
    }

    /// Applies a host-memory-loss fault to a chunk's CPU-tier copy:
    /// [`Tier::Cpu`] chunks become [`Tier::Dropped`] (recompute on next
    /// restore); [`Tier::GpuCopied`] chunks lose only the copy and revert
    /// to [`Tier::Gpu`] (the GPU bytes are intact). Returns the tokens
    /// affected.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownConversation`] or
    /// [`CacheError::ChunkNotInCpuTier`] if the addressed chunk holds no
    /// CPU-tier copy; the cache is unchanged.
    pub fn mark_chunk_lost(&mut self, conv: SessionId, chunk: usize) -> Result<usize, CacheError> {
        let tokens = self.invalidate_cpu_copy(conv, chunk)?;
        self.stats.lost_chunk_tokens += tokens as u64;
        Ok(tokens)
    }

    /// Applies a corruption fault: identical state transition to
    /// [`TieredKvCache::mark_chunk_lost`] (a checksum-mismatched copy is
    /// unusable), but counted separately in
    /// [`CacheStats::corrupted_chunk_tokens`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TieredKvCache::mark_chunk_lost`].
    pub fn mark_chunk_corrupt(
        &mut self,
        conv: SessionId,
        chunk: usize,
    ) -> Result<usize, CacheError> {
        let tokens = self.invalidate_cpu_copy(conv, chunk)?;
        self.stats.corrupted_chunk_tokens += tokens as u64;
        Ok(tokens)
    }

    /// Shared state transition for loss/corruption of a CPU-tier copy.
    fn invalidate_cpu_copy(&mut self, conv: SessionId, chunk: usize) -> Result<usize, CacheError> {
        let e = self
            .convs
            .get_mut(&conv)
            .ok_or(CacheError::UnknownConversation(conv))?;
        let Some(c) = e.chunks.get_mut(chunk) else {
            return Err(CacheError::ChunkNotInCpuTier { conv, chunk });
        };
        let tokens = c.tokens;
        match c.tier {
            Tier::Cpu => {
                c.tier = Tier::Dropped;
                self.cpu_resident -= tokens;
            }
            Tier::GpuCopied => {
                // The GPU still holds the bytes; only the copy is gone.
                // The chunk's copied_fifo entry goes stale and is skipped
                // at reclamation (tier check at pop).
                c.tier = Tier::Gpu;
                self.gpu_copied -= tokens;
                self.gpu_resident += tokens;
            }
            Tier::Gpu | Tier::Ssd | Tier::Cold | Tier::Dropped => {
                return Err(CacheError::ChunkNotInCpuTier { conv, chunk });
            }
        }
        debug_assert!(self.check_invariants());
        Ok(tokens)
    }

    /// Recompute fallback after persistent swap-in transfer failures:
    /// drops every [`Tier::Cpu`] chunk of `conv` so its next restore plan
    /// recomputes them from raw tokens instead of retrying the transfer.
    /// Returns the tokens dropped (0 for unknown conversations).
    pub fn drop_cpu_chunks(&mut self, conv: SessionId, now: SimTime) -> usize {
        let Some(e) = self.convs.get_mut(&conv) else {
            return 0;
        };
        let mut dropped = 0;
        for (i, c) in e.chunks.iter_mut().enumerate() {
            if c.tier == Tier::Cpu {
                c.tier = Tier::Dropped;
                dropped += c.tokens;
                self.recorder.record(TraceEvent::ChunkDropped {
                    at: now,
                    conv: conv.0,
                    chunk: i,
                    tokens: c.tokens,
                    reason: DropReason::SwapInFault,
                });
            }
        }
        self.cpu_resident -= dropped;
        self.stats.swap_in_fault_tokens += dropped as u64;
        debug_assert!(self.check_invariants());
        dropped
    }

    /// Recompute fallback after a failed deep-tier read: drops every
    /// [`Tier::Ssd`] and [`Tier::Cold`] chunk of `conv` so its next
    /// restore plan recomputes them from raw tokens instead of retrying
    /// the device. Returns the tokens dropped (0 for unknown
    /// conversations).
    pub fn drop_deep_chunks(&mut self, conv: SessionId, now: SimTime) -> usize {
        let Some(e) = self.convs.get_mut(&conv) else {
            return 0;
        };
        let mut dropped = 0;
        for (i, c) in e.chunks.iter_mut().enumerate() {
            match c.tier {
                Tier::Ssd => self.ssd_resident -= c.tokens,
                Tier::Cold => self.cold_resident -= c.tokens,
                _ => continue,
            }
            c.tier = Tier::Dropped;
            dropped += c.tokens;
            self.recorder.record(TraceEvent::ChunkDropped {
                at: now,
                conv: conv.0,
                chunk: i,
                tokens: c.tokens,
                reason: DropReason::ColdReadFault,
            });
        }
        self.stats.cold_read_fault_tokens += dropped as u64;
        debug_assert!(self.check_invariants());
        dropped
    }

    /// Rebuilds a session's chunk layout from a persisted manifest after
    /// a restart. The leading run of manifest entries whose
    /// content-addressed ids are still pooled here re-attach as shared
    /// references (no bytes move); the remainder installs at
    /// [`Tier::Cold`] while cold capacity allows, never evicting existing
    /// residents, and past that as [`Tier::Dropped`] recompute
    /// obligations. Returns the tokens recovered without recomputation
    /// (re-attached plus cold-admitted), counted in
    /// [`CacheStats::rehydrated_tokens`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::SessionExists`] if the session is already
    /// tracked here; the cache is unchanged.
    pub fn rehydrate_session(
        &mut self,
        session: SessionId,
        manifest: &[ManifestChunk],
        now: SimTime,
    ) -> Result<usize, CacheError> {
        if self.convs.contains_key(&session) {
            return Err(CacheError::SessionExists(session));
        }
        let mut shared_ids: Vec<ChunkId> = Vec::new();
        let mut shared_tokens = 0usize;
        let mut chunks = Vec::with_capacity(manifest.len());
        let mut end = 0usize;
        let mut admitted = 0usize;
        for m in manifest {
            if m.tokens == 0 {
                continue; // Defensive: a manifest never records empty chunks.
            }
            if chunks.is_empty() && m.id != ChunkId::NONE {
                if let Some(s) = self.shared.get_mut(&m.id) {
                    s.refs += 1;
                    s.last_active = now;
                    shared_ids.push(m.id);
                    shared_tokens += m.tokens;
                    end += m.tokens;
                    if s.tier != Tier::Dropped {
                        admitted += m.tokens;
                    }
                    continue;
                }
            }
            end += m.tokens;
            let tier = if self.cold_resident + m.tokens <= self.cfg.cold_capacity_tokens {
                self.cold_resident += m.tokens;
                admitted += m.tokens;
                Tier::Cold
            } else {
                Tier::Dropped
            };
            chunks.push(ChunkState {
                tier,
                tokens: m.tokens,
                context_end: end,
            });
        }
        if !shared_ids.is_empty() {
            self.recorder.record(TraceEvent::SharedAttached {
                at: now,
                conv: session.0,
                tokens: shared_tokens,
                chunks: shared_ids.len(),
            });
        }
        self.convs.insert(
            session,
            ConvEntry {
                shared: shared_ids,
                shared_tokens,
                chunks,
                last_active: now,
                pinned: false,
            },
        );
        self.stats.rehydrated_tokens += admitted as u64;
        debug_assert!(self.check_invariants());
        Ok(admitted)
    }

    /// Frees CPU space for `tokens` by demoting policy-chosen CPU-tier
    /// chunks down the storage hierarchy (dropping them when the deep
    /// tiers are disabled or full). Returns false if space could not be
    /// found (caller should drop instead of copy).
    fn ensure_cpu_space(&mut self, tokens: usize, now: SimTime) -> bool {
        self.ensure_cpu_space_with(tokens, now, &mut EvictQueues::default())
    }

    /// [`TieredKvCache::ensure_cpu_space`] with caller-held eviction
    /// queues: each tier's candidate snapshot is collected at most once
    /// per pass and consumed from the front, entries being re-validated
    /// at use.
    fn ensure_cpu_space_with(
        &mut self,
        tokens: usize,
        now: SimTime,
        queues: &mut EvictQueues,
    ) -> bool {
        if tokens > self.cfg.cpu_capacity_tokens {
            return false;
        }
        while self.cpu_used() + tokens > self.cfg.cpu_capacity_tokens {
            let q = queues.cpu.get_or_insert_with(|| {
                self.collect_candidates(Tier::Cpu, now, false)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            });
            let Some(victim) = q.pop_front() else {
                return false;
            };
            let (conv, idx) = match victim {
                Victim::Shared(id) => {
                    self.demote_shared_chunk(id, Tier::Cpu, now, queues);
                    continue;
                }
                Victim::Conv(conv, idx) => (conv, idx),
            };
            let Some(e) = self.convs.get(&conv) else {
                continue; // Conversation removed since the snapshot.
            };
            if e.pinned {
                continue; // Re-pinned since the snapshot.
            }
            let Some(c) = e.chunks.get(idx) else {
                continue; // Chunk index stale; snapshot outlived it.
            };
            if c.tier != Tier::Cpu {
                continue; // Tier changed since the snapshot.
            }
            let victim_tokens = c.tokens;
            self.cpu_resident -= victim_tokens;
            self.demote_chunk(conv, idx, victim_tokens, Tier::Cpu, now, queues);
        }
        true
    }

    /// Refcount-aware demotion of a *shared* chunk one tier down: a
    /// still-referenced chunk is only moved when the next tier has room
    /// (its sharers keep it; dropping would burn them all), while an
    /// unreferenced chunk falls through the hierarchy and off the bottom
    /// exactly like a private one. No-op if the chunk is not where the
    /// snapshot said (stale queue entry), pinned, or global.
    fn demote_shared_chunk(
        &mut self,
        id: ChunkId,
        from: Tier,
        now: SimTime,
        queues: &mut EvictQueues,
    ) {
        let Some((tokens, refs)) = self
            .shared
            .get(&id)
            .filter(|s| s.tier == from && s.pinned_refs == 0 && !s.global)
            .map(|s| (s.tokens, s.refs))
        else {
            return;
        };
        // Find space *before* touching source accounting, so a failed
        // placement leaves the chunk exactly where it was.
        let to = if from == Tier::Cpu && self.ensure_ssd_space(tokens, now, queues) {
            Some(Tier::Ssd)
        } else if from != Tier::Cold && self.ensure_cold_space(tokens, now, queues) {
            Some(Tier::Cold)
        } else {
            None
        };
        if to.is_none() && refs > 0 {
            return; // Referenced and nowhere to go: keep it resident.
        }
        let Some(s) = self.shared.get_mut(&id) else {
            return;
        };
        match from {
            Tier::Cpu => self.cpu_resident -= tokens,
            Tier::Ssd => self.ssd_resident -= tokens,
            Tier::Cold => self.cold_resident -= tokens,
            Tier::Gpu | Tier::GpuCopied | Tier::Dropped => return,
        }
        match to {
            Some(Tier::Ssd) => {
                s.tier = Tier::Ssd;
                self.ssd_resident += tokens;
                self.stats.demoted_tokens += tokens as u64;
            }
            Some(_) => {
                s.tier = Tier::Cold;
                self.cold_resident += tokens;
                self.stats.demoted_tokens += tokens as u64;
            }
            None => {
                s.tier = Tier::Dropped;
                self.stats.dropped_tokens += tokens as u64;
            }
        }
        self.recorder.record(TraceEvent::SharedChunkEvicted {
            at: now,
            chunk: id.0,
            tokens,
            refs,
            dropped: to.is_none(),
        });
    }

    /// Moves an evicted chunk one tier down the hierarchy: a CPU victim
    /// lands in the SSD tier (or the cold store when the SSD tier is
    /// disabled), an SSD victim lands in the cold store, and a chunk the
    /// whole hierarchy cannot hold is dropped. The caller has already
    /// removed the chunk from its source tier's accounting.
    fn demote_chunk(
        &mut self,
        conv: SessionId,
        idx: usize,
        tokens: usize,
        from: Tier,
        now: SimTime,
        queues: &mut EvictQueues,
    ) {
        let to = if from == Tier::Cpu && self.ensure_ssd_space(tokens, now, queues) {
            Some((Tier::Ssd, StorageTier::Ssd))
        } else if self.ensure_cold_space(tokens, now, queues) {
            Some((Tier::Cold, StorageTier::Cold))
        } else {
            None
        };
        let Some(c) = self
            .convs
            .get_mut(&conv)
            .and_then(|e| e.chunks.get_mut(idx))
        else {
            return; // Validated by the caller; the walk stays total.
        };
        match to {
            Some((tier, obs_to)) => {
                c.tier = tier;
                match tier {
                    Tier::Ssd => self.ssd_resident += tokens,
                    _ => self.cold_resident += tokens,
                }
                self.stats.demoted_tokens += tokens as u64;
                self.recorder.record(TraceEvent::ChunkDemoted {
                    at: now,
                    conv: conv.0,
                    chunk: idx,
                    tokens,
                    from: if from == Tier::Cpu {
                        StorageTier::Cpu
                    } else {
                        StorageTier::Ssd
                    },
                    to: obs_to,
                });
            }
            None => {
                c.tier = Tier::Dropped;
                self.stats.dropped_tokens += tokens as u64;
                self.recorder.record(TraceEvent::ChunkDropped {
                    at: now,
                    conv: conv.0,
                    chunk: idx,
                    tokens,
                    reason: if from == Tier::Cpu {
                        DropReason::CpuPressure
                    } else {
                        DropReason::ColdPressure
                    },
                });
            }
        }
    }

    /// Frees SSD space for `tokens` by demoting policy-chosen SSD chunks
    /// to the cold store (or dropping them when it is full). Returns
    /// false when the SSD tier is disabled or cannot fit the chunk.
    fn ensure_ssd_space(&mut self, tokens: usize, now: SimTime, queues: &mut EvictQueues) -> bool {
        if tokens > self.cfg.ssd_capacity_tokens {
            return false;
        }
        while self.ssd_resident + tokens > self.cfg.ssd_capacity_tokens {
            let q = queues.ssd.get_or_insert_with(|| {
                self.collect_candidates(Tier::Ssd, now, false)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            });
            let Some(victim) = q.pop_front() else {
                return false;
            };
            let (conv, idx) = match victim {
                Victim::Shared(id) => {
                    self.demote_shared_chunk(id, Tier::Ssd, now, queues);
                    continue;
                }
                Victim::Conv(conv, idx) => (conv, idx),
            };
            let Some(e) = self.convs.get(&conv) else {
                continue;
            };
            if e.pinned {
                continue;
            }
            let Some(c) = e.chunks.get(idx) else {
                continue;
            };
            if c.tier != Tier::Ssd {
                continue;
            }
            let victim_tokens = c.tokens;
            self.ssd_resident -= victim_tokens;
            self.demote_chunk(conv, idx, victim_tokens, Tier::Ssd, now, queues);
        }
        true
    }

    /// Frees cold-store space for `tokens` by dropping policy-chosen
    /// cold chunks — the bottom of the hierarchy has nowhere further to
    /// demote. Returns false when the cold tier is disabled or cannot
    /// fit the chunk.
    fn ensure_cold_space(&mut self, tokens: usize, now: SimTime, queues: &mut EvictQueues) -> bool {
        if tokens > self.cfg.cold_capacity_tokens {
            return false;
        }
        while self.cold_resident + tokens > self.cfg.cold_capacity_tokens {
            let q = queues.cold.get_or_insert_with(|| {
                self.collect_candidates(Tier::Cold, now, false)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            });
            let Some(victim) = q.pop_front() else {
                return false;
            };
            let (conv, idx) = match victim {
                Victim::Shared(id) => {
                    // Bottom of the hierarchy: a still-referenced shared
                    // chunk is kept (its sharers outweigh the incomer),
                    // an unreferenced one is dropped.
                    self.demote_shared_chunk(id, Tier::Cold, now, queues);
                    continue;
                }
                Victim::Conv(conv, idx) => (conv, idx),
            };
            let Some(e) = self.convs.get_mut(&conv) else {
                continue;
            };
            if e.pinned {
                continue;
            }
            let Some(c) = e.chunks.get_mut(idx) else {
                continue;
            };
            if c.tier != Tier::Cold {
                continue;
            }
            let victim_tokens = c.tokens;
            c.tier = Tier::Dropped;
            self.cold_resident -= victim_tokens;
            self.stats.dropped_tokens += victim_tokens as u64;
            self.recorder.record(TraceEvent::ChunkDropped {
                at: now,
                conv: conv.0,
                chunk: idx,
                tokens: victim_tokens,
                reason: DropReason::ColdPressure,
            });
        }
        true
    }

    /// Converts lazily-copied chunks back to CPU-only until at least
    /// `needed` strictly-free slots exist. `favored` conversations' copies
    /// are reclaimed last (they are about to be revalidated).
    ///
    /// Runs in amortized O(1) per reclaimed chunk: copies are queued in
    /// copy order (which follows the eviction policy's order) and stale
    /// entries are skipped on pop.
    fn reclaim_gpu_slots(&mut self, needed: usize, favored: Option<SessionId>) {
        if self.gpu_free_strict() >= needed || self.gpu_copied == 0 {
            return;
        }
        let mut kept = Vec::new();
        while self.gpu_free_strict() < needed {
            let Some((conv, idx)) = self.copied_fifo.pop_front() else {
                break;
            };
            if Some(conv) == favored {
                kept.push((conv, idx));
                continue;
            }
            let Some(c) = self
                .convs
                .get_mut(&conv)
                .and_then(|e| e.chunks.get_mut(idx))
            else {
                continue; // Conversation removed; stale entry.
            };
            if c.tier != Tier::GpuCopied {
                continue; // Revalidated/suspended since copying; stale.
            }
            c.tier = Tier::Cpu;
            self.gpu_copied -= c.tokens;
            self.cpu_resident += c.tokens;
        }
        // Favored entries stay queued for future reclamation.
        for entry in kept.into_iter().rev() {
            self.copied_fifo.push_front(entry);
        }
    }

    /// All evictable chunks in `tier` — private chunks of unpinned
    /// conversations plus shared chunks with no pinned sharer — sorted
    /// ascending by (score, victim identity), with the policy's
    /// within-conversation order applied to private chunk indices.
    ///
    /// A shared chunk's score is the policy score *multiplied by its
    /// sharer count*: evicting it burns every sharer's restore, so its
    /// retention value `V = Cost(s, l)/T` scales with the number of
    /// conversations it serves.
    fn collect_candidates(
        &self,
        tier: Tier,
        now: SimTime,
        include_pinned: bool,
    ) -> Vec<(Victim, f64)> {
        let trailing = self.policy.within_order() == WithinOrder::TrailingFirst;
        let mut out: Vec<(Victim, f64)> = Vec::new();
        for (&cid, e) in &self.convs {
            if e.pinned && !include_pinned {
                continue;
            }
            for (i, c) in e.chunks.iter().enumerate() {
                if c.tier == tier {
                    let score = self.policy.score(c, e.last_active, now);
                    out.push((Victim::Conv(cid, i), score));
                }
            }
        }
        for (&id, s) in &self.shared {
            if s.tier != tier || s.global || (s.pinned_refs > 0 && !include_pinned) {
                continue;
            }
            let state = ChunkState {
                tier: s.tier,
                tokens: s.tokens,
                context_end: s.context_end,
            };
            let score = self.policy.score(&state, s.last_active, now) * s.refs.max(1) as f64;
            out.push((Victim::Shared(id), score));
        }
        // total_cmp gives a total order even if a policy ever returned a
        // NaN score (NaN sorts last instead of panicking), and agrees
        // with partial_cmp on the finite scores every in-tree policy
        // produces.
        let conversation_granularity = self.policy.granularity() == Granularity::Conversation;
        out.sort_by(|a, b| {
            a.1.total_cmp(&b.1).then_with(|| match (a.0, b.0) {
                (Victim::Conv(c1, i1), Victim::Conv(c2, i2)) => {
                    c1.cmp(&c2).then(if trailing && !conversation_granularity {
                        i2.cmp(&i1)
                    } else {
                        i1.cmp(&i2)
                    })
                }
                _ => a.0.cmp(&b.0),
            })
        });
        out
    }

    /// Registers `tokens` as a shareable prefix (tool preamble, RAG
    /// document, common system prompt) and returns its content-addressed
    /// chunk chain. Whole chunks only — a trailing partial chunk is not
    /// shareable under chunked eviction and is silently ignored. Chunks
    /// enter the pool at [`Tier::Dropped`] (identity without bytes) and
    /// gain residency the first time a sharer restores them or via
    /// [`TieredKvCache::materialize_global`]. Registering the same
    /// prefix twice is idempotent.
    pub fn register_shared(&mut self, tokens: &[u32], now: SimTime) -> Vec<ChunkId> {
        let chain = self.index.insert(tokens);
        let chunk_tokens = self.index.chunk_tokens();
        let mut end = 0usize;
        for id in &chain {
            end += chunk_tokens;
            if let Some(s) = self.shared.get_mut(id) {
                s.last_active = now;
            } else {
                self.shared.insert(
                    *id,
                    SharedChunk {
                        tokens: chunk_tokens,
                        context_end: end,
                        tier: Tier::Dropped,
                        refs: 0,
                        external_refs: 0,
                        pinned_refs: 0,
                        global: false,
                        last_active: now,
                    },
                );
            }
        }
        chain
    }

    /// Longest registered chunk chain matching a prefix of `tokens` —
    /// the discovery half of sharing. Token bytes are compared at every
    /// hop, so a hash collision shortens the match instead of sharing
    /// the wrong KV.
    #[must_use]
    pub fn lookup_shared(&self, tokens: &[u32]) -> Vec<ChunkId> {
        self.index.longest_match(tokens)
    }

    /// Starts a new conversation whose context begins with the shared
    /// chunk chain `chain` (typically from
    /// [`TieredKvCache::lookup_shared`]): every chunk's reference count
    /// rises by one and no KV bytes are duplicated. Private tokens
    /// appended later sit after the chain. Returns the logical tokens
    /// covered by the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::SessionExists`] if `conv` is already
    /// tracked, [`CacheError::UnknownChunk`] for an unregistered id, or
    /// [`CacheError::BrokenSharedChain`] when the ids are not
    /// consecutive chunks of one prefix. The cache is unchanged on
    /// error.
    pub fn attach_shared(
        &mut self,
        conv: SessionId,
        chain: &[ChunkId],
        now: SimTime,
    ) -> Result<usize, CacheError> {
        if self.convs.contains_key(&conv) {
            return Err(CacheError::SessionExists(conv));
        }
        // Validate the whole chain before mutating anything.
        let mut total = 0usize;
        for id in chain {
            let s = self.shared.get(id).ok_or(CacheError::UnknownChunk(*id))?;
            if s.context_end != total + s.tokens {
                return Err(CacheError::BrokenSharedChain(*id));
            }
            total += s.tokens;
        }
        for id in chain {
            if let Some(s) = self.shared.get_mut(id) {
                s.refs += 1;
                s.last_active = now;
            }
        }
        self.convs.insert(
            conv,
            ConvEntry {
                shared: chain.to_vec(),
                shared_tokens: total,
                chunks: Vec::new(),
                last_active: now,
                pinned: false,
            },
        );
        if !chain.is_empty() {
            self.recorder.record(TraceEvent::SharedAttached {
                at: now,
                conv: conv.0,
                tokens: total,
                chunks: chain.len(),
            });
        }
        debug_assert!(self.check_invariants());
        Ok(total)
    }

    /// Promotes a registered chain to permanent GPU residency — the
    /// deployment-wide tool preamble every request shares. Global chunks
    /// are exempt from eviction; the returned handles hold the explicit
    /// references and must eventually go back through
    /// [`TieredKvCache::release`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownChunk`] for an unregistered id,
    /// [`CacheError::RefCountOverflow`] on a saturated chunk, or
    /// [`CacheError::OutOfGpu`] when the non-resident part of the chain
    /// exceeds effectively-free GPU space. The cache is unchanged on
    /// error.
    pub fn materialize_global(
        &mut self,
        chain: &[ChunkId],
        now: SimTime,
    ) -> Result<Vec<ChunkHandle>, CacheError> {
        // Validate everything up front so a failure mutates nothing.
        let mut needed = 0usize;
        for id in chain {
            let s = self.shared.get(id).ok_or(CacheError::UnknownChunk(*id))?;
            if s.refs.checked_add(1).is_none() || s.external_refs.checked_add(1).is_none() {
                return Err(CacheError::RefCountOverflow(*id));
            }
            if s.tier != Tier::Gpu {
                needed += s.tokens;
            }
        }
        if needed > self.gpu_free_effective() {
            return Err(CacheError::OutOfGpu {
                needed,
                free: self.gpu_free_effective(),
            });
        }
        self.reclaim_gpu_slots(needed, None);
        let mut handles = Vec::with_capacity(chain.len());
        for id in chain {
            let Some(s) = self.shared.get_mut(id) else {
                continue; // Validated above; the walk stays total.
            };
            match s.tier {
                Tier::Gpu => {}
                Tier::Cpu => {
                    self.cpu_resident -= s.tokens;
                    self.gpu_resident += s.tokens;
                    self.stats.swapped_in_tokens += s.tokens as u64;
                }
                Tier::Ssd => {
                    self.ssd_resident -= s.tokens;
                    self.gpu_resident += s.tokens;
                }
                Tier::Cold => {
                    self.cold_resident -= s.tokens;
                    self.gpu_resident += s.tokens;
                }
                // Dropped = computed once here; shared chunks never hold
                // lazy GPU copies.
                Tier::Dropped | Tier::GpuCopied => {
                    self.gpu_resident += s.tokens;
                }
            }
            s.tier = Tier::Gpu;
            s.global = true;
            s.refs += 1;
            s.external_refs += 1;
            s.last_active = now;
            handles.push(ChunkHandle { id: *id, armed: true });
        }
        debug_assert!(self.check_invariants());
        Ok(handles)
    }

    /// Takes an explicit reference on a pooled shared chunk, keeping it
    /// alive independent of any conversation (e.g. while a migration is
    /// in flight). Pair with [`TieredKvCache::release`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownChunk`] for an unregistered id or
    /// [`CacheError::RefCountOverflow`] on a saturated chunk.
    pub fn acquire(&mut self, id: ChunkId) -> Result<ChunkHandle, CacheError> {
        let s = self
            .shared
            .get_mut(&id)
            .ok_or(CacheError::UnknownChunk(id))?;
        let refs = s
            .refs
            .checked_add(1)
            .ok_or(CacheError::RefCountOverflow(id))?;
        let external = s
            .external_refs
            .checked_add(1)
            .ok_or(CacheError::RefCountOverflow(id))?;
        s.refs = refs;
        s.external_refs = external;
        Ok(ChunkHandle { id, armed: true })
    }

    /// Gives back an explicit reference taken by
    /// [`TieredKvCache::acquire`] or
    /// [`TieredKvCache::materialize_global`]. Consumes the handle either
    /// way; a handle dropped *without* coming here counts in
    /// [`leaked_chunk_handles`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownChunk`] if the pool no longer knows
    /// the id, or [`CacheError::RefCountUnderflow`] when no matching
    /// acquire is outstanding (a double release through forged handles).
    pub fn release(&mut self, handle: ChunkHandle) -> Result<(), CacheError> {
        let mut handle = handle;
        handle.armed = false;
        let id = handle.id;
        let s = self
            .shared
            .get_mut(&id)
            .ok_or(CacheError::UnknownChunk(id))?;
        if s.external_refs == 0 || s.refs == 0 {
            return Err(CacheError::RefCountUnderflow(id));
        }
        s.external_refs -= 1;
        s.refs -= 1;
        Ok(())
    }

    /// Outstanding references on a pooled shared chunk (0 if unknown):
    /// chain memberships plus explicit handles.
    #[must_use]
    pub fn shared_refs(&self, id: ChunkId) -> usize {
        self.shared.get(&id).map_or(0, |s| s.refs)
    }

    /// Tokens of `conv`'s chain held by *global* (permanently resident)
    /// shared chunks — context the engine serves without charging the
    /// conversation any cache space.
    #[must_use]
    pub fn global_shared_tokens(&self, conv: SessionId) -> usize {
        self.convs.get(&conv).map_or(0, |e| {
            e.shared
                .iter()
                .filter_map(|id| self.shared.get(id))
                .filter(|s| s.global)
                .map(|s| s.tokens)
                .sum()
        })
    }

    /// Logical resident KV tokens: what the cache would hold if every
    /// sharer kept a private copy — each conversation's non-dropped
    /// private chunks plus its chain's non-dropped chunks, counted once
    /// *per sharer*. The denominator of the dedup ratio.
    #[must_use]
    pub fn logical_resident_tokens(&self) -> usize {
        let mut total = 0usize;
        for e in self.convs.values() {
            for id in &e.shared {
                if let Some(s) = self.shared.get(id) {
                    if s.tier != Tier::Dropped {
                        total += s.tokens;
                    }
                }
            }
            total += e
                .chunks
                .iter()
                .filter(|c| c.tier != Tier::Dropped)
                .map(|c| c.tokens)
                .sum::<usize>();
        }
        total
    }

    /// Physical resident KV tokens actually held: non-dropped private
    /// chunks plus each non-dropped pooled shared chunk counted *once*,
    /// however many conversations reference it. The numerator of the
    /// dedup ratio.
    #[must_use]
    pub fn physical_resident_tokens(&self) -> usize {
        let shared: usize = self
            .shared
            .values()
            .filter(|s| s.tier != Tier::Dropped)
            .map(|s| s.tokens)
            .sum();
        let private: usize = self
            .convs
            .values()
            .flat_map(|e| e.chunks.iter())
            .filter(|c| c.tier != Tier::Dropped)
            .map(|c| c.tokens)
            .sum();
        shared + private
    }

    /// Forks `child` from `parent`, sharing the parent's entire current
    /// context instead of copying it. The parent's private chunks are
    /// *promoted* into the shared pool (their physical placement is
    /// untouched; lazy GPU copies revalidate, since shared chunks never
    /// stay [`Tier::GpuCopied`]) under lineage-derived ids, and both
    /// conversations continue from the same chain with refcount 2 per
    /// chunk. Returns the logical tokens now shared.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownConversation`] if `parent` is not
    /// tracked or [`CacheError::SessionExists`] if `child` is. The cache
    /// is unchanged on error.
    pub fn fork_session(
        &mut self,
        parent: SessionId,
        child: SessionId,
        now: SimTime,
    ) -> Result<usize, CacheError> {
        if !self.convs.contains_key(&parent) {
            return Err(CacheError::UnknownConversation(parent));
        }
        if self.convs.contains_key(&child) {
            return Err(CacheError::SessionExists(child));
        }
        let Some(e) = self.convs.get_mut(&parent) else {
            return Err(CacheError::UnknownConversation(parent));
        };
        let parent_pinned = e.pinned;
        let mut chain = std::mem::take(&mut e.shared);
        let private = std::mem::take(&mut e.chunks);
        let mut context_end = e.shared_tokens;
        let mut prev = chain.last().copied().unwrap_or(ChunkId::ROOT);
        // Promote each private chunk under a lineage-derived id: the
        // timing model tracks token *counts*, so identity chains over
        // (parent, position, length) exactly as content ids chain over
        // token bytes — deterministic across replicas and reruns.
        let mut promoted = Vec::with_capacity(private.len());
        for (i, c) in private.iter().enumerate() {
            let id = ChunkId::derive_words(
                prev,
                &[parent.0, (chain.len() + i) as u64, c.tokens as u64],
            );
            context_end += c.tokens;
            promoted.push((id, *c));
            prev = id;
        }
        for (id, c) in &promoted {
            let tier = match c.tier {
                // Revalidate the lazy copy: keep the GPU slot, drop the
                // CPU-side copy. The chunk's copied_fifo entry goes
                // stale and is skipped at reclamation.
                Tier::GpuCopied => {
                    self.gpu_copied -= c.tokens;
                    self.gpu_resident += c.tokens;
                    self.stats.revalidated_tokens += c.tokens as u64;
                    Tier::Gpu
                }
                t => t,
            };
            self.shared.insert(
                *id,
                SharedChunk {
                    tokens: c.tokens,
                    context_end: c.context_end,
                    tier,
                    refs: 2,
                    external_refs: 0,
                    pinned_refs: usize::from(parent_pinned),
                    global: false,
                    last_active: now,
                },
            );
            chain.push(*id);
        }
        // Pre-existing chain chunks gain the child as one more sharer.
        for id in chain.iter().take(chain.len() - promoted.len()) {
            if let Some(s) = self.shared.get_mut(id) {
                s.refs += 1;
                s.last_active = now;
            }
        }
        if let Some(e) = self.convs.get_mut(&parent) {
            e.shared.clone_from(&chain);
            e.shared_tokens = context_end;
            e.last_active = now;
        }
        // The parent's committed private context is now shared; the
        // replication stream ships shared state by id, not bytes.
        self.commit_log.remove(&parent);
        self.convs.insert(
            child,
            ConvEntry {
                shared: chain.clone(),
                shared_tokens: context_end,
                chunks: Vec::new(),
                last_active: now,
                pinned: false,
            },
        );
        self.recorder.record(TraceEvent::SharedAttached {
            at: now,
            conv: child.0,
            tokens: context_end,
            chunks: chain.len(),
        });
        debug_assert!(self.check_invariants());
        Ok(context_end)
    }

    /// Verifies internal accounting; used in debug assertions.
    fn check_invariants(&self) -> bool {
        let mut gpu = 0;
        let mut copied = 0;
        let mut cpu = 0;
        let mut ssd = 0;
        let mut cold = 0;
        let mut chain_refs: BTreeMap<ChunkId, usize> = BTreeMap::new();
        let mut chain_pins: BTreeMap<ChunkId, usize> = BTreeMap::new();
        for e in self.convs.values() {
            let mut chain_tokens = 0usize;
            for id in &e.shared {
                assert!(self.shared.contains_key(id), "chain id missing from pool");
                chain_tokens += self.shared.get(id).map_or(0, |s| s.tokens);
                *chain_refs.entry(*id).or_insert(0) += 1;
                if e.pinned {
                    *chain_pins.entry(*id).or_insert(0) += 1;
                }
            }
            assert_eq!(chain_tokens, e.shared_tokens, "shared_tokens drift");
            let mut pos = e.shared_tokens;
            for c in &e.chunks {
                assert!(c.tokens > 0 && c.tokens <= self.cfg.chunk_tokens);
                assert_eq!(c.context_end, pos + c.tokens, "context_end drift");
                pos += c.tokens;
                match c.tier {
                    Tier::Gpu => gpu += c.tokens,
                    Tier::GpuCopied => copied += c.tokens,
                    Tier::Cpu => cpu += c.tokens,
                    Tier::Ssd => ssd += c.tokens,
                    Tier::Cold => cold += c.tokens,
                    Tier::Dropped => {}
                }
            }
        }
        for (id, s) in &self.shared {
            assert!(s.tokens > 0 && s.tokens <= self.cfg.chunk_tokens);
            assert_ne!(s.tier, Tier::GpuCopied, "shared chunk holds a lazy copy");
            match s.tier {
                Tier::Gpu => gpu += s.tokens,
                Tier::Cpu => cpu += s.tokens,
                Tier::Ssd => ssd += s.tokens,
                Tier::Cold => cold += s.tokens,
                Tier::GpuCopied | Tier::Dropped => {}
            }
            let from_chains = chain_refs.get(id).copied().unwrap_or(0);
            assert_eq!(
                s.refs,
                from_chains + s.external_refs,
                "shared refcount drift"
            );
            assert_eq!(
                s.pinned_refs,
                chain_pins.get(id).copied().unwrap_or(0),
                "shared pinned-ref drift"
            );
        }
        assert_eq!(gpu, self.gpu_resident, "gpu_resident drift");
        assert_eq!(copied, self.gpu_copied, "gpu_copied drift");
        assert_eq!(cpu, self.cpu_resident, "cpu_resident drift");
        assert_eq!(ssd, self.ssd_resident, "ssd_resident drift");
        assert_eq!(cold, self.cold_resident, "cold_resident drift");
        assert!(self.gpu_slots_used() <= self.cfg.gpu_capacity_tokens);
        assert!(self.cpu_used() <= self.cfg.cpu_capacity_tokens);
        assert!(self.ssd_resident <= self.cfg.ssd_capacity_tokens);
        assert!(self.cold_resident <= self.cfg.cold_capacity_tokens);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CachedAttentionPolicy, LruPolicy, TrailingEndPolicy};
    use crate::prefix::synthetic_preamble;

    fn lru_cache(gpu: usize, cpu: usize) -> TieredKvCache {
        TieredKvCache::new(CacheConfig::for_test(32, gpu, cpu), Box::new(LruPolicy))
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// Manifest entries for private (non-shared) chunks of the given sizes.
    fn private_manifest(tokens: &[usize]) -> Vec<ManifestChunk> {
        tokens
            .iter()
            .map(|&tokens| ManifestChunk {
                id: ChunkId::NONE,
                tokens,
            })
            .collect()
    }

    #[test]
    fn append_builds_chunks() {
        let mut cache = lru_cache(1000, 1000);
        let c = SessionId(1);
        cache.append_tokens(c, 50, t(0.0)).unwrap();
        assert_eq!(cache.conversation_tokens(c), 50);
        cache.append_tokens(c, 20, t(1.0)).unwrap();
        assert_eq!(cache.conversation_tokens(c), 70);
        assert_eq!(cache.gpu_slots_used(), 70);
        // 70 tokens at chunk 32 = chunks of 32, 32, 6.
        let plan = cache.plan_restore(c);
        assert_eq!(plan.gpu_hit_tokens, 70);
        assert!(plan.is_full_gpu_hit());
    }

    #[test]
    fn export_import_round_trip_preserves_layout() {
        let mut src = lru_cache(1000, 1000);
        let c = SessionId(7);
        src.append_tokens(c, 70, t(0.0)).unwrap();
        src.unpin(c);
        let export = src.export_session(c).expect("unpinned session exports");
        assert!(!src.contains(c));
        assert_eq!(src.gpu_slots_used(), 0);
        assert_eq!(src.cpu_used(), 0);
        assert_eq!(export.streamable_tokens(), 70);
        assert_eq!(export.dropped_tokens(), 0);
        assert!(export.chunks.iter().all(|ch| ch.tier == Tier::Cpu));

        let mut dst = lru_cache(1000, 1000);
        let admitted = dst.import_session(export, t(1.0)).unwrap();
        assert_eq!(admitted, 70);
        assert_eq!(dst.cpu_used(), 70);
        let plan = dst.plan_restore(c);
        assert_eq!(plan.swap_in_tokens, 70);
        assert_eq!(plan.recompute_tokens, 0);
    }

    #[test]
    fn export_refuses_pinned_and_unknown_sessions() {
        let mut cache = lru_cache(1000, 1000);
        let c = SessionId(1);
        cache.append_tokens(c, 40, t(0.0)).unwrap();
        cache.pin(c);
        assert!(cache.export_session(c).is_none());
        assert_eq!(cache.conversation_tokens(c), 40);
        assert!(cache.export_session(SessionId(99)).is_none());
        cache.unpin(c);
        assert!(cache.export_session(c).is_some());
    }

    #[test]
    fn lost_chunks_become_recompute_obligations() {
        let mut src = lru_cache(1000, 1000);
        let c = SessionId(2);
        src.append_tokens(c, 96, t(0.0)).unwrap();
        src.unpin(c);
        let mut export = src.export_session(c).unwrap();
        assert_eq!(export.mark_lost(0), 32);
        assert_eq!(export.mark_lost(0), 0, "double-loss is idempotent");
        assert_eq!(export.streamable_tokens(), 64);
        assert_eq!(export.dropped_tokens(), 32);

        let mut dst = lru_cache(1000, 1000);
        assert_eq!(dst.import_session(export, t(1.0)).unwrap(), 64);
        let plan = dst.plan_restore(c);
        // A dropped leading chunk forces recomputation of the prefix;
        // the surviving CPU chunks behind it are swapped in.
        assert_eq!(plan.recompute_tokens, 32);
        assert_eq!(plan.swap_in_tokens, 64);
    }

    #[test]
    fn import_demotes_past_cpu_capacity() {
        let mut src = lru_cache(1000, 1000);
        let c = SessionId(3);
        src.append_tokens(c, 96, t(0.0)).unwrap();
        src.unpin(c);
        let export = src.export_session(c).unwrap();

        // Target CPU tier only fits one 32-token chunk.
        let mut dst = lru_cache(1000, 40);
        let before = dst.stats().dropped_tokens;
        assert_eq!(dst.import_session(export, t(1.0)).unwrap(), 32);
        assert_eq!(dst.stats().dropped_tokens - before, 64);
        assert_eq!(dst.conversation_tokens(c), 96);
        assert_eq!(dst.cpu_used(), 32);
    }

    #[test]
    fn import_rejects_existing_session() {
        let mut a = lru_cache(1000, 1000);
        let c = SessionId(4);
        a.append_tokens(c, 32, t(0.0)).unwrap();
        a.unpin(c);
        let export = a.export_session(c).unwrap();

        let mut b = lru_cache(1000, 1000);
        b.append_tokens(c, 32, t(0.0)).unwrap();
        assert!(matches!(
            b.import_session(export, t(1.0)),
            Err(CacheError::SessionExists(s)) if s == c
        ));
        assert_eq!(b.conversation_tokens(c), 32);
    }

    #[test]
    fn append_rejects_overflow() {
        let mut cache = lru_cache(64, 64);
        let c = SessionId(1);
        assert!(matches!(
            cache.append_tokens(c, 65, t(0.0)),
            Err(CacheError::OutOfGpu { needed: 65, .. })
        ));
        assert_eq!(cache.conversation_tokens(c), 0);
    }

    #[test]
    fn watermark_triggers_ahead_of_time_swap() {
        // Capacity 128, watermark 25% -> swap when effective free < 32.
        let mut cache = lru_cache(128, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 64, t(0.0)).unwrap();
        cache.unpin(a);
        // 64 free (50%): above the watermark, nothing to do.
        assert!(cache.maybe_swap_out(t(0.5)).is_empty());
        cache.append_tokens(a, 36, t(1.0)).unwrap();
        cache.unpin(a);
        // 28 effectively free -> copy exactly one 32-token chunk.
        let ops = cache.maybe_swap_out(t(1.5));
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].dropped);
        assert_eq!(ops[0].tokens, 32);
        assert!(cache.gpu_free_effective() >= 32);
        // The copied chunk still revalidates for free on return.
        let plan = cache.plan_restore(a);
        assert_eq!(plan.revalidate_tokens, 32);
        assert_eq!(plan.swap_in_tokens, 0);
    }

    #[test]
    fn revalidation_restores_for_free() {
        let mut cache = lru_cache(128, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 100, t(0.0)).unwrap();
        cache.unpin(a);
        let ops = cache.maybe_swap_out(t(1.0));
        assert_eq!(ops.len(), 1, "one chunk copied reaches the watermark");
        let plan = cache.commit_restore(a, t(2.0)).unwrap();
        assert_eq!(plan.new_gpu_slots(), 0, "revalidation costs nothing");
        assert_eq!(cache.stats().revalidated_tokens, 32);
        assert_eq!(cache.stats().swapped_in_tokens, 0);
        assert!(cache.stats().full_gpu_hits == 1);
    }

    #[test]
    fn lazy_copies_reclaimed_under_pressure_then_swapped_in() {
        let mut cache = lru_cache(128, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 100, t(0.0)).unwrap();
        cache.unpin(a);
        cache.maybe_swap_out(t(1.0));
        // A second conversation consumes the reclaimable slots.
        let b = SessionId(2);
        cache.append_tokens(b, 60, t(2.0)).unwrap();
        // A's copied chunk lost its GPU slot.
        let plan = cache.plan_restore(a);
        assert_eq!(plan.swap_in_tokens, 32);
        assert_eq!(plan.revalidate_tokens, 0);
        // B must release space before A can restore (b drops from gpu).
        cache.unpin(b);
        cache.suspend(b, t(3.0));
        let plan = cache.commit_restore(a, t(3.0)).unwrap();
        assert_eq!(plan.new_gpu_slots(), 32);
        assert_eq!(cache.stats().swapped_in_tokens, 32);
        assert_eq!(cache.stats().partial_hits, 1);
    }

    #[test]
    fn chunk_too_big_for_cpu_tier_is_dropped() {
        // CPU tier smaller than one chunk: eviction must drop, not copy.
        let mut cache = lru_cache(128, 16);
        let a = SessionId(1);
        cache.append_tokens(a, 128, t(0.0)).unwrap();
        cache.unpin(a);
        let ops = cache.maybe_swap_out(t(1.0));
        assert_eq!(ops.len(), 1);
        assert!(ops[0].dropped);
        assert_eq!(ops[0].chunk, 0, "leading chunk goes first under LRU");
        assert_eq!(cache.stats().dropped_tokens, 32);
    }

    #[test]
    fn cpu_pressure_drops_cpu_chunks_leading_first() {
        let mut cache = lru_cache(192, 64);
        // Conversation A is suspended to CPU (64 tokens fill the tier).
        let a = SessionId(1);
        cache.append_tokens(a, 64, t(0.0)).unwrap();
        cache.suspend(a, t(1.0));
        assert_eq!(cache.cpu_used(), 64);
        // Conversation B fills the GPU and triggers eviction; copying B's
        // chunk requires dropping A's leading CPU chunk.
        let b = SessionId(2);
        cache.append_tokens(b, 192, t(2.0)).unwrap();
        cache.unpin(b);
        let ops = cache.maybe_swap_out(t(3.0));
        assert!(!ops.is_empty());
        assert!(!ops[0].dropped, "B's chunk was copied, not dropped");
        assert!(cache.stats().dropped_tokens >= 32, "A lost a CPU chunk");
        let plan_a = cache.plan_restore(a);
        assert!(plan_a.recompute_tokens >= 32);
        assert_eq!(
            plan_a.segments.first().map(|(r, t)| (r.clone(), *t)),
            Some((0..64, Tier::Dropped)),
            "A's chunks dropped from the leading end"
        );
    }

    #[test]
    fn restore_plan_splits_figure5_segments() {
        let mut cache = lru_cache(128, 64);
        let a = SessionId(1);
        cache.append_tokens(a, 128, t(0.0)).unwrap();
        // Suspending with a CPU tier that holds only two chunks: chunks
        // 0 and 1 get copied but are then dropped to make room for 2 and
        // 3, leaving the paper's Figure-5 layout — dropped prefix, CPU
        // middle.
        cache.suspend(a, t(1.0));
        let plan = cache.plan_restore(a);
        assert_eq!(plan.recompute_tokens, 64);
        assert_eq!(plan.swap_in_tokens, 64);
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(plan.segments[0], (0..64, Tier::Dropped));
        assert_eq!(plan.segments[1], (64..128, Tier::Cpu));
        assert_eq!(plan.recompute_ranges(), vec![0..64]);
        assert!(!plan.is_full_gpu_hit());
        assert_eq!(plan.new_gpu_slots(), 128);
    }

    #[test]
    fn suspend_moves_everything_off_gpu() {
        let mut cache = lru_cache(256, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 100, t(0.0)).unwrap();
        let moved = cache.suspend(a, t(1.0));
        assert_eq!(moved, 100);
        assert_eq!(cache.gpu_slots_used(), 0);
        let plan = cache.plan_restore(a);
        assert_eq!(plan.swap_in_tokens, 100);
    }

    #[test]
    fn pinned_conversations_are_not_evicted() {
        let mut cache = lru_cache(128, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 120, t(0.0)).unwrap();
        // Still pinned: swap-out finds no candidates.
        let ops = cache.maybe_swap_out(t(1.0));
        assert!(ops.is_empty());
        cache.unpin(a);
        assert!(!cache.maybe_swap_out(t(1.0)).is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_active_conversation() {
        let mut cache = lru_cache(96, 1000);
        let (a, b) = (SessionId(1), SessionId(2));
        cache.append_tokens(a, 32, t(0.0)).unwrap();
        cache.append_tokens(b, 32, t(5.0)).unwrap();
        cache.unpin(a);
        cache.unpin(b);
        // 32 free = 33% > 25%: no swap yet. Add one more chunk.
        let c = SessionId(3);
        cache.append_tokens(c, 32, t(6.0)).unwrap();
        let ops = cache.maybe_swap_out(t(7.0));
        assert_eq!(ops[0].conv, a, "oldest conversation evicted first");
    }

    #[test]
    fn whole_conversation_policy_takes_all_chunks_of_one_conv() {
        let mut cache = TieredKvCache::new(
            CacheConfig::for_test(32, 192, 1000),
            Box::new(CachedAttentionPolicy),
        );
        let (a, b) = (SessionId(1), SessionId(2));
        cache.append_tokens(a, 64, t(0.0)).unwrap();
        cache.append_tokens(b, 96, t(5.0)).unwrap();
        cache.unpin(a);
        cache.unpin(b);
        // 32 free < 48 trigger: evict. Policy must take both of A's chunks
        // before any of B's.
        let ops = cache.maybe_swap_out(t(6.0));
        assert!(ops.len() >= 2);
        assert!(ops[0].conv == a && ops[1].conv == a);
    }

    #[test]
    fn trailing_policy_evicts_from_the_back() {
        let mut cache = TieredKvCache::new(
            CacheConfig::for_test(32, 128, 1000),
            Box::new(TrailingEndPolicy),
        );
        let a = SessionId(1);
        cache.append_tokens(a, 128, t(0.0)).unwrap();
        cache.unpin(a);
        let ops = cache.maybe_swap_out(t(1.0));
        assert_eq!(ops[0].chunk, 3, "trailing chunk first");
    }

    #[test]
    fn remove_conversation_frees_all_tiers() {
        let mut cache = lru_cache(128, 64);
        let a = SessionId(1);
        cache.append_tokens(a, 128, t(0.0)).unwrap();
        cache.unpin(a);
        cache.maybe_swap_out(t(1.0));
        cache.remove_conversation(a);
        assert_eq!(cache.gpu_slots_used(), 0);
        assert_eq!(cache.cpu_used(), 0);
        assert_eq!(cache.conversation_tokens(a), 0);
    }

    #[test]
    fn commit_restore_fails_without_space_and_is_side_effect_free() {
        let mut cache = lru_cache(96, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 96, t(0.0)).unwrap();
        cache.unpin(a);
        cache.suspend(a, t(1.0));
        // Fill the GPU with another pinned conversation.
        let b = SessionId(2);
        cache.append_tokens(b, 96, t(2.0)).unwrap();
        let before = cache.plan_restore(a);
        assert!(cache.commit_restore(a, t(3.0)).is_err());
        assert_eq!(cache.plan_restore(a), before, "failed commit mutated state");
    }

    /// Retention-value eviction order: cheap-to-recompute leading chunks
    /// of long-idle conversations go first; an active conversation's
    /// trailing chunk goes last.
    #[test]
    fn retention_value_orders_evictions() {
        use crate::policy::RetentionValuePolicy;
        use pensieve_model::{CostModel, HardwareSpec, ModelConfig, ProfiledCostTable};
        let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
        let policy = RetentionValuePolicy::new(ProfiledCostTable::profile(&cost, 32, 16384));
        let mut cache = TieredKvCache::new(CacheConfig::for_test(32, 512, 4096), Box::new(policy));
        // Conversation A: long context, idle since t=0.
        let a = SessionId(1);
        cache.append_tokens(a, 256, t(0.0)).unwrap();
        cache.unpin(a);
        // Conversation B: short context, active recently.
        let b = SessionId(2);
        cache.append_tokens(b, 128, t(100.0)).unwrap();
        cache.unpin(b);
        // Force deep eviction.
        let ops = cache.swap_out_until(512, t(101.0));
        assert!(!ops.is_empty());
        // The very first eviction is A's leading chunk (idle + cheap).
        assert_eq!(ops[0].conv, a);
        assert_eq!(ops[0].chunk, 0);
        // All of A's chunks go before any of B's (A idle 101 s vs 1 s —
        // the idle-time ratio dominates the cost ratio here).
        let first_b = ops.iter().position(|o| o.conv == b);
        let last_a = ops.iter().rposition(|o| o.conv == a);
        if let (Some(fb), Some(la)) = (first_b, last_a) {
            assert!(la < fb, "A (idle) must evict before B (recent)");
        }
        // Within A, chunks leave leading-end first.
        let a_chunks: Vec<usize> = ops
            .iter()
            .filter(|o| o.conv == a)
            .map(|o| o.chunk)
            .collect();
        let mut sorted = a_chunks.clone();
        sorted.sort_unstable();
        assert_eq!(a_chunks, sorted, "leading chunks evicted first");
    }

    /// Stale lazy-copy FIFO entries (revalidated chunks) are skipped, and
    /// re-copied chunks reclaim correctly afterwards.
    #[test]
    fn reclamation_skips_revalidated_copies() {
        let mut cache = lru_cache(128, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 100, t(0.0)).unwrap();
        cache.unpin(a);
        // Copy one chunk out, then revalidate it by restoring A.
        assert_eq!(cache.maybe_swap_out(t(1.0)).len(), 1);
        cache.commit_restore(a, t(2.0)).unwrap();
        assert_eq!(cache.stats().revalidated_tokens, 32);
        cache.unpin(a);
        // Copy again; the stale FIFO entry must not confuse reclamation.
        cache.append_tokens(a, 4, t(3.0)).unwrap();
        cache.unpin(a);
        let ops = cache.maybe_swap_out(t(4.0));
        assert!(!ops.is_empty());
        // A new conversation forces reclamation of the fresh copy.
        let b = SessionId(2);
        cache.append_tokens(b, 50, t(5.0)).unwrap();
        assert!(cache.gpu_slots_used() <= 128);
        let plan = cache.plan_restore(a);
        assert!(plan.swap_in_tokens >= 32, "fresh copy was reclaimed to CPU");
    }

    #[test]
    fn lost_cpu_chunk_becomes_dropped_and_recomputes() {
        let mut cache = lru_cache(256, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 64, t(0.0)).unwrap();
        cache.suspend(a, t(1.0));
        let listing = cache.cpu_resident_chunks();
        assert_eq!(listing, vec![(a, 0, 32), (a, 1, 32)]);
        let tokens = cache.mark_chunk_lost(a, 0).unwrap();
        assert_eq!(tokens, 32);
        assert_eq!(cache.stats().lost_chunk_tokens, 32);
        let plan = cache.plan_restore(a);
        assert_eq!(plan.recompute_tokens, 32);
        assert_eq!(plan.swap_in_tokens, 32);
        // A second fault on the same chunk is rejected: no CPU copy left.
        assert_eq!(
            cache.mark_chunk_lost(a, 0),
            Err(CacheError::ChunkNotInCpuTier { conv: a, chunk: 0 })
        );
    }

    #[test]
    fn corrupted_lazy_copy_reverts_to_gpu_resident() {
        let mut cache = lru_cache(128, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 100, t(0.0)).unwrap();
        cache.unpin(a);
        // One chunk gets lazily copied by the watermark pass.
        assert_eq!(cache.maybe_swap_out(t(1.0)).len(), 1);
        let listing = cache.cpu_resident_chunks();
        assert_eq!(listing.len(), 1);
        let (conv, idx, _) = listing[0];
        let tokens = cache.mark_chunk_corrupt(conv, idx).unwrap();
        assert_eq!(tokens, 32);
        assert_eq!(cache.stats().corrupted_chunk_tokens, 32);
        // The GPU bytes were never touched: a restore is still a full hit.
        let plan = cache.plan_restore(a);
        assert!(plan.is_full_gpu_hit());
        assert_eq!(cache.cpu_used(), 0);
        // The stale copied_fifo entry must not break later reclamation.
        let b = SessionId(2);
        cache.append_tokens(b, 28, t(2.0)).unwrap();
        assert!(cache.gpu_slots_used() <= 128);
    }

    #[test]
    fn drop_cpu_chunks_forces_recompute_fallback() {
        let mut cache = lru_cache(256, 1000);
        let a = SessionId(1);
        cache.append_tokens(a, 96, t(0.0)).unwrap();
        cache.suspend(a, t(1.0));
        assert_eq!(cache.drop_cpu_chunks(a, t(2.0)), 96);
        assert_eq!(cache.stats().swap_in_fault_tokens, 96);
        assert_eq!(cache.cpu_used(), 0);
        let plan = cache.plan_restore(a);
        assert_eq!(plan.swap_in_tokens, 0);
        assert_eq!(plan.recompute_tokens, 96);
        // Idempotent and safe on unknown conversations.
        assert_eq!(cache.drop_cpu_chunks(a, t(2.0)), 0);
        assert_eq!(cache.drop_cpu_chunks(SessionId(99), t(2.0)), 0);
    }

    #[test]
    fn fault_apis_reject_unknown_targets() {
        let mut cache = lru_cache(64, 64);
        assert_eq!(
            cache.mark_chunk_lost(SessionId(9), 0),
            Err(CacheError::UnknownConversation(SessionId(9)))
        );
        let a = SessionId(1);
        cache.append_tokens(a, 32, t(0.0)).unwrap();
        // GPU-resident chunk has no CPU copy.
        assert_eq!(
            cache.mark_chunk_corrupt(a, 0),
            Err(CacheError::ChunkNotInCpuTier { conv: a, chunk: 0 })
        );
        // Out-of-range chunk index.
        assert!(cache.mark_chunk_lost(a, 7).is_err());
    }

    #[test]
    fn unknown_conversation_has_empty_plan() {
        let cache = lru_cache(10, 10);
        let plan = cache.plan_restore(SessionId(42));
        assert_eq!(plan, RequestPlan::default());
        assert!(plan.is_full_gpu_hit());
    }

    fn deep_cache(gpu: usize, cpu: usize, ssd: usize, cold: usize) -> TieredKvCache {
        TieredKvCache::new(
            CacheConfig::for_test(32, gpu, cpu).with_deep_tiers(ssd, cold),
            Box::new(LruPolicy),
        )
    }

    #[test]
    fn eviction_cascades_down_the_tier_hierarchy() {
        // One 32-token chunk per host tier: each suspension pushes the
        // previous resident one tier further down until the oldest falls
        // off the bottom.
        let mut cache = deep_cache(128, 32, 32, 32);
        let (a, b, c, d) = (SessionId(1), SessionId(2), SessionId(3), SessionId(4));
        for (i, s) in [a, b, c, d].into_iter().enumerate() {
            let at = t(2.0 * i as f64);
            cache.append_tokens(s, 32, at).unwrap();
            cache.suspend(s, t(2.0 * i as f64 + 1.0));
        }
        let tier_of = |cache: &TieredKvCache, s: SessionId| {
            cache
                .plan_restore(s)
                .segments
                .first()
                .map(|(_, tier)| *tier)
                .unwrap()
        };
        assert_eq!(tier_of(&cache, a), Tier::Dropped, "oldest fell off");
        assert_eq!(tier_of(&cache, b), Tier::Cold);
        assert_eq!(tier_of(&cache, c), Tier::Ssd);
        assert_eq!(tier_of(&cache, d), Tier::Cpu);
        assert_eq!(cache.cpu_used(), 32);
        assert_eq!(cache.ssd_used(), 32);
        assert_eq!(cache.cold_used(), 32);
        // a: cpu->ssd, ssd->cold; b: cpu->ssd, ssd->cold; c: cpu->ssd.
        assert_eq!(cache.stats().demoted_tokens, 160);
        assert_eq!(cache.stats().dropped_tokens, 32);
    }

    #[test]
    fn deep_tier_chunks_restore_as_hits() {
        let mut cache = deep_cache(128, 32, 32, 32);
        let (a, b, c) = (SessionId(1), SessionId(2), SessionId(3));
        for (i, s) in [a, b, c].into_iter().enumerate() {
            let at = t(2.0 * i as f64);
            cache.append_tokens(s, 32, at).unwrap();
            cache.suspend(s, t(2.0 * i as f64 + 1.0));
        }
        // a is cold, b is SSD, c is CPU.
        let plan_b = cache.plan_restore(b);
        assert_eq!(plan_b.ssd_read_tokens, 32);
        assert_eq!(plan_b.new_gpu_slots(), 32);
        assert!(!plan_b.is_full_gpu_hit());
        let committed = cache.commit_restore(b, t(10.0)).unwrap();
        assert_eq!(committed.ssd_read_tokens, 32);
        assert_eq!(cache.stats().ssd_hit_tokens, 32);
        assert_eq!(cache.ssd_used(), 0, "SSD chunk promoted to GPU");

        let plan_a = cache.plan_restore(a);
        assert_eq!(plan_a.cold_read_tokens, 32);
        cache.commit_restore(a, t(11.0)).unwrap();
        assert_eq!(cache.stats().cold_hit_tokens, 32);
        assert_eq!(cache.cold_used(), 0);
        // Both restores were served entirely from the deep tiers.
        assert_eq!(cache.stats().hit_rate(), 1.0);
    }

    #[test]
    fn zero_capacity_deep_tiers_reduce_to_two_tier_dropping() {
        // with_deep_tiers(0, 0) is the default everywhere: CPU pressure
        // must drop, exactly as before this hierarchy existed.
        let mut cache = deep_cache(128, 32, 0, 0);
        let (a, b) = (SessionId(1), SessionId(2));
        cache.append_tokens(a, 32, t(0.0)).unwrap();
        cache.suspend(a, t(1.0));
        cache.append_tokens(b, 32, t(2.0)).unwrap();
        cache.suspend(b, t(3.0));
        assert_eq!(cache.stats().demoted_tokens, 0);
        assert_eq!(cache.stats().dropped_tokens, 32);
        assert_eq!(cache.plan_restore(a).recompute_tokens, 32);
    }

    #[test]
    fn drop_deep_chunks_forces_recompute() {
        let mut cache = deep_cache(128, 32, 32, 32);
        let (a, b) = (SessionId(1), SessionId(2));
        cache.append_tokens(a, 32, t(0.0)).unwrap();
        cache.suspend(a, t(1.0));
        cache.append_tokens(b, 32, t(2.0)).unwrap();
        cache.suspend(b, t(3.0));
        // a is on SSD now; a failed device read drops it for recompute.
        assert_eq!(cache.drop_deep_chunks(a, t(4.0)), 32);
        assert_eq!(cache.stats().cold_read_fault_tokens, 32);
        assert_eq!(cache.ssd_used(), 0);
        assert_eq!(cache.plan_restore(a).recompute_tokens, 32);
        // Unknown conversations and warm sessions are no-ops.
        assert_eq!(cache.drop_deep_chunks(SessionId(9), t(4.0)), 0);
        assert_eq!(cache.drop_deep_chunks(b, t(4.0)), 0);
    }

    #[test]
    fn rehydrate_installs_cold_chunks_up_to_capacity() {
        let mut cache = deep_cache(128, 32, 32, 64);
        let a = SessionId(7);
        // Three chunks, cold tier fits two: trailing chunk drops to a
        // recompute obligation.
        assert_eq!(
            cache
                .rehydrate_session(a, &private_manifest(&[32, 32, 32]), t(0.0))
                .unwrap(),
            64
        );
        assert_eq!(cache.cold_used(), 64);
        assert_eq!(cache.stats().rehydrated_tokens, 64);
        assert_eq!(cache.conversation_tokens(a), 96);
        let plan = cache.plan_restore(a);
        assert_eq!(plan.cold_read_tokens, 64);
        assert_eq!(plan.recompute_tokens, 32);
        // Restoring after rehydration promotes the cold chunks to GPU.
        cache.commit_restore(a, t(1.0)).unwrap();
        assert_eq!(cache.stats().cold_hit_tokens, 64);
        assert_eq!(cache.cold_used(), 0);
        // A second rehydration of a live session is rejected unchanged.
        assert!(matches!(
            cache.rehydrate_session(a, &private_manifest(&[32]), t(2.0)),
            Err(CacheError::SessionExists(s)) if s == a
        ));
    }

    #[test]
    fn deep_tiers_round_trip_through_export_import() {
        let mut src = deep_cache(128, 32, 32, 32);
        let (a, b) = (SessionId(1), SessionId(2));
        src.append_tokens(a, 32, t(0.0)).unwrap();
        src.suspend(a, t(1.0));
        src.append_tokens(b, 32, t(2.0)).unwrap();
        src.suspend(b, t(3.0));
        // a sits on SSD; export stages it back to CPU for the wire.
        let export = src.export_session(a).unwrap();
        assert_eq!(src.ssd_used(), 0);
        assert!(export.chunks.iter().all(|c| c.tier == Tier::Cpu));

        let mut dst = deep_cache(128, 64, 0, 0);
        assert_eq!(dst.import_session(export, t(4.0)).unwrap(), 32);
        assert_eq!(dst.cpu_used(), 32);
        assert_eq!(dst.plan_restore(a).swap_in_tokens, 32);
    }

    // ---- Cross-conversation shared chunks ----

    #[test]
    fn attach_shares_one_physical_copy_across_sharers() {
        let mut cache = lru_cache(4096, 4096);
        let preamble = synthetic_preamble(1, 96); // 3 chunks of 32
        let chain = cache.register_shared(&preamble, t(0.0));
        assert_eq!(chain.len(), 3);
        assert_eq!(cache.lookup_shared(&preamble), chain);
        for i in 0..4u64 {
            let conv = SessionId(i + 1);
            assert_eq!(cache.attach_shared(conv, &chain, t(0.1)).unwrap(), 96);
            cache.commit_restore(conv, t(0.2)).unwrap();
            cache.append_tokens(conv, 32, t(0.3)).unwrap();
            cache.unpin(conv);
        }
        // First restore computes the chain once; later ones hit it.
        assert_eq!(cache.stats().shared_hit_tokens, 3 * 96);
        for id in &chain {
            assert_eq!(cache.shared_refs(*id), 4);
        }
        // One chain + four private turns, not four chains.
        assert_eq!(cache.physical_resident_tokens(), 96 + 4 * 32);
        assert_eq!(cache.logical_resident_tokens(), 4 * 96 + 4 * 32);
        // Positions: private context starts after the shared chain.
        assert_eq!(cache.conversation_tokens(SessionId(1)), 128);
    }

    #[test]
    fn attach_validates_chain_and_session() {
        let mut cache = lru_cache(1024, 1024);
        let chain = cache.register_shared(&synthetic_preamble(2, 64), t(0.0));
        cache.attach_shared(SessionId(1), &chain, t(0.1)).unwrap();
        assert!(matches!(
            cache.attach_shared(SessionId(1), &chain, t(0.2)),
            Err(CacheError::SessionExists(s)) if s == SessionId(1)
        ));
        assert!(matches!(
            cache.attach_shared(SessionId(2), &[ChunkId(42)], t(0.3)),
            Err(CacheError::UnknownChunk(id)) if id == ChunkId(42)
        ));
        // Out-of-order ids break context continuity.
        let reversed: Vec<ChunkId> = chain.iter().rev().copied().collect();
        assert!(matches!(
            cache.attach_shared(SessionId(2), &reversed, t(0.4)),
            Err(CacheError::BrokenSharedChain(_))
        ));
        assert!(!cache.contains(SessionId(2)), "failed attach mutates nothing");
    }

    #[test]
    fn shared_chunk_survives_eviction_while_referenced() {
        // GPU fits the shared chunk plus one private chunk; CPU has room.
        let mut cache = lru_cache(64, 256);
        let chain = cache.register_shared(&synthetic_preamble(3, 32), t(0.0));
        let (a, b) = (SessionId(1), SessionId(2));
        cache.attach_shared(a, &chain, t(0.1)).unwrap();
        cache.commit_restore(a, t(0.2)).unwrap();
        cache.append_tokens(a, 32, t(0.3)).unwrap();
        cache.unpin(a);
        // Forcing full free space must evict, but the shared chunk moves
        // to CPU (its sharer still references it) instead of dropping.
        cache.swap_out_until(64, t(1.0));
        assert_eq!(cache.stats().dropped_tokens, 0);
        let plan = cache.plan_restore(a);
        assert_eq!(plan.recompute_tokens, 0);
        // A second sharer attaching later still finds the chunk.
        cache.attach_shared(b, &chain, t(2.0)).unwrap();
        assert_eq!(cache.shared_refs(chain[0]), 2);
        assert!(cache.plan_restore(b).shared_hit_tokens > 0);
    }

    #[test]
    fn last_release_makes_shared_chunk_droppable() {
        let mut cache = lru_cache(64, 0); // no CPU tier: eviction = drop
        let chain = cache.register_shared(&synthetic_preamble(4, 32), t(0.0));
        let a = SessionId(1);
        cache.attach_shared(a, &chain, t(0.1)).unwrap();
        cache.commit_restore(a, t(0.2)).unwrap();
        cache.unpin(a);
        // Referenced with nowhere to go: eviction keeps it resident.
        cache.swap_out_until(64, t(1.0));
        assert_eq!(cache.gpu_slots_used(), 32);
        // Last sharer leaves; now the same pressure drops it.
        cache.remove_conversation(a);
        assert_eq!(cache.shared_refs(chain[0]), 0);
        cache.swap_out_until(64, t(2.0));
        assert_eq!(cache.gpu_slots_used(), 0);
        assert_eq!(cache.stats().dropped_tokens, 32);
        // Identity survives the drop: a new attach recomputes, not errors.
        let b = SessionId(2);
        cache.attach_shared(b, &chain, t(3.0)).unwrap();
        assert_eq!(cache.plan_restore(b).recompute_tokens, 32);
    }

    #[test]
    fn global_chunks_are_never_evicted() {
        let mut cache = lru_cache(96, 0);
        let chain = cache.register_shared(&synthetic_preamble(5, 32), t(0.0));
        let handles = cache.materialize_global(&chain, t(0.0)).unwrap();
        assert_eq!(cache.gpu_slots_used(), 32);
        cache.swap_out_until(96, t(1.0));
        assert_eq!(cache.gpu_slots_used(), 32, "global chunk stays resident");
        for h in handles {
            cache.release(h).unwrap();
        }
        assert_eq!(leaked_chunk_handles(), 0);
    }

    #[test]
    fn handle_refcounts_are_balanced_and_typed() {
        let mut cache = lru_cache(256, 0);
        let chain = cache.register_shared(&synthetic_preamble(6, 32), t(0.0));
        let id = chain[0];
        assert!(matches!(
            cache.acquire(ChunkId(7)),
            Err(CacheError::UnknownChunk(_))
        ));
        let h1 = cache.acquire(id).unwrap();
        let h2 = cache.acquire(id).unwrap();
        assert_eq!(cache.shared_refs(id), 2);
        cache.release(h1).unwrap();
        cache.release(h2).unwrap();
        assert_eq!(cache.shared_refs(id), 0);
        // A forged handle releases into an empty refcount: typed error,
        // no panic, no underflow.
        let forged = ChunkHandle { id, armed: false };
        assert!(matches!(
            cache.release(forged),
            Err(CacheError::RefCountUnderflow(e)) if e == id
        ));
        assert_eq!(cache.shared_refs(id), 0);
    }

    #[test]
    fn fork_shares_parent_history_without_copying() {
        let mut cache = lru_cache(4096, 4096);
        let (parent, child) = (SessionId(1), SessionId(2));
        cache.append_tokens(parent, 96, t(0.0)).unwrap();
        cache.unpin(parent);
        let before_physical = cache.physical_resident_tokens();
        assert_eq!(cache.fork_session(parent, child, t(1.0)).unwrap(), 96);
        // No bytes copied: physical stays put, logical doubles.
        assert_eq!(cache.physical_resident_tokens(), before_physical);
        assert_eq!(cache.logical_resident_tokens(), 2 * before_physical);
        assert_eq!(cache.conversation_tokens(parent), 96);
        assert_eq!(cache.conversation_tokens(child), 96);
        // Both continue independently from the same point.
        cache.commit_restore(parent, t(2.0)).unwrap();
        cache.append_tokens(parent, 32, t(2.1)).unwrap();
        cache.unpin(parent);
        cache.commit_restore(child, t(3.0)).unwrap();
        cache.append_tokens(child, 16, t(3.1)).unwrap();
        cache.unpin(child);
        assert_eq!(cache.conversation_tokens(parent), 128);
        assert_eq!(cache.conversation_tokens(child), 112);
        // Fork errors are typed and non-mutating.
        assert!(matches!(
            cache.fork_session(SessionId(9), SessionId(10), t(4.0)),
            Err(CacheError::UnknownConversation(_))
        ));
        assert!(matches!(
            cache.fork_session(parent, child, t(4.0)),
            Err(CacheError::SessionExists(_))
        ));
    }

    #[test]
    fn manifest_round_trips_shared_chain_through_rehydrate() {
        let mut cache = deep_cache(4096, 64, 64, 256);
        let chain = cache.register_shared(&synthetic_preamble(8, 64), t(0.0));
        let a = SessionId(1);
        cache.attach_shared(a, &chain, t(0.1)).unwrap();
        cache.commit_restore(a, t(0.2)).unwrap();
        cache.append_tokens(a, 32, t(0.3)).unwrap();
        cache.unpin(a);
        let manifest = cache.manifest_chunks(a);
        assert_eq!(manifest.len(), 3);
        assert_eq!(manifest[0].id, chain[0]);
        assert_eq!(manifest[2].id, ChunkId::NONE);
        cache.remove_conversation(a);
        // Rehydration re-attaches the chain (still pooled) and installs
        // the private tail cold.
        let got = cache.rehydrate_session(a, &manifest, t(1.0)).unwrap();
        assert_eq!(got, 96, "64 shared re-attached + 32 cold-admitted");
        assert_eq!(cache.shared_refs(chain[0]), 1);
        assert_eq!(cache.conversation_tokens(a), 96);
        assert_eq!(cache.plan_restore(a).recompute_tokens, 0);
    }

    #[test]
    fn export_releases_and_import_reattaches_shared_chain() {
        let mut src = lru_cache(4096, 4096);
        let mut dst = lru_cache(4096, 4096);
        let preamble = synthetic_preamble(9, 64);
        let chain = src.register_shared(&preamble, t(0.0));
        // The destination knows the same preamble (content addressing
        // derives identical ids).
        assert_eq!(dst.register_shared(&preamble, t(0.0)), chain);
        let a = SessionId(1);
        src.attach_shared(a, &chain, t(0.1)).unwrap();
        src.commit_restore(a, t(0.2)).unwrap();
        src.append_tokens(a, 32, t(0.3)).unwrap();
        src.unpin(a);
        let export = src.export_session(a).unwrap();
        assert_eq!(src.shared_refs(chain[0]), 0, "export releases the ref");
        assert_eq!(export.shared.len(), 2);
        dst.import_session(export, t(1.0)).unwrap();
        assert_eq!(dst.shared_refs(chain[0]), 1);
        assert_eq!(dst.conversation_tokens(a), 96);
        // The chain was never materialized at dst, so it recomputes once
        // — but the private tail transferred as bytes.
        let plan = dst.plan_restore(a);
        assert_eq!(plan.swap_in_tokens, 32);
        assert_eq!(plan.recompute_tokens, 64);
    }
}
