//! Core identifiers and configuration for the tiered cache.

use pensieve_model::{CostModel, ModelConfig};

/// Identifier of a conversation whose context the cache tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Where a chunk's KV-tokens currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Resident in GPU memory only.
    Gpu,
    /// Copied to CPU ahead of time; the GPU copy still exists but its slots
    /// are reclaimable (lazy reclamation, §4.3.2). Counts toward *both*
    /// tiers' usage until the GPU copy is reclaimed or revalidated.
    GpuCopied,
    /// Resident in CPU memory only; must be swapped in before use.
    Cpu,
    /// Demoted to the simulated NVMe SSD (tier 2); must be read back
    /// through the CPU on its way to the GPU.
    Ssd,
    /// Demoted to the cold NFS/object store (tier 3) — the slowest,
    /// largest and only restart-durable tier.
    Cold,
    /// Dropped entirely; must be recomputed from raw tokens.
    Dropped,
}

/// State of one chunk of a conversation's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkState {
    /// Current tier.
    pub tier: Tier,
    /// Number of tokens in the chunk (the trailing chunk may be partial).
    pub tokens: usize,
    /// Context length at the chunk's end: the `l` of `Cost(l)`.
    pub context_end: usize,
}

/// Reference to a chunk: conversation plus chunk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkRef {
    /// Owning conversation.
    pub conv: SessionId,
    /// Zero-based chunk index within the conversation's context.
    pub index: usize,
}

/// Capacity and policy parameters of the tiered cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Tokens per eviction chunk (paper: 32).
    pub chunk_tokens: usize,
    /// GPU KV capacity in tokens.
    pub gpu_capacity_tokens: usize,
    /// CPU cache capacity in tokens.
    pub cpu_capacity_tokens: usize,
    /// SSD (tier-2) capacity in tokens; `0` disables the tier and CPU
    /// evictions drop chunks, as in the two-tier paper configuration.
    pub ssd_capacity_tokens: usize,
    /// Cold-store (tier-3) capacity in tokens; `0` disables the tier.
    pub cold_capacity_tokens: usize,
    /// Start ahead-of-time swap-out when free GPU fraction drops below
    /// this (paper: 0.25).
    pub swap_watermark: f64,
    /// Fraction of GPU slots reserved for running decodes; new requests are
    /// not admitted below this free fraction (paper: 0.10).
    pub decode_reserve: f64,
}

impl CacheConfig {
    /// Derives capacities from a model + hardware pair: the 40 GB GPU KV
    /// budget and the host cache size divided by the model's per-token KV
    /// footprint.
    ///
    /// # Panics
    ///
    /// Panics if the model stores zero-sized KV tokens.
    #[must_use]
    pub fn from_model(cfg: &ModelConfig, cost: &CostModel) -> Self {
        let hw = cost.hardware();
        let per_token = cfg.kv_bytes_per_token();
        assert!(per_token > 0);
        CacheConfig {
            chunk_tokens: 32,
            gpu_capacity_tokens: hw.total_gpu_kv_budget() / per_token,
            cpu_capacity_tokens: hw.total_cpu_cache_bytes() / per_token,
            ssd_capacity_tokens: 0,
            cold_capacity_tokens: 0,
            swap_watermark: 0.25,
            decode_reserve: 0.10,
        }
    }

    /// A small configuration for unit tests: capacities given directly.
    #[must_use]
    pub fn for_test(chunk_tokens: usize, gpu: usize, cpu: usize) -> Self {
        CacheConfig {
            chunk_tokens,
            gpu_capacity_tokens: gpu,
            cpu_capacity_tokens: cpu,
            ssd_capacity_tokens: 0,
            cold_capacity_tokens: 0,
            swap_watermark: 0.25,
            decode_reserve: 0.10,
        }
    }

    /// Enables the deep tiers: SSD (tier 2) and cold store (tier 3)
    /// capacities in tokens. `0` leaves the corresponding tier off.
    #[must_use]
    pub fn with_deep_tiers(mut self, ssd: usize, cold: usize) -> Self {
        self.ssd_capacity_tokens = ssd;
        self.cold_capacity_tokens = cold;
        self
    }

    /// GPU token threshold below which ahead-of-time swap-out starts.
    #[must_use]
    pub fn swap_trigger_tokens(&self) -> usize {
        (self.gpu_capacity_tokens as f64 * self.swap_watermark) as usize
    }

    /// GPU tokens that must stay free for running decodes.
    #[must_use]
    pub fn decode_reserve_tokens(&self) -> usize {
        (self.gpu_capacity_tokens as f64 * self.decode_reserve) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_model::HardwareSpec;

    #[test]
    fn capacities_follow_kv_footprint() {
        let cfg = ModelConfig::opt_13b();
        let cost = CostModel::new(cfg.clone(), HardwareSpec::azure_nc_a100(1));
        let cache = CacheConfig::from_model(&cfg, &cost);
        // 40 GiB / 0.78125 MiB = 52,428 tokens..
        assert_eq!(cache.gpu_capacity_tokens, 52_428);
        // GQA model stores 4x more tokens in the same budget.
        let llama = ModelConfig::llama2_13b();
        let cost_l = CostModel::new(llama.clone(), HardwareSpec::azure_nc_a100(1));
        let cache_l = CacheConfig::from_model(&llama, &cost_l);
        let ratio = cache_l.gpu_capacity_tokens as f64 / cache.gpu_capacity_tokens as f64;
        assert!((ratio - 4.0).abs() < 1e-3, "ratio {ratio}");
        assert!(cache.cpu_capacity_tokens > cache.gpu_capacity_tokens);
    }

    #[test]
    fn watermark_and_reserve_thresholds() {
        let c = CacheConfig::for_test(32, 1000, 4000);
        assert_eq!(c.swap_trigger_tokens(), 250);
        assert_eq!(c.decode_reserve_tokens(), 100);
    }
}
