//! Core identifiers and configuration for the tiered cache.

use pensieve_model::{CostModel, ModelConfig};

/// Identifier of a conversation whose context the cache tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Content-addressed identifier of a shared KV chunk.
///
/// The id is an FNV-1a hash chained over the chunk's *prefix* id and its
/// token ids, so two chunks collide only when both their content and
/// their entire preceding context match — exactly the condition under
/// which their KV values are interchangeable (same tokens attended
/// against the same prefix). Conversations that share a tool preamble,
/// RAG document, or forked history therefore derive identical chains and
/// share one physical copy per chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// Sentinel for "no shared identity": a conversation-private chunk.
    /// Manifests persist it for chunks that were never content-addressed.
    pub const NONE: ChunkId = ChunkId(0);

    /// Root of every derivation chain — the FNV-1a offset basis, i.e. the
    /// hash of the empty prefix.
    pub const ROOT: ChunkId = ChunkId(0xcbf2_9ce4_8422_2325);

    /// Derives the id of the chunk holding `tokens`, attended against the
    /// context identified by `parent` (use [`ChunkId::ROOT`] at position
    /// zero). FNV-1a over the parent id's little-endian bytes followed by
    /// each token id's little-endian bytes.
    #[must_use]
    pub fn derive(parent: ChunkId, tokens: &[u32]) -> ChunkId {
        let mut h = fnv1a_words(Self::ROOT.0, &[parent.0]);
        for &t in tokens {
            h = fnv1a_words(h, &[u64::from(t)]);
        }
        ChunkId(h)
    }

    /// Derives an id from arbitrary `u64` words instead of token ids —
    /// used for lineage hashing where real tokens are not tracked (the
    /// timing-model cache stores counts, not contents).
    #[must_use]
    pub fn derive_words(parent: ChunkId, words: &[u64]) -> ChunkId {
        ChunkId(fnv1a_words(fnv1a_words(Self::ROOT.0, &[parent.0]), words))
    }
}

/// FNV-1a over the little-endian bytes of `words`, continuing from `h`.
fn fnv1a_words(mut h: u64, words: &[u64]) -> u64 {
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

/// Where a chunk's KV-tokens currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Resident in GPU memory only.
    Gpu,
    /// Copied to CPU ahead of time; the GPU copy still exists but its slots
    /// are reclaimable (lazy reclamation, §4.3.2). Counts toward *both*
    /// tiers' usage until the GPU copy is reclaimed or revalidated.
    GpuCopied,
    /// Resident in CPU memory only; must be swapped in before use.
    Cpu,
    /// Demoted to the simulated NVMe SSD (tier 2); must be read back
    /// through the CPU on its way to the GPU.
    Ssd,
    /// Demoted to the cold NFS/object store (tier 3) — the slowest,
    /// largest and only restart-durable tier.
    Cold,
    /// Dropped entirely; must be recomputed from raw tokens.
    Dropped,
}

/// State of one chunk of a conversation's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkState {
    /// Current tier.
    pub tier: Tier,
    /// Number of tokens in the chunk (the trailing chunk may be partial).
    pub tokens: usize,
    /// Context length at the chunk's end: the `l` of `Cost(l)`.
    pub context_end: usize,
}

/// Reference to a chunk: conversation plus chunk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkRef {
    /// Owning conversation.
    pub conv: SessionId,
    /// Zero-based chunk index within the conversation's context.
    pub index: usize,
}

/// Capacity and policy parameters of the tiered cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Tokens per eviction chunk (paper: 32).
    pub chunk_tokens: usize,
    /// GPU KV capacity in tokens.
    pub gpu_capacity_tokens: usize,
    /// CPU cache capacity in tokens.
    pub cpu_capacity_tokens: usize,
    /// SSD (tier-2) capacity in tokens; `0` disables the tier and CPU
    /// evictions drop chunks, as in the two-tier paper configuration.
    pub ssd_capacity_tokens: usize,
    /// Cold-store (tier-3) capacity in tokens; `0` disables the tier.
    pub cold_capacity_tokens: usize,
    /// Start ahead-of-time swap-out when free GPU fraction drops below
    /// this (paper: 0.25).
    pub swap_watermark: f64,
    /// Fraction of GPU slots reserved for running decodes; new requests are
    /// not admitted below this free fraction (paper: 0.10).
    pub decode_reserve: f64,
}

impl CacheConfig {
    /// Derives capacities from a model + hardware pair: the 40 GB GPU KV
    /// budget and the host cache size divided by the model's per-token KV
    /// footprint.
    ///
    /// # Panics
    ///
    /// Panics if the model stores zero-sized KV tokens.
    #[must_use]
    pub fn from_model(cfg: &ModelConfig, cost: &CostModel) -> Self {
        let hw = cost.hardware();
        let per_token = cfg.kv_bytes_per_token();
        assert!(per_token > 0);
        CacheConfig {
            chunk_tokens: 32,
            gpu_capacity_tokens: hw.total_gpu_kv_budget() / per_token,
            cpu_capacity_tokens: hw.total_cpu_cache_bytes() / per_token,
            ssd_capacity_tokens: 0,
            cold_capacity_tokens: 0,
            swap_watermark: 0.25,
            decode_reserve: 0.10,
        }
    }

    /// A small configuration for unit tests: capacities given directly.
    #[must_use]
    pub fn for_test(chunk_tokens: usize, gpu: usize, cpu: usize) -> Self {
        CacheConfig {
            chunk_tokens,
            gpu_capacity_tokens: gpu,
            cpu_capacity_tokens: cpu,
            ssd_capacity_tokens: 0,
            cold_capacity_tokens: 0,
            swap_watermark: 0.25,
            decode_reserve: 0.10,
        }
    }

    /// Enables the deep tiers: SSD (tier 2) and cold store (tier 3)
    /// capacities in tokens. `0` leaves the corresponding tier off.
    #[must_use]
    pub fn with_deep_tiers(mut self, ssd: usize, cold: usize) -> Self {
        self.ssd_capacity_tokens = ssd;
        self.cold_capacity_tokens = cold;
        self
    }

    /// GPU token threshold below which ahead-of-time swap-out starts.
    #[must_use]
    pub fn swap_trigger_tokens(&self) -> usize {
        (self.gpu_capacity_tokens as f64 * self.swap_watermark) as usize
    }

    /// GPU tokens that must stay free for running decodes.
    #[must_use]
    pub fn decode_reserve_tokens(&self) -> usize {
        (self.gpu_capacity_tokens as f64 * self.decode_reserve) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_model::HardwareSpec;

    #[test]
    fn capacities_follow_kv_footprint() {
        let cfg = ModelConfig::opt_13b();
        let cost = CostModel::new(cfg.clone(), HardwareSpec::azure_nc_a100(1));
        let cache = CacheConfig::from_model(&cfg, &cost);
        // 40 GiB / 0.78125 MiB = 52,428 tokens..
        assert_eq!(cache.gpu_capacity_tokens, 52_428);
        // GQA model stores 4x more tokens in the same budget.
        let llama = ModelConfig::llama2_13b();
        let cost_l = CostModel::new(llama.clone(), HardwareSpec::azure_nc_a100(1));
        let cache_l = CacheConfig::from_model(&llama, &cost_l);
        let ratio = cache_l.gpu_capacity_tokens as f64 / cache.gpu_capacity_tokens as f64;
        assert!((ratio - 4.0).abs() < 1e-3, "ratio {ratio}");
        assert!(cache.cpu_capacity_tokens > cache.gpu_capacity_tokens);
    }

    #[test]
    fn chunk_ids_are_prefix_sensitive() {
        let a = ChunkId::derive(ChunkId::ROOT, &[1, 2, 3]);
        let b = ChunkId::derive(ChunkId::ROOT, &[1, 2, 3]);
        assert_eq!(a, b, "same content + prefix must collide");
        let c = ChunkId::derive(ChunkId::ROOT, &[1, 2, 4]);
        assert_ne!(a, c, "different content must not collide");
        let d = ChunkId::derive(a, &[1, 2, 3]);
        assert_ne!(a, d, "same content under a different prefix must not collide");
        assert_ne!(a, ChunkId::NONE);
        assert_ne!(
            ChunkId::derive_words(ChunkId::ROOT, &[7, 0, 32]),
            ChunkId::derive_words(ChunkId::ROOT, &[7, 1, 32]),
        );
    }

    #[test]
    fn watermark_and_reserve_thresholds() {
        let c = CacheConfig::for_test(32, 1000, 4000);
        assert_eq!(c.swap_trigger_tokens(), 250);
        assert_eq!(c.decode_reserve_tokens(), 100);
    }
}
