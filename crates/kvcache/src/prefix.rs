//! Radix prefix index mapping token prefixes to content-addressed chunk
//! chains.
//!
//! The index is the discovery side of cross-conversation KV sharing: a
//! registered prefix (tool preamble, RAG document, forked history) is
//! split into whole chunks, each chunk's [`ChunkId`] derived from its
//! tokens plus its prefix hash, and the chain stored as a path in a
//! radix tree keyed by chunk id. A new conversation's history is matched
//! chunk-by-chunk from the root; the longest matching path is the chain
//! of physical chunks it can share instead of recomputing.
//!
//! Because a [`ChunkId`] already commits to the *entire* preceding
//! context, each tree edge is a single id and matching is a hash lookup
//! per chunk. Stored token bytes are still compared on every match as a
//! collision guard — a hash match with different tokens is treated as a
//! miss, never as shared state.

use std::collections::BTreeMap;

use crate::types::ChunkId;

/// One node of the radix tree: the chunk that ends the path to it, plus
/// edges to every registered continuation.
#[derive(Debug, Clone)]
struct Node {
    /// Children keyed by the continuing chunk's id (deterministic order).
    children: BTreeMap<ChunkId, usize>,
    /// The tokens of the chunk this node represents (empty at the root).
    tokens: Vec<u32>,
    /// The content-addressed id of the chunk this node represents.
    id: ChunkId,
}

/// Radix tree from token prefixes to content-addressed chunk chains.
///
/// Only *whole* chunks are indexed: a trailing partial chunk of a
/// registered prefix is ignored, because a partial chunk's KV is not
/// reusable under chunked eviction.
#[derive(Debug, Clone)]
pub struct PrefixIndex {
    /// Arena of nodes; index 0 is the root.
    nodes: Vec<Node>,
    /// Tokens per chunk (the cache's eviction granularity).
    chunk_tokens: usize,
}

impl PrefixIndex {
    /// Creates an empty index over chunks of `chunk_tokens` tokens.
    #[must_use]
    pub fn new(chunk_tokens: usize) -> Self {
        PrefixIndex {
            nodes: vec![Node {
                children: BTreeMap::new(),
                tokens: Vec::new(),
                id: ChunkId::ROOT,
            }],
            chunk_tokens: chunk_tokens.max(1),
        }
    }

    /// Registers `tokens` as a shareable prefix, returning the chunk
    /// chain covering its whole chunks (a trailing partial chunk is not
    /// indexed). Registering the same prefix twice returns the same
    /// chain and allocates nothing.
    pub fn insert(&mut self, tokens: &[u32]) -> Vec<ChunkId> {
        let mut chain = Vec::new();
        let mut at = 0usize;
        for chunk in tokens.chunks_exact(self.chunk_tokens) {
            let parent = self.nodes.get(at).map_or(ChunkId::ROOT, |n| n.id);
            let id = ChunkId::derive(parent, chunk);
            let next = match self.nodes.get(at).and_then(|n| n.children.get(&id)) {
                Some(&child) if self.tokens_match(child, chunk) => child,
                _ => {
                    let child = self.nodes.len();
                    self.nodes.push(Node {
                        children: BTreeMap::new(),
                        tokens: chunk.to_vec(),
                        id,
                    });
                    if let Some(node) = self.nodes.get_mut(at) {
                        node.children.insert(id, child);
                    }
                    child
                }
            };
            chain.push(id);
            at = next;
        }
        chain
    }

    /// Longest registered chain matching a prefix of `tokens`, walking
    /// whole chunks from the root. Tokens are byte-compared at every hop
    /// so a hash collision degrades to a shorter match, never to sharing
    /// the wrong KV.
    #[must_use]
    pub fn longest_match(&self, tokens: &[u32]) -> Vec<ChunkId> {
        let mut chain = Vec::new();
        let mut at = 0usize;
        for chunk in tokens.chunks_exact(self.chunk_tokens) {
            let parent = self.nodes.get(at).map_or(ChunkId::ROOT, |n| n.id);
            let id = ChunkId::derive(parent, chunk);
            match self.nodes.get(at).and_then(|n| n.children.get(&id)) {
                Some(&child) if self.tokens_match(child, chunk) => {
                    chain.push(id);
                    at = child;
                }
                _ => break,
            }
        }
        chain
    }

    /// Number of indexed chunks (nodes minus the root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The eviction chunk size this index was built for.
    #[must_use]
    pub fn chunk_tokens(&self) -> usize {
        self.chunk_tokens
    }

    fn tokens_match(&self, node: usize, chunk: &[u32]) -> bool {
        self.nodes.get(node).is_some_and(|n| n.tokens == chunk)
    }
}

/// Deterministic synthetic token stream for shared preambles in the
/// timing model, where real token contents are never tracked: `seed`
/// picks the preamble identity, `n` its length. Pure arithmetic — no
/// ambient randomness — so every replica and every rerun derives the
/// same tokens and therefore the same [`ChunkId`] chain.
#[must_use]
pub fn synthetic_preamble(seed: u64, n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| {
            // splitmix64-style finalizer: spreads low seed bits across
            // the whole word before truncating to a vocab-sized token.
            let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            (x % 32_768) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_match_round_trips() {
        let mut idx = PrefixIndex::new(4);
        let toks = synthetic_preamble(7, 10); // 2 whole chunks + partial
        let chain = idx.insert(&toks);
        assert_eq!(chain.len(), 2, "partial trailing chunk is not indexed");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.longest_match(&toks), chain);
        // A longer history sharing the prefix still matches the chain.
        let mut longer = toks.clone();
        longer.extend([9, 9, 9, 9]);
        assert_eq!(idx.longest_match(&longer), chain);
    }

    #[test]
    fn diverging_prefixes_share_the_common_stem() {
        let mut idx = PrefixIndex::new(2);
        let a = idx.insert(&[1, 2, 3, 4]);
        let b = idx.insert(&[1, 2, 9, 9]);
        assert_eq!(a.first(), b.first(), "common first chunk shares one id");
        assert_ne!(a.get(1), b.get(1));
        assert_eq!(idx.len(), 3, "stem stored once");
        // Re-inserting allocates nothing.
        assert_eq!(idx.insert(&[1, 2, 3, 4]), a);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn mismatched_tokens_stop_the_match() {
        let mut idx = PrefixIndex::new(2);
        let chain = idx.insert(&[5, 6, 7, 8]);
        assert_eq!(idx.longest_match(&[5, 6, 0, 0]), chain[..1].to_vec());
        assert!(idx.longest_match(&[0, 0]).is_empty());
        assert!(idx.longest_match(&[5]).is_empty(), "sub-chunk prefix");
    }

    #[test]
    fn same_chunk_under_different_prefixes_gets_distinct_ids() {
        let mut idx = PrefixIndex::new(2);
        let a = idx.insert(&[1, 1, 3, 3]);
        let b = idx.insert(&[2, 2, 3, 3]);
        let (Some(a1), Some(b1)) = (a.get(1), b.get(1)) else {
            panic!("both chains must have two chunks");
        };
        assert_ne!(a1, b1, "identical tokens, different attention prefix");
    }

    #[test]
    fn synthetic_preambles_are_deterministic_and_seed_sensitive() {
        assert_eq!(synthetic_preamble(3, 64), synthetic_preamble(3, 64));
        assert_ne!(synthetic_preamble(3, 64), synthetic_preamble(4, 64));
        assert!(synthetic_preamble(3, 64).iter().all(|&t| t < 32_768));
    }
}
