//! Per-session chunk manifests persisted to the cold tier, and the
//! simulated cold object store that holds them across restarts.
//!
//! Pensieve's caches are an optimization over a durable raw-token store,
//! so a restarted replica *can* always recompute a session from scratch
//! — but recomputation burns prefill compute proportional to the whole
//! history. A manifest records just enough of a session's chunk layout
//! (token counts, in context order) that a fresh replica can re-admit
//! the session's chunks at [`Tier::Cold`](crate::Tier::Cold) and serve
//! the history as cold-tier reads instead, via
//! [`TieredKvCache::rehydrate_session`](crate::TieredKvCache::rehydrate_session).
//!
//! The simulation tracks token *counts*, never KV values, so the wire
//! format carries only the layout plus an FNV-1a checksum trailer. A
//! torn write (fault-injected or otherwise) truncates the record; both
//! truncation and checksum mismatch surface as
//! [`ManifestError::Torn`], which callers treat as "no manifest" and
//! fall back to recompute — never as corrupted state.
//!
//! Wire format **v2** (all fields little-endian `u64`):
//!
//! ```text
//! [magic "PNSVMAN2"] [session id] [chunk count n]
//! [n x (chunk id, chunk tokens)]
//! [fnv1a checksum of all preceding bytes]
//! ```
//!
//! v2 replaces the v1 format (magic `"PNSVMAN1"`, token counts only):
//! each entry now persists the chunk's content-addressed
//! [`ChunkId`](crate::ChunkId) so rehydration can re-*attach* shared
//! chunks by reference instead of re-admitting an owned copy —
//! [`ChunkId::NONE`](crate::ChunkId::NONE) marks a conversation-private
//! chunk. v1 records fail the magic check and decode as
//! [`ManifestError::Torn`], i.e. a restarted v2 replica safely
//! recomputes pre-upgrade sessions.

use std::collections::BTreeMap;

use crate::types::{ChunkId, SessionId};

/// Magic prefix of a serialized manifest: `b"PNSVMAN2"` as a
/// little-endian `u64`.
const MAGIC: u64 = u64::from_le_bytes(*b"PNSVMAN2");

/// FNV-1a over a byte slice — the repo-standard determinism pin.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// One chunk entry in a persisted manifest: its shared identity (or
/// [`ChunkId::NONE`] for a private chunk) and its token count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestChunk {
    /// Content-addressed id, [`ChunkId::NONE`] if conversation-private.
    pub id: ChunkId,
    /// Tokens in the chunk.
    pub tokens: usize,
}

/// A session's chunk layout, as persisted to the cold tier.
///
/// Layout only — ids and token counts in context order, never KV bytes.
/// The durable raw-token store remains the source of truth for the
/// tokens themselves; the manifest exists so a restarted replica knows
/// *what to re-admit* (and which shared chunks to re-*attach* by
/// reference) without replaying the whole conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionManifest {
    /// The session this manifest describes.
    pub session: SessionId,
    /// Per-chunk entries, in context order.
    pub chunks: Vec<ManifestChunk>,
}

/// Why a stored manifest could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    /// No manifest is stored for the requested session.
    Missing,
    /// The record is truncated or fails its checksum — a torn write.
    /// Callers must treat this exactly like [`ManifestError::Missing`]
    /// and recompute.
    Torn,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Missing => write!(f, "no manifest stored for session"),
            Self::Torn => write!(f, "manifest record torn or checksum mismatch"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl SessionManifest {
    /// Total tokens across all chunks.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.chunks.iter().map(|c| c.tokens).sum()
    }

    /// Serializes to the checksummed little-endian wire format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (4 + 2 * self.chunks.len()));
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.session.0.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u64).to_le_bytes());
        for chunk in &self.chunks {
            out.extend_from_slice(&chunk.id.0.to_le_bytes());
            out.extend_from_slice(&(chunk.tokens as u64).to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a wire record, verifying magic, length and checksum.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::Torn`] if the record is truncated,
    /// carries the wrong magic (including the pre-sharing `"PNSVMAN1"`
    /// format), or fails its checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        let read_u64 = |at: usize| -> Option<u64> {
            bytes
                .get(at..at + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
        };
        let header_ok = read_u64(0) == Some(MAGIC);
        let Some(n) = read_u64(16) else {
            return Err(ManifestError::Torn);
        };
        let n = usize::try_from(n).map_err(|_| ManifestError::Torn)?;
        if n > bytes.len() / 16 {
            // A garbage count in a torn record; also keeps the length
            // arithmetic below overflow-free.
            return Err(ManifestError::Torn);
        }
        let body_len = 8 * (3 + 2 * n);
        if !header_ok || bytes.len() != body_len + 8 {
            return Err(ManifestError::Torn);
        }
        let stored_sum = read_u64(body_len).ok_or(ManifestError::Torn)?;
        let body = bytes.get(..body_len).ok_or(ManifestError::Torn)?;
        if fnv1a(body) != stored_sum {
            return Err(ManifestError::Torn);
        }
        let session = SessionId(read_u64(8).ok_or(ManifestError::Torn)?);
        let mut chunks = Vec::with_capacity(n);
        for i in 0..n {
            let id = ChunkId(read_u64(24 + 16 * i).ok_or(ManifestError::Torn)?);
            let tokens = read_u64(32 + 16 * i).ok_or(ManifestError::Torn)?;
            chunks.push(ManifestChunk {
                id,
                tokens: usize::try_from(tokens).map_err(|_| ManifestError::Torn)?,
            });
        }
        Ok(Self { session, chunks })
    }
}

/// Simulated tier-3 object store holding serialized session manifests.
///
/// One instance outlives the engines that write to it — the cluster
/// router owns it so a fail-stopped replica's sessions survive the
/// replica — and a `BTreeMap` keeps iteration deterministic. Storage is
/// byte-level on purpose: a torn write really does truncate the record,
/// and the damage is only discovered at read time, like a real object
/// store with a partial PUT.
#[derive(Debug, Default)]
pub struct ColdObjectStore {
    objects: BTreeMap<SessionId, Vec<u8>>,
}

impl ColdObjectStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a session's manifest, replacing any previous record.
    /// A `torn` write stores only the first half of the bytes — the
    /// record decodes as [`ManifestError::Torn`] until overwritten by a
    /// later clean write. Returns the bytes stored.
    pub fn put(&mut self, manifest: &SessionManifest, torn: bool) -> usize {
        let mut bytes = manifest.to_bytes();
        if torn {
            bytes.truncate(bytes.len() / 2);
        }
        let stored = bytes.len();
        self.objects.insert(manifest.session, bytes);
        stored
    }

    /// Reads back a session's manifest.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Missing`] if no record exists;
    /// [`ManifestError::Torn`] if the stored record is truncated or
    /// fails its checksum.
    pub fn get(&self, session: SessionId) -> Result<SessionManifest, ManifestError> {
        let bytes = self.objects.get(&session).ok_or(ManifestError::Missing)?;
        SessionManifest::from_bytes(bytes)
    }

    /// Removes a session's record (e.g. when the conversation ends).
    pub fn remove(&mut self, session: SessionId) {
        self.objects.remove(&session);
    }

    /// Number of stored records (torn or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no records are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Sessions with a stored record, in ascending id order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionId> {
        self.objects.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(id: u64, chunks: &[usize]) -> SessionManifest {
        SessionManifest {
            session: SessionId(id),
            chunks: chunks
                .iter()
                .enumerate()
                .map(|(i, &tokens)| ManifestChunk {
                    // Mix shared (content-addressed) and private entries.
                    id: if i % 2 == 0 {
                        ChunkId::derive_words(ChunkId::ROOT, &[id, i as u64])
                    } else {
                        ChunkId::NONE
                    },
                    tokens,
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips_through_wire_format() {
        let m = manifest(42, &[32, 32, 17]);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 8 * (3 + 2 * 3) + 8);
        assert_eq!(SessionManifest::from_bytes(&bytes).unwrap(), m);
        assert_eq!(m.total_tokens(), 81);
    }

    #[test]
    fn v1_records_decode_as_torn() {
        // A well-formed v1 record: old magic, counts-only entries.
        let mut v1 = Vec::new();
        v1.extend_from_slice(&u64::from_le_bytes(*b"PNSVMAN1").to_le_bytes());
        v1.extend_from_slice(&9u64.to_le_bytes());
        v1.extend_from_slice(&2u64.to_le_bytes());
        v1.extend_from_slice(&32u64.to_le_bytes());
        v1.extend_from_slice(&32u64.to_le_bytes());
        let sum = fnv1a(&v1);
        v1.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(SessionManifest::from_bytes(&v1), Err(ManifestError::Torn));
    }

    #[test]
    fn empty_layout_round_trips() {
        let m = manifest(7, &[]);
        assert_eq!(SessionManifest::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn truncation_and_corruption_decode_as_torn() {
        let bytes = manifest(1, &[32, 32]).to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                SessionManifest::from_bytes(&bytes[..cut]),
                Err(ManifestError::Torn),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut flipped = bytes.clone();
        flipped[9] ^= 0x40; // Corrupt the session id; checksum catches it.
        assert_eq!(
            SessionManifest::from_bytes(&flipped),
            Err(ManifestError::Torn)
        );
        let mut grown = bytes;
        grown.push(0);
        assert_eq!(
            SessionManifest::from_bytes(&grown),
            Err(ManifestError::Torn)
        );
    }

    #[test]
    fn store_put_get_and_torn_writes() {
        let mut store = ColdObjectStore::new();
        let m = manifest(3, &[32, 8]);
        assert_eq!(store.get(m.session), Err(ManifestError::Missing));
        let clean_len = store.put(&m, false);
        assert_eq!(clean_len, m.to_bytes().len());
        assert_eq!(store.get(m.session).unwrap(), m);

        // A torn overwrite loses the record until rewritten cleanly.
        let torn_len = store.put(&m, true);
        assert!(torn_len < clean_len);
        assert_eq!(store.get(m.session), Err(ManifestError::Torn));
        store.put(&m, false);
        assert_eq!(store.get(m.session).unwrap(), m);

        assert_eq!(store.sessions(), vec![m.session]);
        assert_eq!(store.len(), 1);
        store.remove(m.session);
        assert!(store.is_empty());
    }
}
