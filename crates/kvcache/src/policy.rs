//! Eviction policies (§4.3.1 and the Table-3 / Figure-14 comparisons).
//!
//! A policy orders *candidate chunks* for eviction: chunks with smaller
//! scores go first. Policies may additionally evict at whole-conversation
//! granularity (CachedAttention-style) or prefer the trailing end of a
//! context (SGLang/RAGCache-style); the cache manager consults
//! [`EvictionPolicy::granularity`] and [`EvictionPolicy::within_order`] to
//! honor those shapes.

use std::fmt;

use pensieve_model::{ProfiledCostTable, SimTime};

use crate::types::ChunkState;

/// Whether a policy evicts chunk-by-chunk or whole conversations at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Individual token chunks (Pensieve).
    Chunk,
    /// An entire conversation's context at a time (CachedAttention).
    Conversation,
}

/// Ordering of chunks *within* one conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithinOrder {
    /// Evict leading (oldest-position) chunks first — cheap to recompute
    /// (Pensieve).
    LeadingFirst,
    /// Evict trailing chunks first — prefix-tree style (SGLang, RAGCache).
    TrailingFirst,
}

/// Strategy choosing which cached chunks to evict or drop.
pub trait EvictionPolicy: fmt::Debug + Send + Sync {
    /// Short policy name for logs and experiment output.
    fn name(&self) -> &'static str;

    /// Primary eviction key; **smaller scores are evicted sooner**.
    fn score(&self, chunk: &ChunkState, last_active: SimTime, now: SimTime) -> f64;

    /// Eviction granularity; defaults to chunk-level.
    fn granularity(&self) -> Granularity {
        Granularity::Chunk
    }

    /// Within-conversation ordering; defaults to leading-first.
    fn within_order(&self) -> WithinOrder {
        WithinOrder::LeadingFirst
    }
}

/// Minimum idle time used in the retention-value denominator, avoiding a
/// division by zero for a conversation touched at the current instant.
const MIN_IDLE_SECS: f64 = 1e-3;

/// Pensieve's retention-value policy: `V = Cost(l) / T` (§4.3.1).
///
/// `Cost(l)` is the profiled chunk-recomputation cost at the chunk's
/// context position and `T` the conversation's idle time; chunks that are
/// cheap to recompute or long-inactive have low retention value and are
/// evicted first. Because `Cost(l)` grows with `l`, leading chunks of a
/// conversation naturally go before trailing ones.
pub struct RetentionValuePolicy {
    cost: ProfiledCostTable,
}

impl RetentionValuePolicy {
    /// Builds the policy from an offline-profiled cost table.
    #[must_use]
    pub fn new(cost: ProfiledCostTable) -> Self {
        RetentionValuePolicy { cost }
    }
}

impl fmt::Debug for RetentionValuePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetentionValuePolicy")
            .finish_non_exhaustive()
    }
}

impl EvictionPolicy for RetentionValuePolicy {
    fn name(&self) -> &'static str {
        "retention-value"
    }

    fn score(&self, chunk: &ChunkState, last_active: SimTime, now: SimTime) -> f64 {
        let idle = now
            .saturating_duration_since(last_active)
            .as_secs()
            .max(MIN_IDLE_SECS);
        self.cost.chunk_cost(chunk.context_end).as_secs() / idle
    }
}

/// Classic LRU at conversation recency, chunk granularity (Figure 14's
/// baseline): ranks purely by how recently the owning conversation was
/// active, ignoring recomputation cost.
#[derive(Debug, Default)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn score(&self, _chunk: &ChunkState, last_active: SimTime, _now: SimTime) -> f64 {
        last_active.as_secs()
    }
}

/// CachedAttention-style policy: LRU over *entire conversations*
/// (Table 3, "eviction granularity: entire conversation history").
#[derive(Debug, Default)]
pub struct CachedAttentionPolicy;

impl EvictionPolicy for CachedAttentionPolicy {
    fn name(&self) -> &'static str {
        "whole-conversation-lru"
    }

    fn score(&self, _chunk: &ChunkState, last_active: SimTime, _now: SimTime) -> f64 {
        last_active.as_secs()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Conversation
    }
}

/// SGLang/RAGCache-style policy: LRU recency, but evicting from the
/// *trailing* end of a context (Table 3, "eviction location preference:
/// trailing").
#[derive(Debug, Default)]
pub struct TrailingEndPolicy;

impl EvictionPolicy for TrailingEndPolicy {
    fn name(&self) -> &'static str {
        "trailing-end-lru"
    }

    fn score(&self, _chunk: &ChunkState, last_active: SimTime, _now: SimTime) -> f64 {
        last_active.as_secs()
    }

    fn within_order(&self) -> WithinOrder {
        WithinOrder::TrailingFirst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Tier;
    use pensieve_model::{
        CostModel, HardwareSpec, ModelConfig, ProfiledCostTable, SimDuration, SimTime,
    };

    fn chunk(context_end: usize) -> ChunkState {
        ChunkState {
            tier: Tier::Gpu,
            tokens: 32,
            context_end,
        }
    }

    fn retention() -> RetentionValuePolicy {
        let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
        RetentionValuePolicy::new(ProfiledCostTable::profile(&cost, 32, 16384))
    }

    #[test]
    fn retention_prefers_leading_chunks() {
        let p = retention();
        let now = SimTime::from_secs(100.0);
        let t = SimTime::from_secs(40.0);
        assert!(p.score(&chunk(32), t, now) < p.score(&chunk(8192), t, now));
    }

    #[test]
    fn retention_prefers_idle_conversations() {
        let p = retention();
        let now = SimTime::from_secs(100.0);
        let recent = SimTime::from_secs(99.0);
        let old = SimTime::from_secs(10.0);
        assert!(p.score(&chunk(1024), old, now) < p.score(&chunk(1024), recent, now));
    }

    #[test]
    fn retention_handles_zero_idle() {
        let p = retention();
        let now = SimTime::from_secs(5.0);
        let s = p.score(&chunk(64), now, now);
        assert!(s.is_finite() && s > 0.0);
    }

    /// A very idle conversation's expensive chunk can still rank below a
    /// fresh conversation's cheap chunk — cost and recency trade off.
    #[test]
    fn retention_trades_off_cost_and_recency() {
        let p = retention();
        let now = SimTime::from_secs(1000.0);
        let very_idle = SimTime::from_secs(0.0);
        let fresh = SimTime::from_secs(999.9);
        let idle_expensive = p.score(&chunk(16384), very_idle, now);
        let fresh_cheap = p.score(&chunk(32), fresh, now);
        assert!(idle_expensive < fresh_cheap);
    }

    #[test]
    fn lru_ignores_cost() {
        let p = LruPolicy;
        let now = SimTime::ZERO + SimDuration::from_secs(50.0);
        let t = SimTime::from_secs(3.0);
        assert_eq!(p.score(&chunk(32), t, now), p.score(&chunk(9999), t, now));
        assert!(p.score(&chunk(32), SimTime::from_secs(1.0), now) < p.score(&chunk(32), t, now));
    }

    #[test]
    fn policy_shapes() {
        assert_eq!(LruPolicy.granularity(), Granularity::Chunk);
        assert_eq!(LruPolicy.within_order(), WithinOrder::LeadingFirst);
        assert_eq!(
            CachedAttentionPolicy.granularity(),
            Granularity::Conversation
        );
        assert_eq!(TrailingEndPolicy.within_order(), WithinOrder::TrailingFirst);
    }
}
