//! Cache effectiveness counters — the data behind the paper's Figure-14
//! cache-hit analysis.
//!
//! Reproduced by `cargo run --release -p pensieve-bench --bin fig14`
//! (measured numbers in `EXPERIMENTS.md`). For a finer-grained,
//! per-turn view of the same split, record a trace with
//! `serve_sim --trace-out` and post-process it with the `trace_report`
//! binary — `docs/OBSERVABILITY.md` documents the event stream these
//! counters aggregate.

/// Running counters of cache behaviour, all in tokens unless noted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Tokens served straight from the GPU tier (including revalidated
    /// lazy copies).
    pub gpu_hit_tokens: u64,
    /// Tokens served by swapping in from the CPU tier.
    pub cpu_hit_tokens: u64,
    /// Previously-cached tokens that had been dropped and were recomputed.
    pub recomputed_tokens: u64,
    /// Tokens copied GPU -> CPU (ahead-of-time swap-out).
    pub swapped_out_tokens: u64,
    /// Tokens copied CPU -> GPU (swap-in).
    pub swapped_in_tokens: u64,
    /// Tokens dropped from the CPU tier under memory pressure.
    pub dropped_tokens: u64,
    /// Lazily-copied tokens whose GPU slots were reused by the same
    /// conversation before reclamation (free swap-in).
    pub revalidated_tokens: u64,
    /// Requests whose entire history was still GPU-resident.
    pub full_gpu_hits: u64,
    /// Requests that needed at least one swap-in or recomputation.
    pub partial_hits: u64,
    /// CPU-tier tokens lost to injected host-memory faults (recomputed
    /// later from raw tokens).
    pub lost_chunk_tokens: u64,
    /// CPU-tier tokens invalidated after checksum-detected corruption.
    pub corrupted_chunk_tokens: u64,
    /// CPU-tier tokens force-dropped because their swap-in transfers kept
    /// failing and the engine fell back to recomputation.
    pub swap_in_fault_tokens: u64,
    /// Tokens served by reading back from the SSD (tier-2) cache.
    pub ssd_hit_tokens: u64,
    /// Tokens served by reading back from the cold store (tier 3).
    pub cold_hit_tokens: u64,
    /// Tokens demoted one tier down (CPU→SSD or SSD→cold) instead of
    /// being dropped under memory pressure.
    pub demoted_tokens: u64,
    /// Tokens rehydrated into the cache from a cold-tier session manifest
    /// after a restart or failover.
    pub rehydrated_tokens: u64,
    /// Deep-tier tokens force-dropped because their cold reads failed and
    /// the engine fell back to recomputation.
    pub cold_read_fault_tokens: u64,
    /// Tokens served from content-addressed shared chunks (any tier)
    /// instead of a conversation's private chunks.
    pub shared_hit_tokens: u64,
}

impl CacheStats {
    /// Field-wise accumulation of `other` into `self` — how a composite
    /// backend (e.g. a multi-replica router) reports cluster-wide totals.
    pub fn merge(&mut self, other: &CacheStats) {
        self.gpu_hit_tokens += other.gpu_hit_tokens;
        self.cpu_hit_tokens += other.cpu_hit_tokens;
        self.recomputed_tokens += other.recomputed_tokens;
        self.swapped_out_tokens += other.swapped_out_tokens;
        self.swapped_in_tokens += other.swapped_in_tokens;
        self.dropped_tokens += other.dropped_tokens;
        self.revalidated_tokens += other.revalidated_tokens;
        self.full_gpu_hits += other.full_gpu_hits;
        self.partial_hits += other.partial_hits;
        self.lost_chunk_tokens += other.lost_chunk_tokens;
        self.corrupted_chunk_tokens += other.corrupted_chunk_tokens;
        self.swap_in_fault_tokens += other.swap_in_fault_tokens;
        self.ssd_hit_tokens += other.ssd_hit_tokens;
        self.cold_hit_tokens += other.cold_hit_tokens;
        self.demoted_tokens += other.demoted_tokens;
        self.rehydrated_tokens += other.rehydrated_tokens;
        self.cold_read_fault_tokens += other.cold_read_fault_tokens;
        self.shared_hit_tokens += other.shared_hit_tokens;
    }

    /// Fraction of reusable history tokens found in *any* cache tier
    /// (GPU, CPU, SSD or cold store).
    ///
    /// Returns 1.0 when no history has been requested yet.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits =
            self.gpu_hit_tokens + self.cpu_hit_tokens + self.ssd_hit_tokens + self.cold_hit_tokens;
        let total = hits + self.recomputed_tokens;
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of non-GPU-resident history tokens found in the CPU tier
    /// (vs dropped): the "CPU cache hit rate" of §6.6.
    ///
    /// Returns 1.0 when the GPU tier absorbed everything.
    #[must_use]
    pub fn cpu_hit_rate(&self) -> f64 {
        let total = self.cpu_hit_tokens + self.recomputed_tokens;
        if total == 0 {
            1.0
        } else {
            self.cpu_hit_tokens as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_degenerate_to_one_when_empty() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.cpu_hit_rate(), 1.0);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = CacheStats {
            gpu_hit_tokens: 1,
            cpu_hit_tokens: 2,
            recomputed_tokens: 3,
            swapped_out_tokens: 4,
            swapped_in_tokens: 5,
            dropped_tokens: 6,
            revalidated_tokens: 7,
            full_gpu_hits: 8,
            partial_hits: 9,
            lost_chunk_tokens: 10,
            corrupted_chunk_tokens: 11,
            swap_in_fault_tokens: 12,
            ssd_hit_tokens: 13,
            cold_hit_tokens: 14,
            demoted_tokens: 15,
            rehydrated_tokens: 16,
            cold_read_fault_tokens: 17,
            shared_hit_tokens: 18,
        };
        let mut sum = a.clone();
        sum.merge(&a);
        assert_eq!(sum.gpu_hit_tokens, 2);
        assert_eq!(sum.swap_in_fault_tokens, 24);
        assert_eq!(sum.partial_hits, 18);
        assert_eq!(sum.ssd_hit_tokens, 26);
        assert_eq!(sum.cold_read_fault_tokens, 34);
        assert_eq!(sum.shared_hit_tokens, 36);
    }

    #[test]
    fn rates_reflect_counters() {
        let s = CacheStats {
            gpu_hit_tokens: 60,
            cpu_hit_tokens: 20,
            recomputed_tokens: 20,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.cpu_hit_rate() - 0.5).abs() < 1e-12);
    }
}
