//! Two-tier (GPU + CPU) KV-token cache management for Pensieve (§4.3).
//!
//! This crate implements the paper's cache manager at the *decision* level:
//! which chunks live where, what gets evicted when, and what a returning
//! conversation must swap in or recompute. It tracks token counts and chunk
//! states; the physical KV bytes live either in the simulator (timing
//! experiments) or in `pensieve-kernels`' paged pool (functional tests).
//!
//! Key concepts, mapped to the paper:
//!
//! * **Chunks** — eviction happens in fixed-size groups of tokens
//!   (32 by default) to amortize decision-making and PCIe transfer costs.
//! * **Retention value** — `V = Cost(l) / T`: chunks that are cheap to
//!   recompute (leading chunks, small `l`) or belong to long-inactive
//!   conversations are evicted first ([`policy::RetentionValuePolicy`]).
//! * **Ahead-of-time swapping** — when GPU free space falls below a
//!   watermark (25 %), chunks are *copied* to CPU but their GPU slots are
//!   reclaimed lazily, so a quickly-returning conversation gets them back
//!   for free ([`tiered::TieredKvCache`]).
//! * **Dropping and recomputation** — under CPU pressure chunks are
//!   dropped entirely; a later request recomputes them from raw tokens kept
//!   in a persistent store ([`store::RawTokenStore`]).
//! * **Request plans** — a returning conversation's context splits into the
//!   paper's Figure-5 segments: dropped prefix (recompute), CPU middle
//!   (swap in), GPU tail (hit), new prompt (compute).

pub mod policy;
pub mod stats;
pub mod store;
pub mod tiered;
pub mod types;

pub use policy::{
    CachedAttentionPolicy, EvictionPolicy, LruPolicy, RetentionValuePolicy, TrailingEndPolicy,
};
pub use stats::CacheStats;
pub use store::RawTokenStore;
pub use tiered::{CacheError, RequestPlan, SessionExport, SwapOutOp, TieredKvCache};
pub use types::{CacheConfig, ChunkRef, ChunkState, SessionId, Tier};
