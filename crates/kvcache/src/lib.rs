//! Multi-tier KV-token cache management for Pensieve (§4.3), extended
//! below the paper's GPU + CPU pair with simulated SSD and cold
//! object-store tiers (see `docs/STORAGE.md` at the repository root)
//! and *across* conversations with content-addressed shared chunks
//! (`DESIGN.md` §14).
//!
//! This crate implements the paper's cache manager at the *decision* level:
//! which chunks live where, what gets evicted when, and what a returning
//! conversation must swap in, read back, or recompute. It tracks token
//! counts and chunk states; the physical KV bytes live either in the
//! simulator (timing experiments) or in `pensieve-kernels`' paged pool
//! (functional tests), and deep-tier device timing lives in
//! `pensieve-sim`'s storage model.
//!
//! Key concepts, mapped to the paper:
//!
//! * **Chunks** — eviction happens in fixed-size groups of tokens
//!   (32 by default) to amortize decision-making and PCIe transfer costs.
//! * **Retention value** — `V = Cost(l) / T`: chunks that are cheap to
//!   recompute (leading chunks, small `l`) or belong to long-inactive
//!   conversations are evicted first ([`RetentionValuePolicy`]).
//! * **Ahead-of-time swapping** — when GPU free space falls below a
//!   watermark (25 %), chunks are *copied* to CPU but their GPU slots are
//!   reclaimed lazily, so a quickly-returning conversation gets them back
//!   for free ([`TieredKvCache`]).
//! * **Demotion and recomputation** — under CPU pressure chunks demote
//!   tier-by-tier (CPU → SSD → cold) instead of being dropped outright;
//!   only when the bottom tier is full (or the deep tiers are disabled,
//!   the default) is a chunk dropped and later recomputed from raw
//!   tokens kept in a persistent store ([`TokenChunkStore`]).
//! * **Cross-conversation sharing** — a common prefix (tool preamble,
//!   RAG document, forked history) registers once as a chain of
//!   content-addressed, reference-counted chunks ([`ChunkId`]) behind a
//!   radix prefix index ([`PrefixIndex`]); N conversations attach to
//!   one physical copy, and eviction weighs a chunk by its sharer
//!   count. Explicit references travel as [`ChunkHandle`] guards.
//! * **Request plans** — a returning conversation's context splits into
//!   the paper's Figure-5 segments, generalized across the hierarchy:
//!   dropped prefix (recompute), cold/SSD middle (device read), CPU
//!   middle (swap in), GPU tail (hit), new prompt (compute).
//! * **Manifests** — each session's chunk layout (shared chain ids
//!   included) can be persisted to the cold tier ([`ColdObjectStore`])
//!   so a restarted replica rehydrates the session as shared re-attach
//!   plus cold-tier reads instead of recomputing its whole history.
//!
//! The crate's entire API is re-exported here at the root — the module
//! tree is private layout, not surface.

#![deny(missing_docs)]

mod manifest;
mod policy;
mod prefix;
mod stats;
mod store;
mod tiered;
mod types;

pub use manifest::{ColdObjectStore, ManifestChunk, ManifestError, SessionManifest};
pub use policy::{
    CachedAttentionPolicy, EvictionPolicy, Granularity, LruPolicy, RetentionValuePolicy,
    TrailingEndPolicy, WithinOrder,
};
pub use prefix::{synthetic_preamble, PrefixIndex};
pub use stats::CacheStats;
pub use store::{SessionView, TokenChunkStore};
pub use tiered::{
    leaked_chunk_handles, CacheError, ChunkHandle, RequestPlan, SessionExport, SharedChunkRef,
    SwapOutOp, TieredKvCache, TieredKvCacheBuilder,
};
pub use types::{CacheConfig, ChunkId, ChunkRef, ChunkState, SessionId, Tier};
