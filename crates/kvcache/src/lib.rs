//! Multi-tier KV-token cache management for Pensieve (§4.3), extended
//! below the paper's GPU + CPU pair with simulated SSD and cold
//! object-store tiers (see `docs/STORAGE.md` at the repository root).
//!
//! This crate implements the paper's cache manager at the *decision* level:
//! which chunks live where, what gets evicted when, and what a returning
//! conversation must swap in, read back, or recompute. It tracks token
//! counts and chunk states; the physical KV bytes live either in the
//! simulator (timing experiments) or in `pensieve-kernels`' paged pool
//! (functional tests), and deep-tier device timing lives in
//! `pensieve-sim`'s storage model.
//!
//! Key concepts, mapped to the paper:
//!
//! * **Chunks** — eviction happens in fixed-size groups of tokens
//!   (32 by default) to amortize decision-making and PCIe transfer costs.
//! * **Retention value** — `V = Cost(l) / T`: chunks that are cheap to
//!   recompute (leading chunks, small `l`) or belong to long-inactive
//!   conversations are evicted first ([`policy::RetentionValuePolicy`]).
//! * **Ahead-of-time swapping** — when GPU free space falls below a
//!   watermark (25 %), chunks are *copied* to CPU but their GPU slots are
//!   reclaimed lazily, so a quickly-returning conversation gets them back
//!   for free ([`tiered::TieredKvCache`]).
//! * **Demotion and recomputation** — under CPU pressure chunks demote
//!   tier-by-tier (CPU → SSD → cold) instead of being dropped outright;
//!   only when the bottom tier is full (or the deep tiers are disabled,
//!   the default) is a chunk dropped and later recomputed from raw
//!   tokens kept in a persistent store ([`store::RawTokenStore`]).
//! * **Request plans** — a returning conversation's context splits into
//!   the paper's Figure-5 segments, generalized across the hierarchy:
//!   dropped prefix (recompute), cold/SSD middle (device read), CPU
//!   middle (swap in), GPU tail (hit), new prompt (compute).
//! * **Manifests** — each session's chunk layout can be persisted to the
//!   cold tier ([`manifest::ColdObjectStore`]) so a restarted replica
//!   rehydrates the session as cold-tier reads instead of recomputing
//!   its whole history.

pub mod manifest;
pub mod policy;
pub mod stats;
pub mod store;
pub mod tiered;
pub mod types;

pub use manifest::{ColdObjectStore, ManifestError, SessionManifest};
pub use policy::{
    CachedAttentionPolicy, EvictionPolicy, LruPolicy, RetentionValuePolicy, TrailingEndPolicy,
};
pub use stats::CacheStats;
pub use store::RawTokenStore;
pub use tiered::{CacheError, RequestPlan, SessionExport, SwapOutOp, TieredKvCache};
pub use types::{CacheConfig, ChunkRef, ChunkState, SessionId, Tier};
