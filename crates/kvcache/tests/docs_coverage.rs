//! Keeps `docs/STORAGE.md` in sync with the storage code: every cache
//! tier, manifest identifier, and deep-tier device spec (including its
//! latency/bandwidth figures) must be documented. Adding a tier or
//! changing a device model without updating the doc fails this test —
//! the exhaustive `match`es below additionally fail to *compile* when a
//! variant is added, forcing the list (and the doc) to grow with the
//! code.

use pensieve_kvcache::{ManifestError, Tier};
use pensieve_sim::StorageDeviceSpec;

fn doc_text() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("docs")
        .join("STORAGE.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("docs/STORAGE.md must exist ({e})"))
}

/// Every `Tier` variant; the match is exhaustive on purpose.
const TIERS: [Tier; 6] = [
    Tier::Gpu,
    Tier::GpuCopied,
    Tier::Cpu,
    Tier::Ssd,
    Tier::Cold,
    Tier::Dropped,
];

fn tier_name(t: Tier) -> &'static str {
    match t {
        Tier::Gpu => "Tier::Gpu",
        Tier::GpuCopied => "Tier::GpuCopied",
        Tier::Cpu => "Tier::Cpu",
        Tier::Ssd => "Tier::Ssd",
        Tier::Cold => "Tier::Cold",
        Tier::Dropped => "Tier::Dropped",
    }
}

#[test]
fn every_tier_is_documented() {
    let doc = doc_text();
    let missing: Vec<&str> = TIERS
        .iter()
        .map(|&t| tier_name(t))
        .filter(|n| !doc.contains(&format!("`{n}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "docs/STORAGE.md is missing tiers: {missing:?}"
    );
}

#[test]
fn manifest_identifiers_are_documented() {
    let doc = doc_text();
    assert!(
        doc.contains("PNSVMAN2"),
        "docs/STORAGE.md must state the manifest magic"
    );
    assert!(
        doc.contains("PNSVMAN1"),
        "docs/STORAGE.md must note the legacy v1 magic decodes as Torn"
    );
    assert!(
        doc.to_lowercase().contains("fnv"),
        "docs/STORAGE.md must name the checksum"
    );
    let errors = [ManifestError::Missing, ManifestError::Torn];
    let missing: Vec<&str> = errors
        .iter()
        .map(|e| match e {
            ManifestError::Missing => "ManifestError::Missing",
            ManifestError::Torn => "ManifestError::Torn",
        })
        .filter(|n| !doc.contains(&format!("`{n}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "docs/STORAGE.md is missing manifest errors: {missing:?}"
    );
}

/// Renders a duration the way the doc's tier table does: whole
/// microseconds below a millisecond, whole milliseconds above.
fn fmt_latency(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.0} µs", secs * 1e6)
    } else {
        format!("{:.0} ms", secs * 1e3)
    }
}

/// Renders a bandwidth as the doc's `GB/s` figure, trimming a trailing
/// `.0` (3.5e9 -> "3.5 GB/s", 2.5e9 -> "2.5 GB/s", 1.2e9 -> "1.2 GB/s").
fn fmt_bandwidth(bytes_per_s: f64) -> String {
    let gb = bytes_per_s / 1e9;
    if (gb - gb.round()).abs() < 1e-9 {
        format!("{gb:.0} GB/s")
    } else {
        format!("{gb:.1} GB/s")
    }
}

#[test]
fn device_specs_match_the_tier_table() {
    let doc = doc_text();
    for spec in [StorageDeviceSpec::nvme(), StorageDeviceSpec::nfs()] {
        assert!(
            doc.contains(&format!("`{}`", spec.name))
                || doc.contains(&format!("StorageDeviceSpec::{}", spec.name)),
            "docs/STORAGE.md must name the `{}` device",
            spec.name
        );
        for (what, figure) in [
            ("read latency", fmt_latency(spec.read_latency.as_secs())),
            ("write latency", fmt_latency(spec.write_latency.as_secs())),
            ("read bandwidth", fmt_bandwidth(spec.read_bandwidth)),
            ("write bandwidth", fmt_bandwidth(spec.write_bandwidth)),
        ] {
            assert!(
                doc.contains(&figure),
                "docs/STORAGE.md tier table is missing the {} {what} figure {figure:?}",
                spec.name
            );
        }
    }
}

#[test]
fn storage_events_and_metrics_are_documented() {
    let doc = doc_text();
    // The deep hierarchy's observable surface: the doc must reference
    // each identifier so a reader can go from a trace or a metrics dump
    // back to this model.
    for name in [
        "ChunkDemoted",
        "ChunkDropped",
        "TierReadCommitted",
        "ManifestPersisted",
        "SessionRehydrated",
        "pensieve_demoted_tokens_total",
        "pensieve_ssd_hit_tokens_total",
        "pensieve_cold_hit_tokens_total",
        "pensieve_rehydrated_tokens_total",
        "pensieve_cold_read_faults_total",
        "pensieve_manifests_persisted_total",
        "pensieve_session_rehydrations_total",
    ] {
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/STORAGE.md is missing storage identifier `{name}`"
        );
    }
}
