//! Synthetic multi-turn conversation datasets calibrated to Table 2.
//!
//! Turn counts follow a shifted geometric distribution and token lengths a
//! log-normal, both parameterized so the *means* match the paper's
//! dataset statistics. A conversation is truncated once its cumulative
//! context would exceed the 16,384-token cap the paper applies (§6.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One conversation turn: a user prompt and the assistant's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Turn {
    /// User prompt length in tokens.
    pub input_tokens: usize,
    /// Response length in tokens.
    pub output_tokens: usize,
}

/// A multi-turn conversation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conversation {
    /// The turns, in order.
    pub turns: Vec<Turn>,
}

impl Conversation {
    /// Total tokens accumulated by the end of the conversation.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.turns
            .iter()
            .map(|t| t.input_tokens + t.output_tokens)
            .sum()
    }
}

/// Statistical profile of a dataset (paper Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Mean number of turns per conversation.
    pub mean_turns: f64,
    /// Mean request input (prompt) length in tokens.
    pub mean_input: f64,
    /// Mean request output length in tokens.
    pub mean_output: f64,
    /// Maximum context size; longer conversations are truncated.
    pub max_context: usize,
    /// Log-normal shape parameter for length distributions (ShareGPT's
    /// real lengths are heavy-tailed; UltraChat's synthetic ones less so).
    pub length_sigma: f64,
}

impl DatasetSpec {
    /// ShareGPT: real user-shared ChatGPT conversations
    /// (Table 2, column 1).
    #[must_use]
    pub fn sharegpt() -> Self {
        DatasetSpec {
            name: "ShareGPT".to_owned(),
            mean_turns: 5.56,
            mean_input: 37.77,
            mean_output: 204.58,
            max_context: 16_384,
            length_sigma: 1.0,
        }
    }

    /// UltraChat: large-scale synthetic dialogue (Table 2, column 2).
    #[must_use]
    pub fn ultrachat() -> Self {
        DatasetSpec {
            name: "UltraChat".to_owned(),
            mean_turns: 3.86,
            mean_input: 51.78,
            mean_output: 257.81,
            max_context: 16_384,
            length_sigma: 0.6,
        }
    }

    /// Samples `n` conversations with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec's means are not positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use pensieve_workload::dataset::{DatasetSpec, DatasetStats};
    ///
    /// let convs = DatasetSpec::sharegpt().generate(500, 7);
    /// let stats = DatasetStats::measure(&convs);
    /// assert!((stats.mean_turns - 5.56).abs() < 1.5);
    /// ```
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Conversation> {
        assert!(self.mean_turns >= 1.0 && self.mean_input > 0.0 && self.mean_output > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample_conversation(&mut rng)).collect()
    }

    fn sample_conversation(&self, rng: &mut StdRng) -> Conversation {
        // Shifted geometric: turns = 1 + Geom(p), so E[turns] = 1 + (1-p)/p
        // = mean  =>  p = 1 / mean.
        let p = 1.0 / self.mean_turns;
        let mut turns = Vec::new();
        let mut total = 0usize;
        loop {
            let input = self.sample_length(rng, self.mean_input);
            let output = self.sample_length(rng, self.mean_output);
            // Truncate at the paper's context cap.
            if total + input + output > self.max_context {
                if turns.is_empty() {
                    // Clamp a pathological first turn so every
                    // conversation has at least one servable request.
                    let input = input.min(self.max_context / 4);
                    let output = (self.max_context - input).min(output).max(1);
                    turns.push(Turn {
                        input_tokens: input,
                        output_tokens: output,
                    });
                }
                break;
            }
            turns.push(Turn {
                input_tokens: input,
                output_tokens: output,
            });
            total += input + output;
            if rng.random::<f64>() < p {
                break;
            }
        }
        Conversation { turns }
    }

    /// Log-normal sample with the requested mean and `length_sigma` shape,
    /// clamped to at least one token.
    fn sample_length(&self, rng: &mut StdRng, mean: f64) -> usize {
        let sigma = self.length_sigma;
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean.
        let mu = mean.ln() - sigma * sigma / 2.0;
        // Box-Muller standard normal.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (mu + sigma * z).exp();
        (v.round() as usize).max(1)
    }
}

/// Empirical statistics of a conversation set, Table-2 style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of conversations.
    pub conversations: usize,
    /// Mean turns per conversation.
    pub mean_turns: f64,
    /// Mean request input length.
    pub mean_input: f64,
    /// Mean request output length.
    pub mean_output: f64,
}

impl DatasetStats {
    /// Computes statistics over `convs`.
    ///
    /// # Panics
    ///
    /// Panics if `convs` is empty.
    #[must_use]
    pub fn measure(convs: &[Conversation]) -> Self {
        assert!(!convs.is_empty());
        let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
        let total_input: usize = convs
            .iter()
            .flat_map(|c| &c.turns)
            .map(|t| t.input_tokens)
            .sum();
        let total_output: usize = convs
            .iter()
            .flat_map(|c| &c.turns)
            .map(|t| t.output_tokens)
            .sum();
        DatasetStats {
            conversations: convs.len(),
            mean_turns: total_turns as f64 / convs.len() as f64,
            mean_input: total_input as f64 / total_turns as f64,
            mean_output: total_output as f64 / total_turns as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generated statistics must track Table 2 within sampling error.
    /// (Truncation at 16K pulls the means slightly below the targets.)
    #[test]
    fn sharegpt_statistics_match_table2() {
        let convs = DatasetSpec::sharegpt().generate(4000, 1);
        let s = DatasetStats::measure(&convs);
        assert!(
            (s.mean_turns - 5.56).abs() < 0.8,
            "mean turns {}",
            s.mean_turns
        );
        assert!(
            (s.mean_input - 37.77) / 37.77 < 0.15,
            "mean input {}",
            s.mean_input
        );
        assert!(
            (s.mean_output - 204.58) / 204.58 < 0.15,
            "mean output {}",
            s.mean_output
        );
    }

    #[test]
    fn ultrachat_statistics_match_table2() {
        let convs = DatasetSpec::ultrachat().generate(4000, 2);
        let s = DatasetStats::measure(&convs);
        assert!(
            (s.mean_turns - 3.86).abs() < 0.6,
            "mean turns {}",
            s.mean_turns
        );
        assert!(
            (s.mean_input - 51.78).abs() / 51.78 < 0.15,
            "mean input {}",
            s.mean_input
        );
        assert!(
            (s.mean_output - 257.81).abs() / 257.81 < 0.15,
            "mean output {}",
            s.mean_output
        );
    }

    #[test]
    fn context_cap_is_respected() {
        let convs = DatasetSpec::sharegpt().generate(2000, 3);
        for c in &convs {
            assert!(c.total_tokens() <= 16_384, "conversation exceeds cap");
            assert!(!c.turns.is_empty());
            for t in &c.turns {
                assert!(t.input_tokens >= 1 && t.output_tokens >= 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DatasetSpec::sharegpt().generate(50, 7);
        let b = DatasetSpec::sharegpt().generate(50, 7);
        let c = DatasetSpec::sharegpt().generate(50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// ShareGPT has more turns than UltraChat — the property §6.2 uses to
    /// explain Pensieve's larger gains on ShareGPT.
    #[test]
    fn sharegpt_has_more_turns_than_ultrachat() {
        let s = DatasetStats::measure(&DatasetSpec::sharegpt().generate(3000, 4));
        let u = DatasetStats::measure(&DatasetSpec::ultrachat().generate(3000, 4));
        assert!(s.mean_turns > u.mean_turns);
    }
}
