//! Synthetic multi-turn conversation datasets calibrated to Table 2.
//!
//! Turn counts follow a shifted geometric distribution and token lengths a
//! log-normal, both parameterized so the *means* match the paper's
//! dataset statistics. A conversation is truncated once its cumulative
//! context would exceed the 16,384-token cap the paper applies (§6.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One conversation turn: a user prompt and the assistant's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Turn {
    /// User prompt length in tokens.
    pub input_tokens: usize,
    /// Response length in tokens.
    pub output_tokens: usize,
}

/// A multi-turn conversation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conversation {
    /// The turns, in order.
    pub turns: Vec<Turn>,
}

impl Conversation {
    /// Total tokens accumulated by the end of the conversation.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.turns
            .iter()
            .map(|t| t.input_tokens + t.output_tokens)
            .sum()
    }

    /// Forks the conversation at turn boundary `turn`: the returned
    /// conversation shares turns `0..turn` verbatim (the history a
    /// KV-sharing engine can serve from one physical copy via
    /// `fork_session`) and then diverges with whatever turns the caller
    /// appends. `None` when `turn` is 0 or past the end — a fork must
    /// share at least one turn and must branch *within* the history.
    #[must_use]
    pub fn fork_at(&self, turn: usize) -> Option<Conversation> {
        if turn == 0 || turn > self.turns.len() {
            return None;
        }
        Some(Conversation {
            turns: self.turns.get(..turn)?.to_vec(),
        })
    }
}

/// Statistical profile of a dataset (paper Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Mean number of turns per conversation.
    pub mean_turns: f64,
    /// Mean request input (prompt) length in tokens.
    pub mean_input: f64,
    /// Mean request output length in tokens.
    pub mean_output: f64,
    /// Maximum context size; longer conversations are truncated.
    pub max_context: usize,
    /// Log-normal shape parameter for length distributions (ShareGPT's
    /// real lengths are heavy-tailed; UltraChat's synthetic ones less so).
    pub length_sigma: f64,
    /// Tokens of a preamble every conversation shares verbatim (tool
    /// instructions, RAG context). Counts toward `max_context` but adds
    /// no turn: the driver submits it as pre-existing history, so a
    /// content-addressed cache stores it once for the whole fleet.
    /// Defaults to 0 (absent in older serialized specs).
    #[serde(default)]
    pub preamble_tokens: usize,
}

impl DatasetSpec {
    /// ShareGPT: real user-shared ChatGPT conversations
    /// (Table 2, column 1).
    #[must_use]
    pub fn sharegpt() -> Self {
        DatasetSpec {
            name: "ShareGPT".to_owned(),
            mean_turns: 5.56,
            mean_input: 37.77,
            mean_output: 204.58,
            max_context: 16_384,
            length_sigma: 1.0,
            preamble_tokens: 0,
        }
    }

    /// UltraChat: large-scale synthetic dialogue (Table 2, column 2).
    #[must_use]
    pub fn ultrachat() -> Self {
        DatasetSpec {
            name: "UltraChat".to_owned(),
            mean_turns: 3.86,
            mean_input: 51.78,
            mean_output: 257.81,
            max_context: 16_384,
            length_sigma: 0.6,
            preamble_tokens: 0,
        }
    }

    /// Agentic fleet: K agents spun up from the *same* tool preamble,
    /// exchanging many short tool-call turns. The preamble (clamped to
    /// the 1–2k-token range typical of tool manifests) dominates each
    /// agent's context, so a per-conversation cache stores it K times
    /// while a content-addressed cache stores it once — this is the
    /// workload `bench_sharing` measures dedup on.
    #[must_use]
    pub fn agentic(preamble_tokens: usize) -> Self {
        DatasetSpec {
            name: "Agentic".to_owned(),
            mean_turns: 8.0,
            mean_input: 48.0,
            mean_output: 96.0,
            max_context: 16_384,
            length_sigma: 0.4,
            preamble_tokens: preamble_tokens.clamp(1024, 2048),
        }
    }

    /// Samples `n` conversations with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec's means are not positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use pensieve_workload::dataset::{DatasetSpec, DatasetStats};
    ///
    /// let convs = DatasetSpec::sharegpt().generate(500, 7);
    /// let stats = DatasetStats::measure(&convs);
    /// assert!((stats.mean_turns - 5.56).abs() < 1.5);
    /// ```
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Conversation> {
        assert!(self.mean_turns >= 1.0 && self.mean_input > 0.0 && self.mean_output > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample_conversation(&mut rng)).collect()
    }

    fn sample_conversation(&self, rng: &mut StdRng) -> Conversation {
        // Shifted geometric: turns = 1 + Geom(p), so E[turns] = 1 + (1-p)/p
        // = mean  =>  p = 1 / mean.
        let p = 1.0 / self.mean_turns;
        let mut turns = Vec::new();
        // The shared preamble occupies context from turn one.
        let mut total = self.preamble_tokens;
        loop {
            let input = self.sample_length(rng, self.mean_input);
            let output = self.sample_length(rng, self.mean_output);
            // Truncate at the paper's context cap.
            if total + input + output > self.max_context {
                if turns.is_empty() {
                    // Clamp a pathological first turn so every
                    // conversation has at least one servable request
                    // (within the context left over after the preamble).
                    let budget = self.max_context.saturating_sub(self.preamble_tokens);
                    let input = input.min(budget / 4).max(1);
                    let output = budget.saturating_sub(input).min(output).max(1);
                    turns.push(Turn {
                        input_tokens: input,
                        output_tokens: output,
                    });
                }
                break;
            }
            turns.push(Turn {
                input_tokens: input,
                output_tokens: output,
            });
            total += input + output;
            if rng.random::<f64>() < p {
                break;
            }
        }
        Conversation { turns }
    }

    /// Log-normal sample with the requested mean and `length_sigma` shape,
    /// clamped to at least one token.
    fn sample_length(&self, rng: &mut StdRng, mean: f64) -> usize {
        let sigma = self.length_sigma;
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean.
        let mu = mean.ln() - sigma * sigma / 2.0;
        // Box-Muller standard normal.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (mu + sigma * z).exp();
        (v.round() as usize).max(1)
    }
}

/// Empirical statistics of a conversation set, Table-2 style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of conversations.
    pub conversations: usize,
    /// Mean turns per conversation.
    pub mean_turns: f64,
    /// Mean request input length.
    pub mean_input: f64,
    /// Mean request output length.
    pub mean_output: f64,
}

impl DatasetStats {
    /// Computes statistics over `convs`.
    ///
    /// # Panics
    ///
    /// Panics if `convs` is empty.
    #[must_use]
    pub fn measure(convs: &[Conversation]) -> Self {
        assert!(!convs.is_empty());
        let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
        let total_input: usize = convs
            .iter()
            .flat_map(|c| &c.turns)
            .map(|t| t.input_tokens)
            .sum();
        let total_output: usize = convs
            .iter()
            .flat_map(|c| &c.turns)
            .map(|t| t.output_tokens)
            .sum();
        DatasetStats {
            conversations: convs.len(),
            mean_turns: total_turns as f64 / convs.len() as f64,
            mean_input: total_input as f64 / total_turns as f64,
            mean_output: total_output as f64 / total_turns as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generated statistics must track Table 2 within sampling error.
    /// (Truncation at 16K pulls the means slightly below the targets.)
    #[test]
    fn sharegpt_statistics_match_table2() {
        let convs = DatasetSpec::sharegpt().generate(4000, 1);
        let s = DatasetStats::measure(&convs);
        assert!(
            (s.mean_turns - 5.56).abs() < 0.8,
            "mean turns {}",
            s.mean_turns
        );
        assert!(
            (s.mean_input - 37.77) / 37.77 < 0.15,
            "mean input {}",
            s.mean_input
        );
        assert!(
            (s.mean_output - 204.58) / 204.58 < 0.15,
            "mean output {}",
            s.mean_output
        );
    }

    #[test]
    fn ultrachat_statistics_match_table2() {
        let convs = DatasetSpec::ultrachat().generate(4000, 2);
        let s = DatasetStats::measure(&convs);
        assert!(
            (s.mean_turns - 3.86).abs() < 0.6,
            "mean turns {}",
            s.mean_turns
        );
        assert!(
            (s.mean_input - 51.78).abs() / 51.78 < 0.15,
            "mean input {}",
            s.mean_input
        );
        assert!(
            (s.mean_output - 257.81).abs() / 257.81 < 0.15,
            "mean output {}",
            s.mean_output
        );
    }

    #[test]
    fn context_cap_is_respected() {
        let convs = DatasetSpec::sharegpt().generate(2000, 3);
        for c in &convs {
            assert!(c.total_tokens() <= 16_384, "conversation exceeds cap");
            assert!(!c.turns.is_empty());
            for t in &c.turns {
                assert!(t.input_tokens >= 1 && t.output_tokens >= 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DatasetSpec::sharegpt().generate(50, 7);
        let b = DatasetSpec::sharegpt().generate(50, 7);
        let c = DatasetSpec::sharegpt().generate(50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// The agentic preset budgets its shared preamble inside the context
    /// cap and stays deterministic per seed.
    #[test]
    fn agentic_preset_accounts_for_preamble() {
        let spec = DatasetSpec::agentic(1536);
        assert_eq!(spec.preamble_tokens, 1536);
        assert_eq!(DatasetSpec::agentic(10).preamble_tokens, 1024, "clamped up");
        assert_eq!(
            DatasetSpec::agentic(50_000).preamble_tokens,
            2048,
            "clamped down"
        );
        let convs = spec.generate(500, 5);
        for c in &convs {
            assert!(
                spec.preamble_tokens + c.total_tokens() <= spec.max_context,
                "preamble plus turns exceed the context cap"
            );
            assert!(!c.turns.is_empty());
        }
        assert_eq!(convs, spec.generate(500, 5));
    }

    /// Older serialized specs (no `preamble_tokens` field) still load.
    #[test]
    fn preamble_field_defaults_when_absent() {
        let json = r#"{"name":"Old","mean_turns":2.0,"mean_input":10.0,
            "mean_output":20.0,"max_context":4096,"length_sigma":0.5}"#;
        let spec: DatasetSpec = serde_json::from_str(json).expect("legacy spec parses");
        assert_eq!(spec.preamble_tokens, 0);
    }

    #[test]
    fn fork_shares_the_prefix_and_rejects_empty_forks() {
        let conv = DatasetSpec::sharegpt()
            .generate(1, 6)
            .pop()
            .expect("one conversation");
        assert!(conv.fork_at(0).is_none(), "a fork must share history");
        assert!(conv.fork_at(conv.turns.len() + 1).is_none());
        if conv.turns.len() >= 2 {
            let fork = conv.fork_at(1).expect("valid boundary");
            assert_eq!(fork.turns, conv.turns[..1].to_vec());
        }
        let full = conv.fork_at(conv.turns.len()).expect("fork at end");
        assert_eq!(full, conv);
    }

    /// ShareGPT has more turns than UltraChat — the property §6.2 uses to
    /// explain Pensieve's larger gains on ShareGPT.
    #[test]
    fn sharegpt_has_more_turns_than_ultrachat() {
        let s = DatasetStats::measure(&DatasetSpec::sharegpt().generate(3000, 4));
        let u = DatasetStats::measure(&DatasetSpec::ultrachat().generate(3000, 4));
        assert!(s.mean_turns > u.mean_turns);
    }
}
