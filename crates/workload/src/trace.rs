//! Conversation-trace import/export.
//!
//! The paper evaluates on the ShareGPT dump, which is not redistributable
//! here; this module lets a user who *has* it feed the real data in.
//! [`load_sharegpt_json`] parses the standard dump format
//! (`[{"conversations": [{"from": "human"|"gpt", "value": "…"}, …]}, …]`)
//! into [`Conversation`]s, estimating token counts with the common
//! 4-characters-per-token heuristic; malformed entries are skipped and
//! conversations are truncated at the paper's 16,384-token cap (§6.1).
//! [`save_conversations`]/[`load_conversations`] round-trip this crate's
//! own JSON representation so generated workloads can be pinned for
//! apples-to-apples comparisons across runs.

use std::fs;
use std::io;
use std::path::Path;

use crate::dataset::{Conversation, Turn};

/// Paper §6.1: maximum context size; longer conversations are truncated.
const MAX_CONTEXT: usize = 16_384;

/// Estimates a token count from raw text (≈4 characters per token, min 1).
#[must_use]
pub fn estimate_tokens(text: &str) -> usize {
    text.chars().count().div_ceil(4).max(1)
}

/// Parses a ShareGPT-format JSON dump into conversations.
///
/// Consecutive `human` → `gpt` message pairs become [`Turn`]s; leading
/// `gpt` messages and unpaired trailing `human` messages are skipped, as
/// are conversations that yield no complete turn.
///
/// # Errors
///
/// Returns an error if the file cannot be read or is not valid JSON of
/// the expected top-level shape (an array).
pub fn load_sharegpt_json(path: &Path) -> io::Result<Vec<Conversation>> {
    let data = fs::read_to_string(path)?;
    parse_sharegpt(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Parses ShareGPT-format JSON from a string (see [`load_sharegpt_json`]).
///
/// # Errors
///
/// Returns a description of the parse failure.
pub fn parse_sharegpt(data: &str) -> Result<Vec<Conversation>, String> {
    let root: serde_json::Value =
        serde_json::from_str(data).map_err(|e| format!("invalid JSON: {e}"))?;
    let Some(items) = root.as_array() else {
        return Err("expected a top-level JSON array".to_owned());
    };
    let mut out = Vec::new();
    for item in items {
        let Some(msgs) = item.get("conversations").and_then(|c| c.as_array()) else {
            continue;
        };
        let mut turns = Vec::new();
        let mut total = 0usize;
        let mut pending_input: Option<usize> = None;
        for msg in msgs {
            let (Some(from), Some(value)) = (
                msg.get("from").and_then(|f| f.as_str()),
                msg.get("value").and_then(|v| v.as_str()),
            ) else {
                continue;
            };
            let tokens = estimate_tokens(value);
            match from {
                "human" | "user" => pending_input = Some(tokens),
                "gpt" | "assistant" | "chatgpt" | "bard" => {
                    if let Some(input) = pending_input.take() {
                        if total + input + tokens > MAX_CONTEXT {
                            break;
                        }
                        total += input + tokens;
                        turns.push(Turn {
                            input_tokens: input,
                            output_tokens: tokens,
                        });
                    }
                }
                _ => {}
            }
        }
        if !turns.is_empty() {
            out.push(Conversation { turns });
        }
    }
    Ok(out)
}

/// Writes conversations as pretty JSON.
///
/// # Errors
///
/// Returns an error if serialization or the write fails.
pub fn save_conversations(path: &Path, convs: &[Conversation]) -> io::Result<()> {
    let data = serde_json::to_string_pretty(convs)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, data)
}

/// Reads conversations saved by [`save_conversations`].
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load_conversations(path: &Path) -> io::Result<Vec<Conversation>> {
    let data = fs::read_to_string(path)?;
    serde_json::from_str(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;

    const SAMPLE: &str = r#"[
      {"id": "a", "conversations": [
        {"from": "human", "value": "What is the capital of France, and why?"},
        {"from": "gpt", "value": "The capital of France is Paris. It became the capital because of its central role in French politics, economy, and culture over many centuries."},
        {"from": "human", "value": "Thanks!"},
        {"from": "gpt", "value": "You're welcome."}
      ]},
      {"id": "b", "conversations": [
        {"from": "gpt", "value": "stray assistant opener, skipped"},
        {"from": "human", "value": "only a question with no answer"}
      ]},
      {"id": "c", "conversations": [
        {"from": "human", "value": "hi"},
        {"from": "assistant", "value": "hello there"}
      ]},
      {"not_conversations": true}
    ]"#;

    #[test]
    fn parses_human_gpt_pairs() {
        let convs = parse_sharegpt(SAMPLE).unwrap();
        // Conversation b yields no complete pair; the malformed entry is
        // skipped entirely.
        assert_eq!(convs.len(), 2);
        assert_eq!(convs[0].turns.len(), 2);
        assert_eq!(convs[1].turns.len(), 1);
        let t = &convs[0].turns[0];
        assert_eq!(
            t.input_tokens,
            estimate_tokens("What is the capital of France, and why?")
        );
        assert!(t.output_tokens > t.input_tokens);
    }

    #[test]
    fn token_estimate_heuristic() {
        assert_eq!(estimate_tokens(""), 1);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert_eq!(estimate_tokens("abcde"), 2);
        assert_eq!(estimate_tokens(&"x".repeat(400)), 100);
    }

    #[test]
    fn rejects_non_array_root() {
        assert!(parse_sharegpt("{\"a\": 1}").is_err());
        assert!(parse_sharegpt("not json").is_err());
    }

    #[test]
    fn long_conversations_truncate_at_cap() {
        // One turn of ~20k tokens input: truncated away -> conversation
        // dropped; a prior small turn survives.
        let big = "y".repeat(90_000);
        let json = format!(
            r#"[{{"conversations": [
                {{"from": "human", "value": "short question"}},
                {{"from": "gpt", "value": "short answer"}},
                {{"from": "human", "value": "{big}"}},
                {{"from": "gpt", "value": "ok"}}
            ]}}]"#
        );
        let convs = parse_sharegpt(&json).unwrap();
        assert_eq!(convs.len(), 1);
        assert_eq!(convs[0].turns.len(), 1, "oversized turn truncated");
        assert!(convs[0].total_tokens() <= MAX_CONTEXT);
    }

    #[test]
    fn save_load_roundtrip() {
        let convs = DatasetSpec::sharegpt().generate(25, 9);
        let path = std::env::temp_dir().join("pensieve_trace_roundtrip.json");
        save_conversations(&path, &convs).unwrap();
        let loaded = load_conversations(&path).unwrap();
        assert_eq!(convs, loaded);
        let _ = std::fs::remove_file(&path);
    }
}
