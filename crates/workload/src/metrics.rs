//! Latency/throughput summaries matching the paper's reporting (§6.1):
//! normalized latency percentiles over a steady-state window, TTFT, and
//! request/token throughput.
//!
//! These summaries are what the serving sweeps print and persist: the
//! `fig10`/`fig11` rate sweeps, the `fig15` think-time sweep, and the
//! interactive `serve_sim` binary (all under
//! `cargo run --release -p pensieve-bench --bin <id>`; measured results
//! in `EXPERIMENTS.md`). Distribution-level TTFT lives in the
//! `pensieve_ttft_seconds` histogram recorded alongside a trace — see
//! `docs/OBSERVABILITY.md`.

use pensieve_core::Response;
use pensieve_model::SimDuration;
use serde::{Deserialize, Serialize};

/// Summary of normalized latency (end-to-end latency / output tokens) over
/// a set of responses, plus throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of completed requests.
    pub requests: usize,
    /// Mean normalized latency, seconds per output token.
    pub mean_normalized: f64,
    /// Median normalized latency.
    pub p50_normalized: f64,
    /// 90th-percentile normalized latency (the paper's headline metric).
    pub p90_normalized: f64,
    /// Mean time to first token, seconds.
    pub mean_ttft: f64,
    /// Completed requests per second over the measurement span.
    pub throughput_rps: f64,
    /// Generated output tokens per second over the measurement span.
    pub throughput_tps: f64,
}

impl LatencySummary {
    /// Summarizes the steady-state portion of a run.
    ///
    /// Closed-loop runs have a warmup ramp and a long drain tail (think
    /// times keep trickling requests after arrivals stop), so raw
    /// completions/span understates capacity. This selects the window
    /// between the 10th and 90th percentile of request *arrivals*,
    /// reports latency over requests arriving in the window, and
    /// throughput as completions landing in it divided by its width.
    ///
    /// # Panics
    ///
    /// Panics if `responses` is empty.
    #[must_use]
    pub fn steady_state(responses: &[Response]) -> Self {
        assert!(!responses.is_empty());
        let mut arrivals: Vec<f64> = responses.iter().map(|r| r.arrival.as_secs()).collect();
        arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let lo = percentile(&arrivals, 0.10);
        let hi = percentile(&arrivals, 0.90);
        if hi - lo < 1e-9 {
            // Degenerate (few requests): fall back to the full span.
            let last_finish = responses
                .iter()
                .map(|r| r.finish.as_secs())
                .fold(0.0f64, f64::max);
            let span = SimDuration::from_secs((last_finish - arrivals[0]).max(1e-9));
            return Self::from_responses(responses, span);
        }
        let in_window: Vec<Response> = responses
            .iter()
            .filter(|r| r.arrival.as_secs() >= lo && r.arrival.as_secs() <= hi)
            .cloned()
            .collect();
        let completions = responses
            .iter()
            .filter(|r| r.finish.as_secs() >= lo && r.finish.as_secs() <= hi)
            .count();
        let tokens: usize = responses
            .iter()
            .filter(|r| r.finish.as_secs() >= lo && r.finish.as_secs() <= hi)
            .map(|r| r.output_tokens)
            .sum();
        let mut s = Self::from_responses(&in_window, SimDuration::from_secs(hi - lo));
        s.throughput_rps = completions as f64 / (hi - lo);
        s.throughput_tps = tokens as f64 / (hi - lo);
        s
    }

    /// Summarizes `responses`; `span` is the measurement duration used for
    /// throughput.
    ///
    /// # Panics
    ///
    /// Panics if `responses` is empty or `span` is zero.
    #[must_use]
    pub fn from_responses(responses: &[Response], span: SimDuration) -> Self {
        assert!(!responses.is_empty(), "no responses to summarize");
        assert!(span.as_secs() > 0.0, "zero measurement span");
        let mut norm: Vec<f64> = responses
            .iter()
            .map(|r| r.normalized_latency().as_secs())
            .collect();
        norm.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean = norm.iter().sum::<f64>() / norm.len() as f64;
        let ttft =
            responses.iter().map(|r| r.ttft().as_secs()).sum::<f64>() / responses.len() as f64;
        let tokens: usize = responses.iter().map(|r| r.output_tokens).sum();
        LatencySummary {
            requests: responses.len(),
            mean_normalized: mean,
            p50_normalized: percentile(&norm, 0.50),
            p90_normalized: percentile(&norm, 0.90),
            mean_ttft: ttft,
            throughput_rps: responses.len() as f64 / span.as_secs(),
            throughput_tps: tokens as f64 / span.as_secs(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_core::RequestId;
    use pensieve_kvcache::SessionId;
    use pensieve_model::SimTime;

    fn resp(arrival: f64, finish: f64, out: usize) -> Response {
        Response {
            id: RequestId(0),
            conv: SessionId(0),
            arrival: SimTime::from_secs(arrival),
            first_token: SimTime::from_secs(arrival + 0.1),
            finish: SimTime::from_secs(finish),
            output_tokens: out,
            prefill_tokens: 0,
            cached_history_tokens: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.9), 9.0);
        assert_eq!(percentile(&v, 1.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    /// Degenerate input (all arrivals identical) falls back to full-span
    /// throughput instead of dividing by a zero-width window.
    #[test]
    fn steady_state_degenerate_falls_back() {
        let rs = vec![resp(1.0, 2.0, 10), resp(1.0, 3.0, 10)];
        let s = LatencySummary::steady_state(&rs);
        assert_eq!(s.requests, 2);
        assert!(s.throughput_rps > 0.0 && s.throughput_rps.is_finite());
    }

    /// The steady window excludes warmup and drain-tail requests from the
    /// latency statistics.
    #[test]
    fn steady_state_trims_warmup_and_tail() {
        // 20 requests arriving at t = 0..19; the nearest-rank p10..p90
        // window is [1, 17], so arrivals 0, 18 and 19 are excluded.
        let rs: Vec<Response> = (0..20)
            .map(|i| resp(i as f64, i as f64 + 1.0, 10))
            .collect();
        let s = LatencySummary::steady_state(&rs);
        assert_eq!(s.requests, 17);
    }

    #[test]
    fn summary_computes_expected_values() {
        // Two requests of 10 tokens with latencies 1s and 2s.
        let rs = vec![resp(0.0, 1.0, 10), resp(0.0, 2.0, 10)];
        let s = LatencySummary::from_responses(&rs, SimDuration::from_secs(4.0));
        assert!((s.mean_normalized - 0.15).abs() < 1e-12);
        assert_eq!(s.p90_normalized, 0.2);
        assert_eq!(s.requests, 2);
        assert!((s.throughput_rps - 0.5).abs() < 1e-12);
        assert!((s.throughput_tps - 5.0).abs() < 1e-12);
        assert!((s.mean_ttft - 0.1).abs() < 1e-9);
    }
}
