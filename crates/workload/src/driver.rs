//! Closed-loop workload driver (§6.1's methodology).
//!
//! Conversations *start* according to a Poisson process whose rate is
//! derived from the target request rate. Within a conversation, causal
//! dependency is maintained: turn `k+1` is submitted only after turn `k`'s
//! response has been received, plus an exponentially-distributed user
//! think time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pensieve_core::{Request, RequestId, Response, ServingBackend};
use pensieve_kvcache::SessionId;
use pensieve_model::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::{exponential, poisson_arrivals};
use crate::dataset::Conversation;
use crate::metrics::LatencySummary;

/// Closed-loop driver parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverConfig {
    /// Target request arrival rate (requests/second). Conversation starts
    /// are Poisson at `request_rate / mean_turns`.
    pub request_rate: f64,
    /// Mean user think time between a response and the next turn
    /// (paper default: 60 s).
    pub mean_think_time: f64,
    /// RNG seed for arrivals and think times.
    pub seed: u64,
    /// Tokens of a system prompt prepended to every conversation: each
    /// conversation's first turn arrives with this much history already
    /// (stateless engines recompute it; Pensieve caches it per
    /// conversation, or once globally with
    /// `EngineConfig::pensieve_shared_prefix`).
    pub system_prompt_tokens: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            request_rate: 1.0,
            mean_think_time: 60.0,
            seed: 0,
            system_prompt_tokens: 0,
        }
    }
}

/// Outcome of one driver run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// All completed responses, in completion order.
    pub responses: Vec<Response>,
    /// Simulated span from first arrival to last completion.
    pub span: SimDuration,
}

impl RunResult {
    /// Steady-state latency/throughput summary of the run (§6.1 metrics).
    ///
    /// # Panics
    ///
    /// Panics if the run produced no responses.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::steady_state(&self.responses)
    }
}

/// A turn pending submission at a given time.
#[derive(Debug)]
struct Pending {
    at: SimTime,
    seq: u64,
    conv_index: usize,
    turn_index: usize,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .partial_cmp(&other.at)
            .expect("finite times")
            .then(self.seq.cmp(&other.seq))
    }
}

/// Runs `convs` against `engine` under `cfg`, returning all responses.
///
/// Conversation ids are assigned from the conversation index; request ids
/// are globally unique. The engine is expected to be fresh (time zero),
/// but any monotonically-advanced engine works.
///
/// # Panics
///
/// Panics if `convs` is empty or contains an empty conversation.
#[must_use]
pub fn run_closed_loop<B: ServingBackend>(
    engine: &mut B,
    convs: &[Conversation],
    cfg: &DriverConfig,
) -> RunResult {
    run_closed_loop_probed(engine, convs, cfg, f64::INFINITY, |_, _| {})
}

/// [`run_closed_loop`] with a periodic probe: `probe` is called with the
/// engine every time the simulated clock crosses another multiple of
/// `probe_interval_secs` (e.g. to sample cache occupancy over time).
///
/// # Panics
///
/// Panics if `convs` is empty or contains an empty conversation.
#[must_use]
pub fn run_closed_loop_probed<B: ServingBackend>(
    engine: &mut B,
    convs: &[Conversation],
    cfg: &DriverConfig,
    probe_interval_secs: f64,
    mut probe: impl FnMut(f64, &B),
) -> RunResult {
    assert!(!convs.is_empty());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mean_turns = convs.iter().map(|c| c.turns.len()).sum::<usize>() as f64 / convs.len() as f64;
    let conv_rate = (cfg.request_rate / mean_turns).max(1e-9);
    let starts = poisson_arrivals(&mut rng, conv_rate, convs.len());

    let mut pending: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, at) in starts.iter().enumerate() {
        pending.push(Reverse(Pending {
            at: *at,
            seq,
            conv_index: i,
            turn_index: 0,
        }));
        seq += 1;
    }

    // Cumulative history per conversation, for Request::history_tokens.
    // Every conversation starts with the system prompt as history.
    let mut history: Vec<usize> = vec![cfg.system_prompt_tokens; convs.len()];
    // Turns submitted so far per conversation (== completed turns at any
    // response boundary, thanks to causal ordering).
    let mut submitted: Vec<usize> = vec![0; convs.len()];
    let mut next_request_id = 0u64;
    let mut responses: Vec<Response> = Vec::new();
    let first_arrival = starts.first().copied().unwrap_or(SimTime::ZERO);

    let mut next_probe = probe_interval_secs;
    // Co-simulation loop: submit every due turn, then advance the engine
    // only until its next response (or the next pending arrival), so that
    // causally-dependent follow-up turns are injected at the right time.
    loop {
        while engine.now().as_secs() >= next_probe {
            probe(next_probe, engine);
            next_probe += probe_interval_secs;
        }
        while let Some(Reverse(p)) = pending.peek() {
            if p.at > engine.now() {
                break;
            }
            let Reverse(p) = pending.pop().expect("peeked");
            let turn = convs[p.conv_index].turns[p.turn_index];
            let req = Request::builder()
                .id(RequestId(next_request_id))
                .session(SessionId(p.conv_index as u64))
                .arrival(p.at)
                .prompt_tokens(turn.input_tokens)
                .output_tokens(turn.output_tokens)
                .history_tokens(history[p.conv_index])
                .build()
                .expect("datasets produce non-empty turns");
            engine.submit(req);
            next_request_id += 1;
            submitted[p.conv_index] += 1;
            history[p.conv_index] += turn.input_tokens + turn.output_tokens;
        }
        let target = pending.peek().map(|Reverse(p)| p.at);
        if engine.is_idle() && target.is_none() {
            break;
        }
        engine.poll(target);
        for resp in engine.drain_responses() {
            let conv_index = resp.conv.0 as usize;
            let next_turn = submitted[conv_index];
            if next_turn < convs[conv_index].turns.len() {
                let think = exponential(&mut rng, cfg.mean_think_time);
                pending.push(Reverse(Pending {
                    at: resp.finish + think,
                    seq,
                    conv_index,
                    turn_index: next_turn,
                }));
                seq += 1;
            }
            responses.push(resp);
        }
    }

    let last_finish = responses
        .iter()
        .map(|r| r.finish)
        .fold(first_arrival, SimTime::max);
    RunResult {
        span: last_finish.saturating_duration_since(first_arrival),
        responses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use pensieve_core::{EngineConfig, SimServingEngine};
    use pensieve_model::{HardwareSpec, ModelConfig};

    fn engine(cfg: EngineConfig) -> SimServingEngine {
        SimServingEngine::builder(cfg, ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1))
            .build()
    }

    fn small_workload(n: usize, seed: u64) -> Vec<Conversation> {
        DatasetSpec::sharegpt().generate(n, seed)
    }

    #[test]
    fn all_turns_complete() {
        let convs = small_workload(20, 1);
        let total_turns: usize = convs.iter().map(|c| c.turns.len()).sum();
        let mut e = engine(EngineConfig::pensieve());
        let result = run_closed_loop(
            &mut e,
            &convs,
            &DriverConfig {
                request_rate: 2.0,
                mean_think_time: 10.0,
                seed: 42,
                system_prompt_tokens: 0,
            },
        );
        assert_eq!(result.responses.len(), total_turns);
        assert!(result.span.as_secs() > 0.0);
        let s = result.summary();
        assert!(s.mean_normalized > 0.0 && s.p90_normalized >= s.p50_normalized);
    }

    #[test]
    fn causal_order_within_conversations() {
        let convs = small_workload(10, 2);
        let mut e = engine(EngineConfig::pensieve());
        let result = run_closed_loop(
            &mut e,
            &convs,
            &DriverConfig {
                request_rate: 5.0,
                mean_think_time: 5.0,
                seed: 7,
                system_prompt_tokens: 0,
            },
        );
        // For each conversation, arrivals and finishes must interleave:
        // next turn arrives after the previous finish.
        for conv in 0..convs.len() {
            let mut rs: Vec<&Response> = result
                .responses
                .iter()
                .filter(|r| r.conv.0 as usize == conv)
                .collect();
            rs.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
            for w in rs.windows(2) {
                assert!(
                    w[1].arrival >= w[0].finish,
                    "turn submitted before previous response"
                );
            }
        }
    }

    #[test]
    fn driver_is_deterministic() {
        let convs = small_workload(10, 3);
        let run = || {
            let mut e = engine(EngineConfig::pensieve());
            let r = run_closed_loop(
                &mut e,
                &convs,
                &DriverConfig {
                    request_rate: 3.0,
                    mean_think_time: 20.0,
                    seed: 9,
                    system_prompt_tokens: 0,
                },
            );
            (r.responses.len(), r.span)
        };
        assert_eq!(run(), run());
    }

    /// Higher request rates push p90 normalized latency up — the basic
    /// shape behind every throughput-latency plot in the paper.
    #[test]
    fn latency_rises_with_load() {
        let convs = small_workload(100, 4);
        let p90_at = |rate: f64| {
            let mut e = engine(EngineConfig::vllm());
            run_closed_loop(
                &mut e,
                &convs,
                &DriverConfig {
                    request_rate: rate,
                    mean_think_time: 1.0,
                    seed: 11,
                    system_prompt_tokens: 0,
                },
            )
            .summary()
            .p90_normalized
        };
        let light = p90_at(0.3);
        let heavy = p90_at(30.0);
        assert!(
            heavy > 1.3 * light,
            "p90 at heavy load {heavy} <= light load {light}"
        );
    }
}
