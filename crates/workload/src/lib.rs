//! Conversation workloads, arrival processes, and the closed-loop driver.
//!
//! The paper evaluates on two multi-turn datasets (ShareGPT, UltraChat;
//! Table 2) with Poisson request arrivals and exponential user think time
//! (§6.1). The real datasets are not redistributable here, so
//! [`dataset`] generates synthetic conversations whose turn-count and
//! length distributions are calibrated to Table 2's statistics; the
//! serving experiments consume only those shapes.
//!
//! [`driver`] co-simulates a workload against a serving engine while
//! maintaining the causal dependency between turns: a conversation's next
//! request is only issued after the previous response, plus a sampled
//! think time. [`metrics`] summarizes the resulting responses the way the
//! paper reports them (throughput and mean/p50/p90 normalized latency).

pub mod arrivals;
pub mod dataset;
pub mod driver;
pub mod metrics;
pub mod trace;

pub use arrivals::{exponential, poisson_arrivals};
pub use dataset::{Conversation, DatasetSpec, DatasetStats, Turn};
pub use driver::{DriverConfig, RunResult};
pub use metrics::LatencySummary;
pub use trace::{load_conversations, load_sharegpt_json, parse_sharegpt, save_conversations};
