//! Arrival processes: Poisson conversation starts, exponential think time.

use rand::rngs::StdRng;
use rand::Rng;

use pensieve_model::{SimDuration, SimTime};

/// Samples an exponential duration with the given mean.
///
/// # Panics
///
/// Panics if `mean_secs` is negative or non-finite.
#[must_use]
pub fn exponential(rng: &mut StdRng, mean_secs: f64) -> SimDuration {
    assert!(mean_secs.is_finite() && mean_secs >= 0.0);
    if mean_secs == 0.0 {
        return SimDuration::ZERO;
    }
    let u: f64 = rng.random::<f64>().max(1e-12);
    SimDuration::from_secs(-mean_secs * u.ln())
}

/// Generates `n` Poisson arrival instants at `rate` events per second,
/// starting from time zero.
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn poisson_arrivals(rng: &mut StdRng, rate: f64, n: usize) -> Vec<SimTime> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|_| {
            t += exponential(rng, 1.0 / rate);
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, 60.0).as_secs()).sum();
        let mean = total / f64::from(n);
        assert!((mean - 60.0).abs() < 2.0, "sampled mean {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(exponential(&mut rng, 0.0), SimDuration::ZERO);
    }

    #[test]
    fn poisson_rate_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(&mut rng, 2.0, 10_000);
        let span = arrivals.last().unwrap().as_secs();
        let rate = 10_000.0 / span;
        assert!((rate - 2.0).abs() < 0.1, "empirical rate {rate}");
        // Strictly increasing.
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn arrivals_deterministic_per_seed() {
        let a = poisson_arrivals(&mut StdRng::seed_from_u64(4), 1.0, 100);
        let b = poisson_arrivals(&mut StdRng::seed_from_u64(4), 1.0, 100);
        assert_eq!(a, b);
    }
}
