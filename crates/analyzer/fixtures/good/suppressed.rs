// analyzer-fixture: crates/core/src/suppressed.rs
//! A known-good file: every violation carries a reasoned suppression.
//! Never compiled — input for the analyzer's own test suite.

pub fn documented_invariant(x: Option<u32>) -> u32 {
    // lint:allow(r1-panic): construction-time invariant documented on
    // the caller; a None here is a configuration bug.
    x.expect("validated at construction")
}

pub fn trailing_form(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(r1-panic): checked by caller, doc'd contract
}

pub fn multi_line_reason(x: Option<u32>) -> u32 {
    x
        // lint:allow(r1-panic): the reason may spill across several
        // comment lines; the suppression still binds to the next code
        // line below.
        .unwrap()
}
