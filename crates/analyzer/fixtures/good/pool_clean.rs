// analyzer-fixture: crates/kernels/src/pool_clean.rs
//! A known-good file: pool dispatch done right — guards dropped before
//! fan-out, partitions touching only their own item or closure-local
//! state, results merged through the ordered return path, and all
//! timing/randomness simulated. Never compiled — input for the
//! analyzer's own test suite.

use std::sync::Mutex;

pub fn guard_released_before_dispatch(pool: &Pool, stats: &Mutex<u64>, parts: usize) {
    let held = lock(stats);
    let snapshot = *held;
    drop(held);
    let sums = pool.map_partitions(parts, move |i| i + snapshot as usize);
    let _ = sums;
}

pub fn per_item_mutation(pool: &Pool, replicas: &mut [Replica], horizon: SimTime) {
    let _durs = pool.for_each_mut(replicas, |_, r| {
        if r.alive {
            r.backend.run_until(horizon);
            r.windows += 1;
        }
    });
}

pub fn closure_local_accumulation(pool: &Pool, parts: usize) -> usize {
    pool.map_partitions(parts, |i| {
        let mut acc = 0usize;
        (0..i).for_each(|j| {
            acc += j;
        });
        acc
    })
    .into_iter()
    .sum()
}

pub fn ordered_merge(pool: &Pool, rows: usize) -> Vec<u64> {
    // Each partition returns its own result; the pool's return order is
    // partition order, so the merge is deterministic by construction.
    pool.map_partitions(rows, |i| i as u64 * 2)
}

pub fn simulated_jitter(rng: &mut SplitMix64, now: SimTime) -> SimTime {
    // Timing and randomness both come from the simulation: SimTime for
    // clocks, a seeded SplitMix64 stream for jitter.
    now + SimDuration::from_nanos(rng.next_u64() % 1_000)
}
