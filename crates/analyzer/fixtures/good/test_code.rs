// analyzer-fixture: crates/core/src/test_code.rs
//! A known-good file: panics and hash iteration confined to test code.
//! Never compiled — input for the analyzer's own test suite.

pub fn shipping_code(x: Option<u32>) -> Option<u32> {
    x.map(|v| v + 1)
}

/// Doc examples are comments to the lexer; calls inside them are inert:
///
/// ```
/// let v = maybe().unwrap();
/// pool[0].touch();
/// ```
pub fn documented() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn panics_are_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in m.iter() {
            assert!(k <= v);
        }
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        if false {
            panic!("unreachable in practice");
        }
    }
}
