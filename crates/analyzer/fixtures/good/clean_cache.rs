// analyzer-fixture: crates/kvcache/src/clean_cache.rs
//! A known-good file: ordered structures, total walks, typed errors.
//! Never compiled — input for the analyzer's own test suite.

use std::collections::BTreeMap;

pub struct Cache {
    convs: BTreeMap<u64, Vec<u32>>,
}

pub enum CacheError {
    Unknown(u64),
}

impl Cache {
    /// BTreeMap iteration is ordered by construction: fine under r2.
    pub fn resident(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (&cid, chunks) in &self.convs {
            if !chunks.is_empty() {
                out.push(cid);
            }
        }
        out
    }

    /// Total walk with a typed error: fine under r1.
    pub fn first_chunk(&self, conv: u64) -> Result<u32, CacheError> {
        self.convs
            .get(&conv)
            .and_then(|c| c.get(0))
            .copied()
            .ok_or(CacheError::Unknown(conv))
    }
}
