// analyzer-fixture: crates/core/src/hash_iter.rs
//! Known-bad: hash-ordered iteration in scheduler code.
//! Never compiled — input for the analyzer's own test suite.

use std::collections::{HashMap, HashSet};

pub struct Sched {
    convs: HashMap<u64, u32>,
    live: HashSet<u64>,
}

impl Sched {
    pub fn pick_victim(&self) -> Option<u64> {
        for (&cid, &score) in self.convs.iter() { //~ r2-hash-iter
            if score == 0 {
                return Some(cid);
            }
        }
        None
    }

    pub fn count(&self) -> usize {
        let mut n = 0;
        for cid in &self.live { //~ r2-hash-iter
            n += usize::from(*cid != 0);
        }
        n + self.convs.keys().len() //~ r2-hash-iter
    }
}
