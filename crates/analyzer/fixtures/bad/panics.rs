// analyzer-fixture: crates/core/src/panics.rs
//! Known-bad: every panic family member on a hot path.
//! Tilde-marker comments flag the expected violation lines.
//! Never compiled — input for the analyzer's own test suite.

pub fn hot_path(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); //~ r1-panic
    let b = y.expect("present"); //~ r1-panic
    if a > b {
        panic!("a > b"); //~ r1-panic
    }
    if a == b {
        unreachable!(); //~ r1-panic
    }
    todo!() //~ r1-panic
}

pub fn also_counts() -> u32 {
    unimplemented!() //~ r1-panic
}
