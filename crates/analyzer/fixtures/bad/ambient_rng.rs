// analyzer-fixture: crates/sim/src/ambient_rng.rs
//! Known-bad: ambient (unseeded) randomness in the deterministic
//! simulation. Every stochastic decision must draw from a seeded
//! `SplitMix64` stream so fault schedules replay bit-identically.
//! Never compiled — input for the analyzer's own test suite.

pub fn jittered_arrival(base: u64) -> u64 {
    let mut rng = thread_rng(); //~ r2-ambient-rng
    base + rng.gen_range(0..10)
}

pub fn unseeded_fault_pick(n: usize) -> usize {
    let roll: usize = rand::random(); //~ r2-ambient-rng
    roll % n.max(1)
}

pub fn entropy_seeded_stream() -> SmallRng {
    SmallRng::from_entropy() //~ r2-ambient-rng
}

pub fn os_entropy(buf: &mut [u8]) {
    OsRng.fill_bytes(buf); //~ r2-ambient-rng
}

pub fn seeded_stream_is_fine(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}
