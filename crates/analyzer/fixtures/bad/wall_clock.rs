// analyzer-fixture: crates/core/src/wall_clock.rs
//! Known-bad: wall-clock reads inside the deterministic core. Simulated
//! behavior must be timed by `SimTime`; a real clock leaking into
//! scheduling or eviction decisions breaks bit-identical replay.
//! Never compiled — input for the analyzer's own test suite.

use std::time::{Instant, SystemTime};

pub fn schedule_with_real_clock(queue: &mut Vec<Job>) {
    let t0 = Instant::now(); //~ r2-wall-clock
    queue.retain(|j| j.deadline_nanos > t0.elapsed().as_nanos());
}

pub fn stamp_with_epoch(job: &mut Job) {
    job.stamp = SystemTime::now(); //~ r2-wall-clock
}

pub fn simulated_time_is_fine(now: SimTime, step: SimDuration) -> SimTime {
    // A comment naming Instant::now is not a read of it.
    now + step
}
