// analyzer-fixture: crates/sim/src/raw_spawn.rs
//! Known-bad: raw thread spawns outside the sanctioned layers.
//! Never compiled — input for the analyzer's own test suite.

use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| { //~ r3-raw-spawn
        let _ = 1 + 1;
    });
    std::thread::spawn(compute); //~ r3-raw-spawn
}

fn compute() {}
