// analyzer-fixture: crates/kernels/src/lock_across_pool.rs
//! Known-bad: lock guards still live when work is fanned out to the
//! persistent pool. A partition taking the same lock deadlocks the
//! pool; merely holding it serializes the whole batch.
//! Never compiled — input for the analyzer's own test suite.

use std::sync::{Mutex, RwLock};

pub fn guard_across_map_partitions(pool: &Pool, stats: &Mutex<Vec<u64>>, parts: usize) {
    let held = stats.lock();
    let _ = pool.map_partitions(parts, |i| i); //~ r5-lock-across-pool
    let _ = held;
}

pub fn read_guard_across_step(router: &mut Router<Sim>, cfg: &RwLock<u64>) {
    let snapshot = cfg.read();
    router.step_replicas_to(horizon()); //~ r5-lock-across-pool
    let _ = snapshot;
}

pub fn free_helper_guard_across_matmul(pool: &Pool, counters: &Mutex<u64>) {
    let mut tally = lock(counters);
    *tally += 1;
    matmul_pool(pool, 64, 64, 64); //~ r5-lock-across-pool
}

pub fn dropped_guard_is_fine(pool: &Pool, stats: &Mutex<Vec<u64>>, parts: usize) {
    let held = stats.lock();
    let n = held.len();
    drop(held);
    let _ = pool.map_partitions(parts.min(n), |i| i); // ok: guard dropped first
}

pub fn scoped_guard_is_fine(pool: &Pool, stats: &Mutex<Vec<u64>>, parts: usize) {
    {
        let held = stats.lock();
        let _ = held.len();
    }
    let _ = pool.map_partitions(parts, |i| i); // ok: guard died with its block
}
