// analyzer-fixture: crates/core/src/lock_cycle.rs
//! Known-bad: two functions acquire the same locks in opposite orders.
//! Never compiled — input for the analyzer's own test suite.

pub fn transfer(a: &Account, b: &Account) {
    let ga = a.inner.lock();
    let gb = b.inner.lock();
    drop((ga, gb));
}

pub fn audit(a: &Account, b: &Account) {
    let gb = b.inner.lock();
    let ga = a.inner.lock(); //~ r3-lock-order
    drop((ga, gb));
}
