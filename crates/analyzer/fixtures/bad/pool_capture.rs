// analyzer-fixture: crates/kernels/src/pool_capture.rs
//! Known-bad: pool closures capturing shared mutable state. Partitions
//! must stay independent and merge through the ordered return path —
//! racing on a capture destroys bit-identical replay.
//! Never compiled — input for the analyzer's own test suite.

use std::cell::RefCell;

pub fn mutates_captured_accumulator(pool: &Pool, parts: usize) {
    let mut total = 0u64;
    let _ = pool.map_partitions(parts, |i| {
        total += i as u64; //~ r5-pool-capture
        i
    });
    let _ = total;
}

pub fn mut_borrows_captured_state(pool: &Pool, acc: &mut Scratch, parts: usize) {
    let _ = pool.map_partitions(parts, |i| {
        refill(&mut acc); //~ r5-pool-capture
        i
    });
}

pub fn captures_interior_mutability(pool: &Pool, parts: usize) {
    let scratch: RefCell<Vec<u64>> = RefCell::new(Vec::new());
    let _ = pool.map_partitions(parts, |i| {
        scratch.borrow_mut().push(i as u64); //~ r5-pool-capture
        i
    });
}

pub fn assigns_through_captured_field(pool: &Pool, state: &mut State, parts: usize) {
    let _ = pool.map_partitions(parts, |i| {
        state.counters[i] = i as u64; //~ r5-pool-capture
        i
    });
}

pub fn partition_local_state_is_fine(pool: &Pool, parts: usize) {
    let _ = pool.map_partitions(parts, |i| {
        let mut local = 0u64;
        (0..i).for_each(|j| {
            local += j as u64; // ok: owned by this partition's closure
        });
        local as usize
    });
}

pub fn param_mutation_is_fine(pool: &Pool, replicas: &mut [Replica], horizon: u64) {
    let _ = pool.for_each_mut(replicas, |_, r| {
        r.clock = horizon; // ok: `r` is the partition's own item
        r.ticks += 1; // ok: same
    });
}

pub fn immutable_capture_is_fine(pool: &Pool, bias: u64, parts: usize) {
    let _ = pool.map_partitions(parts, move |i| i + bias as usize); // ok: read-only
}
