// analyzer-fixture: crates/kernels/src/adhoc_scope.rs
//! Known-bad: ad-hoc scoped fork/join outside the sanctioned layers.
//! Never compiled — input for the analyzer's own test suite.

use std::thread;

pub fn fan_out(rows: &mut [f32]) {
    thread::scope(|s| { //~ r3-adhoc-scope
        for chunk in rows.chunks_mut(8) {
            s.spawn(move || chunk.iter_mut().for_each(|x| *x += 1.0));
        }
    });
    std::thread::scope(|_s| {}); //~ r3-adhoc-scope
}
