// analyzer-fixture: crates/kvcache/src/store.rs
//! Known-bad: unchecked indexing on the cache hot-path files.
//! Never compiled — input for the analyzer's own test suite.

pub fn fetch(hist: &[u32], chunks: &mut Vec<Vec<u32>>, i: usize) -> u32 {
    let x = hist[i]; //~ r1-index
    chunks[0].push(x); //~ r1-index
    let slice = &hist[1..3]; //~ r1-index
    slice.len() as u32
}

pub fn checked_is_fine(hist: &[u32], i: usize) -> Option<u32> {
    hist.get(i).copied()
}
