// analyzer-fixture: crates/core/src/bad_suppression.rs
//! Known-bad: malformed suppressions are themselves violations, and a
//! bare suppression does not silence the underlying finding.
//! Never compiled — input for the analyzer's own test suite.

pub fn bare(x: Option<u32>) -> u32 {
    // lint:allow(r1-panic) //~ r4-suppression
    x.unwrap() //~ r1-panic
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // lint:allow(no-such-rule): reason given but rule is bogus //~ r4-suppression
    x.unwrap() //~ r1-panic
}

pub fn empty_reason(x: Option<u32>) -> u32 {
    // lint:allow(r1-panic):
    //~^ r4-suppression
    x.unwrap() //~ r1-panic
}

pub fn stale_waiver(x: u32) -> u32 {
    // lint:allow(r1-panic): the unwrap this once covered was refactored away //~ r4-suppression
    x + 1
}
