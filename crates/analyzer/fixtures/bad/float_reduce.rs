// analyzer-fixture: crates/kernels/src/float_reduce.rs
//! Known-bad: unordered float reduction inside a parallel closure.
//! Never compiled — input for the analyzer's own test suite.

pub fn partition_norms(pool: &Pool, xs: &[f32]) -> Vec<f32> {
    pool.map_partitions(|chunk| {
        chunk.iter().map(|x| x * x).sum::<f32>() //~ r2-float-reduce
    })
}

pub fn spawned_total(scope: &Scope, xs: &[f64]) {
    scope.spawn(move || {
        let _t = xs.iter().sum::<f64>(); //~ r2-float-reduce
    });
}

pub fn sequential_is_fine(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>()
}
