//! Report rendering: human-readable text and machine-readable JSON.

use serde_json::{Map, Value};

use crate::rules::Report;

/// Renders the report for terminals: one `path:line: [rule] msg` per
/// violation plus a summary line.
#[must_use]
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{}:{}: [{}] {}\n", v.path, v.line, v.rule, v.msg));
    }
    out.push_str(&format!(
        "pensieve-analyzer: {} file(s) scanned, {} violation(s), {} suppressed\n",
        report.files_scanned,
        report.violations.len(),
        report.suppressed
    ));
    out
}

/// Renders the report as a JSON document:
///
/// ```json
/// {
///   "files_scanned": 42,
///   "suppressed": 3,
///   "violations": [ {"rule": "...", "path": "...", "line": 7, "msg": "..."} ]
/// }
/// ```
#[must_use]
pub fn to_json(report: &Report) -> String {
    let mut root = Map::new();
    root.insert(
        "files_scanned".to_string(),
        Value::Number(report.files_scanned as f64),
    );
    root.insert(
        "suppressed".to_string(),
        Value::Number(report.suppressed as f64),
    );
    let violations: Vec<Value> = report
        .violations
        .iter()
        .map(|v| {
            let mut m = Map::new();
            m.insert("rule".to_string(), Value::String(v.rule.to_string()));
            m.insert("path".to_string(), Value::String(v.path.clone()));
            m.insert("line".to_string(), Value::Number(f64::from(v.line)));
            m.insert("msg".to_string(), Value::String(v.msg.clone()));
            Value::Object(m)
        })
        .collect();
    root.insert("violations".to_string(), Value::Array(violations));
    // The shim's serializer is infallible for a hand-built `Value` tree.
    serde_json::to_string_pretty(&Value::Object(root)).unwrap_or_default()
}

/// Renders the suppression-debt report — every live `lint:allow` in the
/// scanned tree with its rule, location, reason, and how many findings
/// it silenced. CI archives this as an artifact so the waiver inventory
/// is reviewable per-PR instead of buried in source:
///
/// ```json
/// {
///   "total": 21,
///   "by_rule": { "r1-panic": 18, "r2-wall-clock": 2 },
///   "suppressions": [
///     {"rule": "...", "path": "...", "line": 7, "reason": "...",
///      "file_level": false, "fired": 1}
///   ]
/// }
/// ```
#[must_use]
pub fn suppression_report(report: &Report) -> String {
    let mut by_rule: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for s in &report.suppressions {
        *by_rule.entry(s.rule.as_str()).or_insert(0) += 1;
    }
    let mut root = Map::new();
    root.insert(
        "total".to_string(),
        Value::Number(report.suppressions.len() as f64),
    );
    let mut rules = Map::new();
    for (rule, n) in by_rule {
        rules.insert(rule.to_string(), Value::Number(n as f64));
    }
    root.insert("by_rule".to_string(), Value::Object(rules));
    let entries: Vec<Value> = report
        .suppressions
        .iter()
        .map(|s| {
            let mut m = Map::new();
            m.insert("rule".to_string(), Value::String(s.rule.clone()));
            m.insert("path".to_string(), Value::String(s.path.clone()));
            m.insert("line".to_string(), Value::Number(f64::from(s.line)));
            m.insert("reason".to_string(), Value::String(s.reason.clone()));
            m.insert("file_level".to_string(), Value::Bool(s.file_level));
            m.insert("fired".to_string(), Value::Number(f64::from(s.fired)));
            Value::Object(m)
        })
        .collect();
    root.insert("suppressions".to_string(), Value::Array(entries));
    serde_json::to_string_pretty(&Value::Object(root)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Analyzer;

    #[test]
    fn json_and_text_cover_violations() {
        let mut a = Analyzer::new();
        a.analyze_file(
            "crates/core/src/engine.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let report = a.finish();
        let text = render_text(&report);
        assert!(text.contains("crates/core/src/engine.rs:1: [r1-panic]"));
        let json = to_json(&report);
        assert!(json.contains("\"rule\": \"r1-panic\""));
        assert!(json.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn suppression_report_lists_live_waivers() {
        let mut a = Analyzer::new();
        a.analyze_file(
            "crates/core/src/engine.rs",
            "fn f(x: Option<u32>) -> u32 {\n\
             // lint:allow(r1-panic): invariant proven by caller\n\
             x.unwrap()\n\
             }\n",
        );
        let report = a.finish();
        assert!(report.violations.is_empty());
        let debt = suppression_report(&report);
        assert!(debt.contains("\"total\": 1"));
        assert!(debt.contains("\"r1-panic\": 1"));
        assert!(debt.contains("invariant proven by caller"));
        assert!(debt.contains("\"fired\": 1"));
    }
}
