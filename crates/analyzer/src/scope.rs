//! Scope-aware item-tree pass over the token stream.
//!
//! The flat lexer rules (DESIGN.md §8) can see *what* a token is but not
//! *where it lives*: whether a `MutexGuard` bound three statements ago is
//! still alive when a closure is handed to the worker pool, or whether an
//! identifier mutated inside that closure was declared by the closure or
//! captured from the enclosing function. This module adds exactly the
//! structure those questions need — and nothing more:
//!
//! - a tree of **scopes** (function bodies, plain blocks, closures) built
//!   from brace nesting, with expression-bodied closures tracked to their
//!   terminating `,`/`)`/`;`,
//! - per-scope **binder sets**: closure parameters and `let`/`for`-bound
//!   names declared directly in the scope, so capture analysis can ask
//!   "is this name local below the closure boundary?",
//! - **lock-guard liveness intervals**: `let g = x.lock()` (and the
//!   workspace's poison-riding `lock(&x)` helper) is live from its
//!   binding to the end of its enclosing scope or an explicit `drop(g)`.
//!
//! It is still not a parser: construction is a single forward pass over
//! code tokens, is total (malformed or unbalanced streams produce a
//! best-effort tree, never a panic — the round-trip proptest pins this),
//! and costs O(tokens). The r5 concurrency rules in [`crate::rules`] are
//! the consumers; see DESIGN.md §13 for the architecture discussion.

use crate::lexer::{Tok, TokKind};

/// What kind of region a [`Scope`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// A `fn` body (free function, method, or nested item).
    Fn,
    /// A plain braced block: `if`/`loop`/`match` bodies, bare blocks,
    /// struct-literal braces — anything that is not a `fn` body or a
    /// closure.
    Block,
    /// A closure body, braced (`|x| { ... }`) or expression-bodied
    /// (`|x| x + 1`).
    Closure,
}

/// One node of the scope tree. Spans are positions into the *code*
/// token sequence (comments removed); a scope contains position `p` when
/// `start < p < end` for braced scopes (the delimiters themselves are
/// the bounds) and `start <= p < end` for expression-bodied closures.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Parent scope id; the root is its own parent.
    pub parent: usize,
    /// Region kind.
    pub kind: ScopeKind,
    /// Code position of the opening delimiter (or first body token for
    /// an expression-bodied closure).
    pub start: usize,
    /// Code position one past the last contained token (the closing
    /// delimiter's position for braced scopes).
    pub end: usize,
    /// 1-based line the scope opens on.
    pub line: u32,
    /// Closure parameters ([`ScopeKind::Closure`] only).
    pub params: Vec<String>,
    /// Names bound by `let`/`for` directly in this scope (not in
    /// children). Pattern binders are over-approximated: every
    /// identifier in the pattern counts, including enum/struct names.
    pub locals: Vec<String>,
}

/// The scope tree for one file, plus the code-token view it indexes.
#[derive(Debug)]
pub struct ScopeTree {
    scopes: Vec<Scope>,
    /// Indices of non-comment tokens into the original token slice.
    code: Vec<usize>,
}

/// Tokens that may directly precede a `|`/`||` that *starts a closure*
/// (as opposed to a binary-or between operands).
fn closure_can_follow(prev: Option<&Tok>) -> bool {
    match prev {
        None => true,
        Some(t) => match t.kind {
            TokKind::Punct => matches!(
                t.text.as_str(),
                "(" | "," | "=" | "{" | "}" | ";" | ":" | "=>" | "[" | "&" | ".." | "..="
            ),
            TokKind::Ident => matches!(t.text.as_str(), "return" | "move" | "else" | "in"),
            _ => false,
        },
    }
}

impl ScopeTree {
    /// Builds the tree with a single forward pass. Total: any token
    /// stream — including unbalanced braces — yields a tree whose spans
    /// are clamped to the stream.
    #[must_use]
    pub fn build(toks: &[Tok]) -> ScopeTree {
        Builder::run(toks)
    }

    /// Every scope; index 0 is the root.
    #[must_use]
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// The non-comment token indices this tree was built over (positions
    /// used by [`Scope::start`]/[`Scope::end`] index into this).
    #[must_use]
    pub fn code(&self) -> &[usize] {
        &self.code
    }

    /// Id of the innermost scope containing code position `pos`.
    #[must_use]
    pub fn innermost_at(&self, pos: usize) -> usize {
        // Linear over scopes: trees are small (one per file) and the
        // rules batch their queries.
        let mut best = 0usize;
        for (id, s) in self.scopes.iter().enumerate().skip(1) {
            let contains = match s.kind {
                ScopeKind::Closure if s.start <= pos && pos < s.end => true,
                _ => s.start < pos && pos < s.end,
            };
            if contains && s.start >= self.scopes[best].start && s.end <= self.scopes[best].end {
                best = id;
            }
        }
        best
    }

    /// True when `name` is declared (as a param or `let`/`for` binder)
    /// in any scope from `from` upward through `boundary` inclusive —
    /// i.e. the name is *local below the boundary* and therefore not a
    /// capture from outside it.
    #[must_use]
    pub fn declared_within(&self, from: usize, boundary: usize, name: &str) -> bool {
        let mut cur = from;
        loop {
            let s = &self.scopes[cur];
            if s.params.iter().any(|p| p == name) || s.locals.iter().any(|l| l == name) {
                return true;
            }
            if cur == boundary || cur == s.parent {
                return false;
            }
            cur = s.parent;
        }
    }

    /// Code position where the scope enclosing `pos` ends (used for
    /// guard liveness: a `let`-bound guard lives to its block's end).
    #[must_use]
    pub fn enclosing_end(&self, pos: usize) -> usize {
        self.scopes[self.innermost_at(pos)].end
    }
}

/// An open frame during construction.
enum Frame {
    /// A braced scope (root, fn body, block, braced closure).
    Scope(usize),
    /// `(` — tracked so expression-closures know their nesting depth.
    Paren,
    /// `[` — same.
    Bracket,
    /// An expression-bodied closure's scope, closed by `,`/`)`/`]`/`;`/
    /// `}` at its own depth.
    ExprClosure(usize),
}

struct Builder<'a> {
    toks: &'a [Tok],
    code: Vec<usize>,
    scopes: Vec<Scope>,
    stack: Vec<Frame>,
}

impl<'a> Builder<'a> {
    fn run(toks: &'a [Tok]) -> ScopeTree {
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| {
                toks[i].kind != TokKind::LineComment && toks[i].kind != TokKind::BlockComment
            })
            .collect();
        let root = Scope {
            parent: 0,
            kind: ScopeKind::Root,
            start: 0,
            end: code.len(),
            line: 1,
            params: Vec::new(),
            locals: Vec::new(),
        };
        let mut b = Builder {
            toks,
            code,
            scopes: vec![root],
            stack: vec![Frame::Scope(0)],
        };
        b.walk();
        let code = std::mem::take(&mut b.code);
        let mut scopes = std::mem::take(&mut b.scopes);
        // Clamp: anything still open at EOF ends at the stream's end.
        for s in &mut scopes {
            s.end = s.end.min(code.len());
        }
        ScopeTree { scopes, code }
    }

    fn tok(&self, pos: usize) -> &Tok {
        &self.toks[self.code[pos]]
    }

    /// Id of the innermost *scope* frame currently open.
    fn current_scope(&self) -> usize {
        self.stack
            .iter()
            .rev()
            .find_map(|f| match f {
                Frame::Scope(id) | Frame::ExprClosure(id) => Some(*id),
                _ => None,
            })
            .unwrap_or(0)
    }

    fn open_scope(&mut self, kind: ScopeKind, start: usize, params: Vec<String>) -> usize {
        let id = self.scopes.len();
        self.scopes.push(Scope {
            parent: self.current_scope(),
            kind,
            start,
            end: usize::MAX, // patched on close / clamped at EOF
            line: self.tok(start.min(self.code.len().saturating_sub(1))).line,
            params,
            locals: Vec::new(),
        });
        id
    }

    /// Closes every expression-closure sitting on top of the stack (a
    /// terminator at their depth ends them all: `f(|| g(|| h), ...)`).
    fn close_expr_closures(&mut self, end: usize) {
        while let Some(Frame::ExprClosure(id)) = self.stack.last() {
            self.scopes[*id].end = end;
            self.stack.pop();
        }
    }

    /// Collects binder identifiers from a pattern token run starting at
    /// `pos` and stopping at any of `stops` (at delimiter depth 0) or
    /// after `limit` tokens. Every identifier except `mut`/`ref`/`_` and
    /// path segments after `::` counts — deliberate over-approximation.
    fn pattern_binders(&self, mut pos: usize, stops: &[&str], limit: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        // Position whose ident was pushed last, and whether the next
        // ident continues a `::` path (not a fresh binder).
        let mut last_push: Option<usize> = None;
        let mut in_path = false;
        let end = (pos + limit).min(self.code.len());
        while pos < end {
            let t = self.tok(pos);
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[" | "{") => depth += 1,
                (TokKind::Punct, ")" | "]" | "}") => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                (TokKind::Punct, s) if depth == 0 && stops.contains(&s) => break,
                (TokKind::Punct, "::") => {
                    // A path like `Mode::Fast` in a pattern: neither the
                    // head we may have pushed nor the continuation is a
                    // fresh binder.
                    if last_push == pos.checked_sub(1) {
                        out.pop();
                        last_push = None;
                    }
                    in_path = true;
                }
                (TokKind::Ident, "mut" | "ref" | "_") => {}
                (TokKind::Ident, name) => {
                    if in_path {
                        in_path = false;
                    } else {
                        out.push(name.to_string());
                        last_push = Some(pos);
                    }
                }
                _ => {}
            }
            pos += 1;
        }
        out
    }

    /// Parses closure params between the pipes; returns `(params,
    /// position after the closing pipe)`, or `None` when the pipe run
    /// never closes (treated as a plain operator).
    fn closure_params(&self, open: usize) -> Option<(Vec<String>, usize)> {
        if self.tok(open).text == "||" {
            return Some((Vec::new(), open + 1));
        }
        let mut depth = 0i32;
        let mut pos = open + 1;
        let limit = (open + 64).min(self.code.len());
        while pos < limit {
            let t = self.tok(pos);
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[") => depth += 1,
                (TokKind::Punct, ")" | "]") => depth -= 1,
                (TokKind::Punct, "|") if depth == 0 => {
                    // Param names: binders per comma segment, cut at the
                    // `:` that starts a type annotation.
                    let mut params = Vec::new();
                    let mut seg = open + 1;
                    let mut d = 0i32;
                    let mut annotated = false;
                    for p in open + 1..=pos {
                        let pt = self.tok(p);
                        match (pt.kind, pt.text.as_str()) {
                            (TokKind::Punct, "(" | "[") => d += 1,
                            (TokKind::Punct, ")" | "]") => d -= 1,
                            (TokKind::Punct, ":") if d == 0 => annotated = true,
                            (TokKind::Punct, "," | "|") if d == 0 => {
                                let stop = if annotated { ":" } else { "," };
                                params.extend(self.pattern_binders(seg, &[stop, "|"], p - seg + 1));
                                seg = p + 1;
                                annotated = false;
                            }
                            _ => {}
                        }
                    }
                    return Some((params, pos + 1));
                }
                (TokKind::Punct, ";" | "{" | "}") => return None,
                _ => {}
            }
            pos += 1;
        }
        None
    }

    fn walk(&mut self) {
        let n = self.code.len();
        let mut pos = 0usize;
        // `fn` seen, body brace not yet opened.
        let mut pending_fn = false;
        // Closure params parsed, body not yet started.
        let mut pending_closure: Option<Vec<String>> = None;
        while pos < n {
            let t = self.tok(pos);
            // A parsed closure header binds to the next body token: `{`
            // opens a braced closure below; `->` defers to the return
            // type's brace; anything else starts an expression body.
            if let Some(params) = pending_closure.take() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "{") => {
                        // Fall through: the brace handler below opens the
                        // scope as a closure.
                        pending_closure = Some(params);
                    }
                    (TokKind::Punct, "->") => {
                        // Skip the return type: re-arm and let the `{`
                        // that follows claim the closure.
                        pending_closure = Some(params);
                        pos += 1;
                        continue;
                    }
                    _ => {
                        let id = self.open_scope(ScopeKind::Closure, pos, params);
                        self.stack.push(Frame::ExprClosure(id));
                        // Do not advance: the current token is the first
                        // body token and may itself open structure.
                    }
                }
            }
            let t = self.tok(pos);
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => {
                    let kind = if let Some(params) = pending_closure.take() {
                        let id = self.open_scope(ScopeKind::Closure, pos, params);
                        self.stack.push(Frame::Scope(id));
                        pos += 1;
                        continue;
                    } else if pending_fn {
                        pending_fn = false;
                        ScopeKind::Fn
                    } else {
                        ScopeKind::Block
                    };
                    let id = self.open_scope(kind, pos, Vec::new());
                    self.stack.push(Frame::Scope(id));
                }
                (TokKind::Punct, "}") => {
                    self.close_expr_closures(pos);
                    // Pop through any unbalanced paren frames to the
                    // nearest braced scope; never pop the root.
                    while let Some(f) = self.stack.last() {
                        match f {
                            Frame::Scope(0) => break,
                            Frame::Scope(id) => {
                                self.scopes[*id].end = pos;
                                self.stack.pop();
                                break;
                            }
                            _ => {
                                self.stack.pop();
                            }
                        }
                    }
                }
                (TokKind::Punct, "(") => self.stack.push(Frame::Paren),
                (TokKind::Punct, "[") => self.stack.push(Frame::Bracket),
                (TokKind::Punct, ")" | "]") => {
                    self.close_expr_closures(pos);
                    if matches!(self.stack.last(), Some(Frame::Paren | Frame::Bracket)) {
                        self.stack.pop();
                    }
                }
                (TokKind::Punct, ",") => self.close_expr_closures(pos),
                (TokKind::Punct, ";") => {
                    // A trait method declaration ends without a body.
                    pending_fn = false;
                    self.close_expr_closures(pos);
                }
                (TokKind::Punct, "|" | "||") => {
                    let prev = pos.checked_sub(1).map(|p| self.tok(p));
                    if closure_can_follow(prev) {
                        if let Some((params, after)) = self.closure_params(pos) {
                            pending_closure = Some(params);
                            pos = after;
                            continue;
                        }
                    }
                }
                (TokKind::Ident, "fn") => pending_fn = true,
                (TokKind::Ident, "let") => {
                    let binders = self.pattern_binders(pos + 1, &["=", ";", ":"], 24);
                    let cur = self.current_scope();
                    self.scopes[cur].locals.extend(binders);
                }
                (TokKind::Ident, "for") => {
                    // `for <pat> in ...` — attach the binders to the
                    // current scope (over-approximate: they only live in
                    // the loop body, which is a child).
                    let binders = self.pattern_binders(pos + 1, &["in", "{", ";"], 16);
                    let cur = self.current_scope();
                    self.scopes[cur].locals.extend(binders);
                }
                _ => {}
            }
            pos += 1;
        }
        self.close_expr_closures(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        ScopeTree::build(&lex(src).expect("test source lexes"))
    }

    #[test]
    fn fn_and_block_nesting() {
        let t = tree("fn f() { if x { g(); } }");
        let kinds: Vec<ScopeKind> = t.scopes().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![ScopeKind::Root, ScopeKind::Fn, ScopeKind::Block]
        );
        assert_eq!(t.scopes()[2].parent, 1);
    }

    #[test]
    fn braced_closure_params() {
        let t = tree("fn f(p: &P) { p.map(|x: u32, (a, b)| { x + a + b }); }");
        let c = t
            .scopes()
            .iter()
            .find(|s| s.kind == ScopeKind::Closure)
            .expect("closure scope");
        assert_eq!(c.params, vec!["x", "a", "b"]);
    }

    #[test]
    fn expr_closure_ends_at_comma() {
        let t = tree("fn f(p: &P) { p.map_partitions(4, |i| i + 1, 9); }");
        let c = t
            .scopes()
            .iter()
            .find(|s| s.kind == ScopeKind::Closure)
            .expect("closure scope");
        assert_eq!(c.params, vec!["i"]);
        // The closure body is `i + 1` — three tokens.
        assert_eq!(c.end - c.start, 3);
    }

    #[test]
    fn binary_or_is_not_a_closure() {
        let t = tree("fn f(a: u32, b: u32) -> u32 { a | b }");
        assert!(t.scopes().iter().all(|s| s.kind != ScopeKind::Closure));
        let t = tree("fn f(a: bool, b: bool) -> bool { a || b }");
        assert!(t.scopes().iter().all(|s| s.kind != ScopeKind::Closure));
    }

    #[test]
    fn let_and_for_binders_land_in_scope() {
        let t = tree("fn f() { let (x, mut y) = p(); for it in xs { } }");
        let f = &t.scopes()[1];
        assert!(f.locals.contains(&"x".to_string()));
        assert!(f.locals.contains(&"y".to_string()));
        assert!(f.locals.contains(&"it".to_string()));
        assert!(!f.locals.contains(&"mut".to_string()));
    }

    #[test]
    fn path_segments_are_not_binders() {
        let t = tree("fn f() { let Mode::Fast = m; }");
        assert!(!t.scopes()[1].locals.contains(&"Mode".to_string()));
        assert!(!t.scopes()[1].locals.contains(&"Fast".to_string()));
    }

    #[test]
    fn declared_within_walks_to_boundary() {
        let t = tree("fn f(p: &P) { let outer = 1; p.map(|x| { let inner = x; inner + 1 }); }");
        let closure = t
            .scopes()
            .iter()
            .position(|s| s.kind == ScopeKind::Closure)
            .expect("closure");
        // `inner` is declared below the closure boundary, `outer` above.
        let inner_scope = t.scopes().len() - 1;
        assert!(t.declared_within(inner_scope, closure, "inner"));
        assert!(t.declared_within(inner_scope, closure, "x"));
        assert!(!t.declared_within(inner_scope, closure, "outer"));
    }

    #[test]
    fn unbalanced_streams_are_total() {
        for src in ["}}}", "fn f() {", "fn f() { ) ] }", "|x|", "{ | }", "( , )"] {
            let t = tree(src);
            for s in t.scopes() {
                assert!(s.end <= t.code().len(), "clamped: {src}");
            }
        }
    }

    #[test]
    fn innermost_prefers_deepest() {
        let src = "fn f() { { g(); } }";
        let t = tree(src);
        // Position of `g` in the code stream.
        let toks = lex(src).unwrap();
        let g = t
            .code()
            .iter()
            .position(|&i| toks[i].text == "g")
            .expect("g present");
        let id = t.innermost_at(g);
        assert_eq!(t.scopes()[id].kind, ScopeKind::Block);
    }
}
