//! CLI for `pensieve-analyzer`.
//!
//! ```text
//! cargo run -p pensieve-analyzer -- [--deny] [--json <path|->] [--root <dir>]
//!     [--report json[=<path>]] [--max-suppressions <n>]
//! ```
//!
//! Walks every `.rs` file under `--root` (default: the workspace root,
//! i.e. the current directory), applies the rules in
//! [`pensieve_analyzer::rules`], and prints a text report. `--deny`
//! exits non-zero when any violation survives suppression — this is the
//! mode CI runs. `--json` additionally writes the machine-readable
//! report to a file, or to stdout when the argument is `-` (the text
//! report then moves to stderr so the JSON pipes cleanly).
//!
//! `--report json` emits the suppression-debt document (every live
//! `lint:allow` with rule, file, line, and reason) to stdout, or to a
//! file with `--report json=<path>` — CI archives it as an artifact so
//! the waiver inventory is reviewed per-PR. `--max-suppressions <n>` is
//! the debt budget: the run fails when the tree carries more than `n`
//! suppressions, so new waivers must either replace old ones or raise
//! the budget in a visible diff.
//!
//! The walker skips `target/`, `.git/`, `results/`, and the analyzer's
//! own `fixtures/` corpus (the fixtures are deliberately violating
//! files; they are checked by their own test suite and by pointing
//! `--root` at them explicitly).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pensieve_analyzer::{render_text, suppression_report, to_json, Analyzer};

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "fixtures", "node_modules"];

struct Cli {
    deny: bool,
    json: Option<String>,
    /// Suppression-debt report destination: `None` = off, `Some(None)` =
    /// stdout, `Some(Some(path))` = file.
    report: Option<Option<String>>,
    max_suppressions: Option<usize>,
    root: PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        deny: false,
        json: None,
        report: None,
        max_suppressions: None,
        root: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => cli.deny = true,
            "--json" => {
                cli.json = Some(args.next().ok_or("--json requires a path (or `-`)")?);
            }
            "--report" => {
                let spec = args
                    .next()
                    .ok_or("--report requires a format: `json` or `json=<path>`")?;
                cli.report = match spec.as_str() {
                    "json" => Some(None),
                    other => match other.strip_prefix("json=") {
                        Some(path) if !path.is_empty() => Some(Some(path.to_string())),
                        _ => {
                            return Err(format!(
                                "unsupported --report format `{spec}` (expected `json` or \
                                 `json=<path>`)"
                            ));
                        }
                    },
                };
            }
            "--max-suppressions" => {
                let n = args
                    .next()
                    .ok_or("--max-suppressions requires a number")?
                    .parse::<usize>()
                    .map_err(|e| format!("--max-suppressions: {e}"))?;
                cli.max_suppressions = Some(n);
            }
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root requires a directory")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pensieve-analyzer [--deny] [--json <path|->] [--root <dir>] \
                     [--report json[=<path>]] [--max-suppressions <n>]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(cli)
}

/// Collects every `.rs` file under `root`, depth-first, in sorted order
/// so reports are stable across filesystems.
fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    if let Err(e) = collect_rs_files(&cli.root, &mut files) {
        eprintln!("pensieve-analyzer: cannot walk {}: {e}", cli.root.display());
        return ExitCode::from(2);
    }

    let mut analyzer = Analyzer::new();
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pensieve-analyzer: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        // Report paths relative to the walk root's prefix, normalized.
        let rel = path
            .strip_prefix(&cli.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        analyzer.analyze_file(&rel, &src);
    }

    let report = analyzer.finish();
    // With `--json -` or `--report json` on stdout, stdout belongs to
    // the JSON document alone (so it can be piped); the human-readable
    // report moves to stderr.
    let stdout_is_json = cli.json.as_deref() == Some("-") || cli.report == Some(None);
    if stdout_is_json {
        eprint!("{}", render_text(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if let Some(dest) = &cli.json {
        let doc = to_json(&report);
        if dest == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(dest, doc) {
            eprintln!("pensieve-analyzer: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(dest) = &cli.report {
        let doc = suppression_report(&report);
        match dest {
            None => println!("{doc}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("pensieve-analyzer: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if let Some(budget) = cli.max_suppressions {
        let live = report.suppressions.len();
        if live > budget {
            eprintln!(
                "pensieve-analyzer: suppression debt over budget: {live} live \
                 `lint:allow` waivers, budget is {budget} — delete a stale waiver \
                 or raise the budget in a reviewed diff"
            );
            return ExitCode::FAILURE;
        }
    }
    if cli.deny && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
