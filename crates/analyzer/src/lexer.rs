//! A hand-rolled Rust lexer: the analyzer's only view of source code.
//!
//! The workspace vendors every external dependency as a shim, so the
//! analyzer cannot lean on `syn`/`proc-macro2`; instead it tokenizes
//! Rust source directly. The lexer is deliberately *lossless where it
//! matters for linting*: comments are kept as tokens (the suppression
//! grammar lives in them, and doc-test code inside `///` examples must
//! *not* trip rules), strings and char literals are opaque single tokens
//! (an `"unwrap()"` inside a string is not a call), and every token
//! carries its 1-based source line for reporting.
//!
//! It is *not* a parser: rules downstream work on the token stream with
//! small amounts of context (brace depth, attribute lookahead). That is
//! exactly the level of fidelity the project rules need, and it keeps
//! the tool dependency-free and fast.

use std::fmt;

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `self`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Integer or float literal, including suffixes (`1e-5`, `0xFF_u8`).
    Number,
    /// String literal: plain, raw (`r#"..."#`), byte, or byte-raw.
    Str,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// `//`-style comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */` comment, with nesting (includes `/** ... */`).
    BlockComment,
    /// Punctuation or operator, maximal-munch (`::`, `..=`, `<<=`, `+`).
    Punct,
}

/// One token: its kind, verbatim source text, and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Failure to tokenize a file (unterminated string/comment/char).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the offending token started.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the list in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "..", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one char, tracking the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// True if the upcoming chars equal `s`.
    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(k, want)| self.peek(k) == Some(want))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src` into a flat stream (comments included).
///
/// # Errors
///
/// Returns [`LexError`] on an unterminated string, char literal, or
/// block comment; the analyzer surfaces this as a per-file failure.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start_line = cur.line;
        if cur.starts_with("//") {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.push(Tok {
                kind: TokKind::LineComment,
                text,
                line: start_line,
            });
            continue;
        }
        if cur.starts_with("/*") {
            out.push(lex_block_comment(&mut cur)?);
            continue;
        }
        if is_ident_start(c) {
            out.push(lex_ident_or_prefixed_literal(&mut cur)?);
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur));
            continue;
        }
        if c == '"' {
            out.push(lex_string(&mut cur, String::new(), 0)?);
            continue;
        }
        if c == '\'' {
            out.push(lex_char_or_lifetime(&mut cur)?);
            continue;
        }
        // Punctuation, maximal munch.
        let mut matched = None;
        for op in MULTI_PUNCT {
            if cur.starts_with(op) {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            out.push(Tok {
                kind: TokKind::Punct,
                text: op.to_string(),
                line: start_line,
            });
        } else {
            cur.bump();
            out.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line: start_line,
            });
        }
    }
    Ok(out)
}

/// Lexes a `/* ... */` comment with nesting.
fn lex_block_comment(cur: &mut Cursor) -> Result<Tok, LexError> {
    let start_line = cur.line;
    let mut text = String::new();
    let mut depth = 0usize;
    loop {
        if cur.starts_with("/*") {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if cur.starts_with("*/") {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            match cur.bump() {
                Some(c) => text.push(c),
                None => {
                    return Err(LexError {
                        line: start_line,
                        msg: "unterminated block comment".to_string(),
                    })
                }
            }
        }
    }
    Ok(Tok {
        kind: TokKind::BlockComment,
        text,
        line: start_line,
    })
}

/// Lexes an identifier, or a string/char literal introduced by the
/// `r`/`b`/`br` prefixes (`r"..."`, `r#"..."#`, `b"..."`, `b'x'`).
fn lex_ident_or_prefixed_literal(cur: &mut Cursor) -> Result<Tok, LexError> {
    let start_line = cur.line;
    let mut ident = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            ident.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    let raw_capable = ident == "r" || ident == "br";
    let bytes_capable = ident == "b" || ident == "br";
    // Raw string: prefix + zero or more '#' + '"'.
    if raw_capable {
        let mut hashes = 0usize;
        while cur.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek(hashes) == Some('"') {
            for _ in 0..hashes {
                ident.push('#');
                cur.bump();
            }
            return lex_string(cur, ident, hashes);
        }
    }
    if bytes_capable && cur.peek(0) == Some('"') {
        return lex_string(cur, ident, 0);
    }
    if ident == "b" && cur.peek(0) == Some('\'') {
        let mut t = lex_char_or_lifetime(cur)?;
        t.text.insert(0, 'b');
        t.line = start_line;
        return Ok(t);
    }
    Ok(Tok {
        kind: TokKind::Ident,
        text: ident,
        line: start_line,
    })
}

/// Lexes the quoted part of a string; `prefix` holds any `r#`/`b` intro
/// already consumed, `hashes` the number of `#` a raw string closes with.
fn lex_string(cur: &mut Cursor, prefix: String, hashes: usize) -> Result<Tok, LexError> {
    let start_line = cur.line;
    let raw = prefix.contains('r');
    let mut text = prefix;
    text.push('"');
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => {
                return Err(LexError {
                    line: start_line,
                    msg: "unterminated string literal".to_string(),
                })
            }
            Some('\\') if !raw => {
                text.push('\\');
                cur.bump();
                match cur.bump() {
                    Some(e) => text.push(e),
                    None => {
                        return Err(LexError {
                            line: start_line,
                            msg: "unterminated escape in string".to_string(),
                        })
                    }
                }
            }
            Some('"') => {
                // A raw string only closes when followed by its hashes.
                let closes = !raw || (1..=hashes).all(|k| cur.peek(k) == Some('#'));
                text.push('"');
                cur.bump();
                if closes {
                    for _ in 0..hashes {
                        text.push('#');
                        cur.bump();
                    }
                    break;
                }
            }
            Some(c) => {
                text.push(c);
                cur.bump();
            }
        }
    }
    Ok(Tok {
        kind: TokKind::Str,
        text,
        line: start_line,
    })
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'` (escaped
/// char).
fn lex_char_or_lifetime(cur: &mut Cursor) -> Result<Tok, LexError> {
    let start_line = cur.line;
    let mut text = String::from('\'');
    cur.bump(); // the quote
    match cur.peek(0) {
        None => Err(LexError {
            line: start_line,
            msg: "dangling single quote".to_string(),
        }),
        Some('\\') => {
            // Escaped char literal: consume escape then closing quote.
            text.push('\\');
            cur.bump();
            match cur.bump() {
                Some('u') => {
                    // `\u{..}` — consume the braced hex payload.
                    text.push('u');
                    if cur.peek(0) == Some('{') {
                        loop {
                            match cur.bump() {
                                Some('}') => {
                                    text.push('}');
                                    break;
                                }
                                Some(c) => text.push(c),
                                None => {
                                    return Err(LexError {
                                        line: start_line,
                                        msg: "unterminated \\u escape".to_string(),
                                    })
                                }
                            }
                        }
                    }
                }
                Some('x') => {
                    // `\xNN` — two hex digits.
                    text.push('x');
                    for _ in 0..2 {
                        match cur.bump() {
                            Some(c) => text.push(c),
                            None => {
                                return Err(LexError {
                                    line: start_line,
                                    msg: "unterminated \\x escape".to_string(),
                                })
                            }
                        }
                    }
                }
                Some(e) => text.push(e),
                None => {
                    return Err(LexError {
                        line: start_line,
                        msg: "unterminated char escape".to_string(),
                    })
                }
            }
            match cur.bump() {
                Some('\'') => text.push('\''),
                _ => {
                    return Err(LexError {
                        line: start_line,
                        msg: "unterminated char literal".to_string(),
                    })
                }
            }
            Ok(Tok {
                kind: TokKind::Char,
                text,
                line: start_line,
            })
        }
        Some(c) if is_ident_continue(c) => {
            if cur.peek(1) == Some('\'') {
                // 'x' — a one-char literal.
                text.push(c);
                cur.bump();
                text.push('\'');
                cur.bump();
                Ok(Tok {
                    kind: TokKind::Char,
                    text,
                    line: start_line,
                })
            } else {
                // 'ident — a lifetime.
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                Ok(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: start_line,
                })
            }
        }
        Some(c) => {
            // A non-ident char like '"' or '('.
            text.push(c);
            cur.bump();
            match cur.bump() {
                Some('\'') => text.push('\''),
                _ => {
                    return Err(LexError {
                        line: start_line,
                        msg: "unterminated char literal".to_string(),
                    })
                }
            }
            Ok(Tok {
                kind: TokKind::Char,
                text,
                line: start_line,
            })
        }
    }
}

/// Lexes a numeric literal: decimal/hex/binary/octal, underscores, type
/// suffixes, floats with exponents (`1.5e-3`). A `.` is only part of the
/// number when followed by a digit, so `0..5` and `1.min(2)` stay three
/// tokens.
fn lex_number(cur: &mut Cursor) -> Tok {
    let start_line = cur.line;
    let mut text = String::new();
    let mut prev = '\0';
    while let Some(c) = cur.peek(0) {
        let take = if is_ident_continue(c) {
            true
        } else if c == '.' {
            !text.contains('.') && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
        } else if c == '+' || c == '-' {
            (prev == 'e' || prev == 'E') && !text.starts_with("0x") && !text.starts_with("0b")
        } else {
            false
        };
        if !take {
            break;
        }
        text.push(c);
        prev = c;
        cur.bump();
    }
    Tok {
        kind: TokKind::Number,
        text,
        line: start_line,
    }
}

/// Renders tokens back to text: space-separated, newline after line
/// comments (which would otherwise swallow the rest of the stream).
/// `lex(render(toks))` reproduces the same `(kind, text)` sequence —
/// the property the round-trip test exercises.
#[must_use]
pub fn render(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        out.push_str(&t.text);
        if t.kind == TokKind::LineComment {
            out.push('\n');
        } else {
            out.push(' ');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("fn f(x: u32) -> u32 { x.unwrap() }");
        assert!(toks.contains(&(TokKind::Ident, "unwrap".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "->".to_string())));
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds("// unwrap()\nlet s = \"panic!()\"; /* todo!() */");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "x".to_string()));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"r#"a "quoted" b"# b"bytes" br##"x"##"####);
        assert_eq!(toks.len(), 3);
        assert!(toks.iter().all(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'static '\\n' '_ b'z'");
        let want = [
            (TokKind::Char, "'a'"),
            (TokKind::Lifetime, "'static"),
            (TokKind::Char, "'\\n'"),
            (TokKind::Lifetime, "'_"),
            (TokKind::Char, "b'z'"),
        ];
        for (got, (k, t)) in toks.iter().zip(want) {
            assert_eq!(got, &(k, t.to_string()));
        }
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("0..5"),
            vec![
                (TokKind::Number, "0".to_string()),
                (TokKind::Punct, "..".to_string()),
                (TokKind::Number, "5".to_string()),
            ]
        );
        assert_eq!(kinds("1.5e-3")[0], (TokKind::Number, "1.5e-3".to_string()));
        assert_eq!(
            kinds("0x0000_0400")[0],
            (TokKind::Number, "0x0000_0400".to_string())
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("'").is_err());
    }
}
