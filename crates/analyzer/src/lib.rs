//! `pensieve-analyzer`: a workspace invariant linter.
//!
//! The serving stack's correctness arguments lean on conventions the
//! Rust compiler cannot enforce: panic-free swap-in/eviction paths
//! (typed `PensieveError` everywhere), deterministic iteration order in
//! the cache and scheduler (bit-identical replay and eviction-victim
//! selection), a fixed lock-acquisition order, and threading routed
//! through the sanctioned concurrency layers. This crate checks those
//! conventions statically with a hand-rolled lexer — no external parser
//! dependencies, consistent with the workspace's vendored-shims policy.
//!
//! See DESIGN.md §8 for the rule catalogue (R1–R4), DESIGN.md §13 and
//! docs/ANALYZER.md for the scope-tree pass behind the R5 concurrency
//! rules, and `src/main.rs` for the CLI that CI runs in `--deny` mode.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

pub use report::{render_text, suppression_report, to_json};
pub use rules::{Analyzer, Report, SuppressionRecord, Violation, RULE_IDS};
pub use scope::{Scope, ScopeKind, ScopeTree};
