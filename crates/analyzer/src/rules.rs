//! The project-invariant rules and the engine that applies them.
//!
//! Each rule encodes a convention the compiler cannot check but the
//! system's correctness arguments rely on (see DESIGN.md §8):
//!
//! - **r1-panic** — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` in non-test code of the hot-path crates
//!   (`core`, `kvcache`, `kernels`, `sim`). Fallible paths must use the
//!   typed `PensieveError` hierarchy; deliberate documented panics carry
//!   a reasoned suppression.
//! - **r1-index** — no unchecked `x[i]` indexing/slicing in the cache
//!   hot-path files (`kvcache/src/tiered.rs`, `kvcache/src/store.rs`):
//!   the swap-in/eviction path must be total.
//! - **r2-hash-iter** — no iteration over `HashMap`/`HashSet` in
//!   scheduler/cache/kernel code: eviction victim selection and
//!   partition merges are bit-identity-tested, so walk order must be
//!   deterministic (`BTreeMap` or explicitly sorted snapshots).
//! - **r2-float-reduce** — no `.sum::<f32>()`-style float reductions
//!   inside parallel closures (`map_partitions`, `spawn`): float
//!   addition does not commute, so cross-thread reduction order must be
//!   fixed by sequential merges.
//! - **r3-raw-spawn** — no raw `thread::spawn` outside the sanctioned
//!   concurrency layers (`shims/crossbeam`, `core::workers`).
//! - **r3-adhoc-scope** — no ad-hoc `thread::scope` fork/join outside
//!   the same sanctioned layers: scoped spawns re-pay thread startup on
//!   every call and bypass the persistent pool's accounting, so all
//!   data parallelism must route through `crossbeam::pool::Pool`.
//! - **r3-lock-order** — the static graph of nested `.lock()`
//!   acquisitions must be acyclic across the workspace.
//! - **r4-suppression** — `// lint:allow(<rule>): <reason>` is the only
//!   suppression form; a missing or empty reason, an unknown rule id,
//!   or a suppression that never fires (stale debt) is itself a
//!   violation.
//! - **r2-wall-clock** / **r2-ambient-rng** — no `Instant::now`/
//!   `SystemTime::now` and no ambient randomness (`thread_rng`,
//!   `rand::random`, `OsRng`, `from_entropy`) in the deterministic
//!   crates: simulated behavior must flow from `SimTime` and seeded
//!   `SplitMix64` streams only.
//! - **r5-lock-across-pool** — no `MutexGuard`/`RwLockGuard` may be
//!   live across a worker-pool dispatch (`map_partitions`,
//!   `for_each_mut`, `matmul_pool*`, `paged_multi_token_pool*`,
//!   `step_replicas_to`): a guard held over the fan-out serializes the
//!   pool (or deadlocks it when a partition takes the same lock).
//! - **r5-pool-capture** — closures handed to the pool may not mutate
//!   captured state or touch interior-mutability cells: partitions must
//!   communicate results through the ordered-merge return path only.
//!
//! The flat rules are token-stream based (see [`crate::lexer`]); the r5
//! family runs on the scope tree from [`crate::scope`], which adds
//! closure boundaries, binder sets, and lock-guard liveness intervals on
//! top of the same stream (DESIGN.md §13).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};
use crate::scope::{ScopeKind, ScopeTree};

/// Every rule id the suppression grammar accepts.
pub const RULE_IDS: &[&str] = &[
    "r1-panic",
    "r1-index",
    "r2-hash-iter",
    "r2-float-reduce",
    "r2-wall-clock",
    "r2-ambient-rng",
    "r3-raw-spawn",
    "r3-adhoc-scope",
    "r3-lock-order",
    "r4-suppression",
    "r5-lock-across-pool",
    "r5-pool-capture",
    "lex-error",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Path the file was analyzed under (workspace-relative).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// A nested lock acquisition observed while one lock is held.
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    acquired: String,
    path: String,
    line: u32,
}

/// One `// lint:allow` in the workspace, with its audit state — the
/// suppression-debt ledger CI archives (`--report`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionRecord {
    /// Rule the suppression silences.
    pub rule: String,
    /// File the suppression lives in (workspace-relative).
    pub path: String,
    /// 1-based line of the suppression comment.
    pub line: u32,
    /// The written reason (mandatory by r4).
    pub reason: String,
    /// True for `lint:allow-file` (whole-file scope).
    pub file_level: bool,
    /// Violations this suppression silenced in this run; zero means the
    /// suppression is stale debt (itself an r4 violation).
    pub fired: u32,
}

/// Final analysis results for a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations surviving suppression, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Violations silenced by a reasoned suppression.
    pub suppressed: usize,
    /// Every well-formed suppression encountered, sorted by
    /// (path, line), with fired counts — the debt ledger.
    pub suppressions: Vec<SuppressionRecord>,
}

/// Accumulates per-file findings and the cross-file lock graph.
#[derive(Debug, Default)]
pub struct Analyzer {
    violations: Vec<Violation>,
    lock_edges: Vec<LockEdge>,
    files_scanned: usize,
    suppressed: usize,
    suppressions: Vec<SuppressionRecord>,
}

/// Paths are matched workspace-relative with forward slashes.
fn norm(path: &str) -> String {
    path.replace('\\', "/").trim_start_matches("./").to_string()
}

/// Crates whose non-test code must be panic-free (r1-panic).
fn in_panic_scope(p: &str) -> bool {
    [
        "crates/core/src/",
        "crates/kvcache/src/",
        "crates/kernels/src/",
        "crates/sim/src/",
        "crates/obs/src/",
        "crates/cluster/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Hot-path files where unchecked indexing is banned (r1-index): the
/// cache swap-in/eviction path, the radix prefix index (walked on every
/// admission with caller-supplied token histories), the manifest
/// decoder and storage-device models (torn records are hostile input by
/// design), the cluster router + replication pump (every request and KV
/// delta crosses them), and the worker pool (an out-of-bounds panic
/// inside dispatch would poison the whole fleet).
fn in_index_scope(p: &str) -> bool {
    [
        "crates/kvcache/src/tiered.rs",
        "crates/kvcache/src/store.rs",
        "crates/kvcache/src/prefix.rs",
        "crates/kvcache/src/manifest.rs",
        "crates/sim/src/storage.rs",
        "crates/cluster/src/router.rs",
        "crates/cluster/src/replication.rs",
        "shims/crossbeam/src/lib.rs",
    ]
    .contains(&p)
}

/// Crates whose behavior must be a pure function of `SimTime` and the
/// seeded fault/RNG streams: wall-clock reads and ambient randomness are
/// banned (r2-wall-clock, r2-ambient-rng).
fn in_determinism_scope(p: &str) -> bool {
    [
        "crates/core/src/",
        "crates/kvcache/src/",
        "crates/kernels/src/",
        "crates/sim/src/",
        "crates/cluster/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Scheduler/cache/kernel code where hash-order iteration is banned.
fn in_hash_scope(p: &str) -> bool {
    [
        "crates/core/src/",
        "crates/kvcache/src/",
        "crates/kernels/src/",
        "crates/obs/src/",
        "crates/cluster/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// The sanctioned spawn sites: the vendored concurrency shim and the
/// tensor-parallel worker fleet.
fn spawn_allowed(p: &str) -> bool {
    p.starts_with("shims/crossbeam/") || p == "crates/core/src/workers.rs"
}

/// Whole-file test-ish locations: integration tests, benches, examples.
fn is_test_path(p: &str) -> bool {
    p.starts_with("tests/")
        || p.starts_with("examples/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
}

/// A parsed `lint:allow` suppression.
#[derive(Debug)]
struct Suppression {
    rule: String,
    /// Line of the suppression comment itself.
    line: u32,
    /// Line of the first code token after the comment (the statement the
    /// suppression annotates); equals `line` for trailing comments.
    target_line: u32,
    file_level: bool,
    /// The written reason, for the suppression-debt ledger.
    reason: String,
}

impl Analyzer {
    /// Creates an empty analyzer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes one file. `path` determines rule scoping; fixture files
    /// may override it with a `// analyzer-fixture: <path>` header so
    /// the corpus exercises scoped rules from outside the scoped trees.
    pub fn analyze_file(&mut self, path: &str, src: &str) {
        self.files_scanned += 1;
        let real_path = norm(path);
        let toks = match lex(src) {
            Ok(t) => t,
            Err(e) => {
                self.violations.push(Violation {
                    rule: "lex-error",
                    path: real_path,
                    line: e.line,
                    msg: format!("cannot tokenize file: {}", e.msg),
                });
                return;
            }
        };
        // Virtual path header, for the fixture corpus.
        let scope_path = toks
            .first()
            .filter(|t| t.kind == TokKind::LineComment)
            .and_then(|t| t.text.strip_prefix("// analyzer-fixture:"))
            .map_or_else(|| real_path.clone(), |v| norm(v.trim()));

        let (sups, mut sup_violations) = collect_suppressions(&toks);
        let test_mask = compute_test_mask(&toks, &scope_path);

        let mut found = Vec::new();
        if in_panic_scope(&scope_path) {
            rule_panic(&toks, &test_mask, &mut found);
        }
        if in_index_scope(&scope_path) {
            rule_index(&toks, &test_mask, &mut found);
        }
        if in_hash_scope(&scope_path) {
            rule_hash_iter(&toks, &test_mask, &mut found);
            rule_float_reduce(&toks, &test_mask, &mut found);
        }
        if !spawn_allowed(&scope_path) {
            rule_raw_spawn(&toks, &test_mask, &mut found);
            rule_adhoc_scope(&toks, &test_mask, &mut found);
        }
        if in_determinism_scope(&scope_path) {
            rule_wall_clock(&toks, &test_mask, &mut found);
            rule_ambient_rng(&toks, &test_mask, &mut found);
        }
        // The r5 concurrency rules run everywhere: the scope tree gives
        // them closure boundaries and guard liveness on top of the same
        // token stream.
        let tree = ScopeTree::build(&toks);
        rule_pool_concurrency(&toks, &tree, &test_mask, &mut found);
        self.collect_lock_edges(&toks, &real_path);

        // Apply suppressions: file-level allows silence the whole file;
        // a line-level allow covers its own line and the next line (so
        // the comment can trail the code or sit on its own line above).
        // Each silenced violation is charged to the suppression(s) that
        // matched it, so a suppression that never fires is visible as
        // stale debt.
        let mut fired = vec![0u32; sups.len()];
        for v in found {
            let mut hit = false;
            for (si, s) in sups.iter().enumerate() {
                let matches = s.rule == v.rule
                    && (s.file_level || v.line == s.line || v.line == s.target_line);
                if matches {
                    fired[si] += 1;
                    hit = true;
                }
            }
            if hit {
                self.suppressed += 1;
            } else {
                self.violations.push(Violation {
                    path: real_path.clone(),
                    ..v
                });
            }
        }
        for (si, s) in sups.iter().enumerate() {
            if fired[si] == 0 {
                self.violations.push(Violation {
                    rule: "r4-suppression",
                    path: real_path.clone(),
                    line: s.line,
                    msg: format!(
                        "stale suppression: `lint:allow({})` silences nothing on this \
                         line — delete it (suppression debt must stay live)",
                        s.rule
                    ),
                });
            }
            self.suppressions.push(SuppressionRecord {
                rule: s.rule.clone(),
                path: real_path.clone(),
                line: s.line,
                reason: s.reason.clone(),
                file_level: s.file_level,
                fired: fired[si],
            });
        }
        for v in &mut sup_violations {
            v.path.clone_from(&real_path);
        }
        self.violations.append(&mut sup_violations);
    }

    /// Finishes the run: detects lock-order cycles across every analyzed
    /// file and returns the sorted report.
    #[must_use]
    pub fn finish(mut self) -> Report {
        self.detect_lock_cycles();
        self.violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        Report {
            violations: self.violations,
            files_scanned: self.files_scanned,
            suppressed: self.suppressed,
            suppressions: self.suppressions,
        }
    }

    /// Walks function bodies recording which locks are held when another
    /// `.lock()` is acquired. Heuristic: a guard bound with `let` is
    /// held until its enclosing block closes; a temporary guard lives
    /// for its statement only. Receivers are identified by their token
    /// text (`self.inner.state`), which is exactly the granularity the
    /// lock-order convention is written in.
    fn collect_lock_edges(&mut self, toks: &[Tok], path: &str) {
        let code: Vec<(usize, &Tok)> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
            .collect();
        let mut depth: i32 = 0;
        // (receiver, depth at binding); cleared when depth drops below.
        let mut held: Vec<(String, i32)> = Vec::new();
        for w in 0..code.len() {
            let t = code[w].1;
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => {
                    depth -= 1;
                    held.retain(|(_, d)| *d <= depth);
                }
                // A new top-level item resets the held set (closures keep
                // it — they run on the same thread with guards live).
                (TokKind::Ident, "fn") if depth == 0 => held.clear(),
                (TokKind::Ident, "lock") => {
                    let is_call = w >= 1
                        && code[w - 1].1.text == "."
                        && code.get(w + 1).is_some_and(|(_, n)| n.text == "(");
                    if !is_call {
                        continue;
                    }
                    // Receiver: the longest ident/`.` chain before `.lock`.
                    let mut parts: Vec<&str> = Vec::new();
                    let mut j = w - 1; // points at the `.`
                    while j >= 1 {
                        let prev = code[j - 1].1;
                        match prev.kind {
                            TokKind::Ident => parts.push(&prev.text),
                            TokKind::Punct if prev.text == "." => {}
                            _ => break,
                        }
                        j -= 1;
                    }
                    parts.reverse();
                    if parts.is_empty() {
                        continue;
                    }
                    let recv = parts.join(".");
                    for (h, _) in &held {
                        if *h != recv {
                            self.lock_edges.push(LockEdge {
                                held: h.clone(),
                                acquired: recv.clone(),
                                path: path.to_string(),
                                line: t.line,
                            });
                        }
                    }
                    // Held only if bound: `let [mut] g = recv.lock()...`.
                    // The preceding-token check rejects `==` comparisons.
                    let bound = j >= 2
                        && code[j - 1].1.text == "="
                        && code[j - 2].1.kind == TokKind::Ident
                        && code[j - 2].1.text != "=";
                    if bound {
                        held.push((recv, depth));
                    }
                }
                _ => {}
            }
        }
    }

    /// DFS over the acquisition graph; every distinct cycle becomes one
    /// violation at the edge that closes it.
    fn detect_lock_cycles(&mut self) {
        let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in &self.lock_edges {
            adj.entry(&e.held).or_default().push(e);
        }
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut cycle_violations = Vec::new();
        for start in adj.keys().copied().collect::<Vec<_>>() {
            // Path-stack DFS from each node, small graphs only.
            let mut stack: Vec<(&str, Vec<String>)> = vec![(start, vec![start.to_string()])];
            while let Some((node, path_nodes)) = stack.pop() {
                for e in adj.get(node).map_or(&[][..], |v| v) {
                    if e.acquired == start {
                        let mut key = path_nodes.clone();
                        key.sort();
                        if reported.insert(key) {
                            cycle_violations.push(Violation {
                                rule: "r3-lock-order",
                                path: e.path.clone(),
                                line: e.line,
                                msg: format!(
                                    "lock-order cycle: {} -> {} closes a cycle through [{}]",
                                    e.held,
                                    e.acquired,
                                    path_nodes.join(" -> ")
                                ),
                            });
                        }
                    } else if !path_nodes.contains(&e.acquired) && path_nodes.len() < 16 {
                        let mut p = path_nodes.clone();
                        p.push(e.acquired.clone());
                        stack.push((&e.acquired, p));
                    }
                }
            }
        }
        self.violations.append(&mut cycle_violations);
    }
}

/// Parses every `lint:allow(...)` comment. Returns well-formed
/// suppressions plus r4 violations for malformed ones (bare allows,
/// unknown rule ids).
fn collect_suppressions(toks: &[Tok]) -> (Vec<Suppression>, Vec<Violation>) {
    let mut sups = Vec::new();
    let mut violations = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        // The statement a suppression annotates is the next code token,
        // possibly several comment lines below (multi-line reasons).
        let target_line = toks[ti + 1..]
            .iter()
            .find(|n| n.kind != TokKind::LineComment && n.kind != TokKind::BlockComment)
            .map_or(t.line, |n| n.line);
        // Strip the comment opener; doc comments (`///`, `//!`, `/**`,
        // `/*!`) are prose, never suppressions — a doc sentence that
        // *mentions* the grammar must not activate it.
        let body = if let Some(rest) = t.text.strip_prefix("//") {
            if rest.starts_with('/') || rest.starts_with('!') {
                continue;
            }
            rest
        } else if let Some(rest) = t.text.strip_prefix("/*") {
            if rest.starts_with('*') || rest.starts_with('!') {
                continue;
            }
            rest.trim_end_matches("*/")
        } else {
            continue;
        };
        // The marker must lead the comment (modulo whitespace): the
        // suppression is the comment's whole job, not an aside.
        let body = body.trim_start();
        let (after_marker, file_level) = if let Some(r) = body.strip_prefix("lint:allow-file") {
            (r, true)
        } else if let Some(r) = body.strip_prefix("lint:allow") {
            (r, false)
        } else {
            continue;
        };
        let Some(after) = after_marker.strip_prefix('(') else {
            violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: "malformed suppression: expected `(` after `lint:allow`".to_string(),
            });
            continue;
        };
        let Some(close) = after.find(')') else {
            violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: "malformed suppression: missing `)` after rule id".to_string(),
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        if !RULE_IDS.contains(&rule.as_str()) {
            violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: format!("suppression names unknown rule `{rule}`"),
            });
            continue;
        }
        let rest = after[close + 1..].trim_start();
        let reason = rest.strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => {
                // A reason may spill across consecutive comment lines;
                // collect the continuation for the debt ledger.
                let mut full = r.to_string();
                for (expect, n) in (t.line + 1..).zip(&toks[ti + 1..]) {
                    if n.kind != TokKind::LineComment || n.line != expect {
                        break;
                    }
                    let tail = n.text.trim_start_matches('/').trim();
                    if tail.starts_with("lint:allow") {
                        break;
                    }
                    full.push(' ');
                    full.push_str(tail);
                }
                sups.push(Suppression {
                    rule,
                    line: t.line,
                    target_line,
                    file_level,
                    reason: full,
                });
            }
            _ => violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: format!(
                    "bare suppression of `{rule}`: a written reason is mandatory \
                     (`// lint:allow({rule}): <why this is sound>`)"
                ),
            }),
        }
    }
    (sups, violations)
}

/// Marks every token inside test code: `#[cfg(test)]` / `#[test]`
/// items, and whole files under test-ish paths.
fn compute_test_mask(toks: &[Tok], scope_path: &str) -> Vec<bool> {
    let mut mask = vec![is_test_path(scope_path); toks.len()];
    if mask.first().copied().unwrap_or(false) {
        return mask;
    }
    let n = toks.len();
    let mut i = 0;
    while i < n {
        let is_attr_start = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[");
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Collect the attribute tokens between the matching brackets.
        let mut j = i + 2;
        let mut brackets = 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < n && brackets > 0 {
            match toks[j].text.as_str() {
                "[" => brackets += 1,
                "]" => brackets -= 1,
                "test" if toks[j].kind == TokKind::Ident => has_test = true,
                "not" if toks[j].kind == TokKind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Mark from the attribute through the end of the annotated item:
        // skip any further attributes, then either a `;`-terminated item
        // or a braced body.
        let start = i;
        let mut k = j;
        loop {
            // Skip subsequent attributes wholesale.
            if k < n && toks[k].text == "#" && toks.get(k + 1).is_some_and(|t| t.text == "[") {
                let mut b = 1;
                k += 2;
                while k < n && b > 0 {
                    match toks[k].text.as_str() {
                        "[" => b += 1,
                        "]" => b -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            break;
        }
        let mut braces = 0;
        let mut entered = false;
        while k < n {
            match toks[k].text.as_str() {
                "{" => {
                    braces += 1;
                    entered = true;
                }
                "}" => {
                    braces -= 1;
                    if entered && braces == 0 {
                        k += 1;
                        break;
                    }
                }
                ";" if !entered => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(k.min(n)).skip(start) {
            *m = true;
        }
        i = k;
    }
    mask
}

/// Non-comment code tokens with their original indices.
fn code_indices(toks: &[Tok]) -> Vec<usize> {
    (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::LineComment && toks[i].kind != TokKind::BlockComment)
        .collect()
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// r1-panic: `.unwrap()`/`.expect(` calls and panic-family macros.
fn rule_panic(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if PANIC_METHODS.contains(&name) {
            let after_dot = w >= 1 && toks[code[w - 1]].text == ".";
            let called = code.get(w + 1).is_some_and(|&k| toks[k].text == "(");
            if after_dot && called {
                out.push(Violation {
                    rule: "r1-panic",
                    path: String::new(),
                    line: toks[i].line,
                    msg: format!(
                        "`.{name}()` on a hot path: convert to a typed `PensieveError` \
                         or annotate the documented invariant"
                    ),
                });
            }
        } else if PANIC_MACROS.contains(&name)
            && code.get(w + 1).is_some_and(|&k| toks[k].text == "!")
        {
            out.push(Violation {
                rule: "r1-panic",
                path: String::new(),
                line: toks[i].line,
                msg: format!("`{name}!` on a hot path: return a typed error instead"),
            });
        }
    }
}

/// r1-index: `expr[...]` indexing/slicing in the cache hot-path files.
fn rule_index(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].text != "[" || toks[i].kind != TokKind::Punct {
            continue;
        }
        let Some(&p) = w.checked_sub(1).and_then(|k| code.get(k)) else {
            continue;
        };
        let prev = &toks[p];
        // `&mut [T]` / `dyn [..]` are slice *types*, not index sites: no
        // place expression can end in `mut` or `dyn`.
        let indexes = (prev.kind == TokKind::Ident && prev.text != "mut" && prev.text != "dyn")
            || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]" | "?"));
        if indexes {
            out.push(Violation {
                rule: "r1-index",
                path: String::new(),
                line: toks[i].line,
                msg: "unchecked index/slice on a cache hot path: use `.get()` and a \
                      typed error (or a reasoned suppression for a proven invariant)"
                    .to_string(),
            });
        }
    }
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers declared as `HashMap`/`HashSet` in this file: field and
/// binding type annotations (`name: HashMap<..>`) and constructor
/// bindings (`let name = HashMap::new()`).
fn hash_names(toks: &[Tok]) -> BTreeSet<String> {
    let code = code_indices(toks);
    let mut names = BTreeSet::new();
    for (w, &i) in code.iter().enumerate() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if toks[i].text != "HashMap" && toks[i].text != "HashSet" {
            continue;
        }
        // Walk back over an optional `std::collections::` path prefix.
        let mut j = w;
        while j >= 1 {
            let prev = &toks[code[j - 1]];
            let is_path = prev.text == "::"
                || (prev.kind == TokKind::Ident
                    && (prev.text == "std" || prev.text == "collections"));
            if is_path {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 {
            let sep = &toks[code[j - 1]];
            let name = &toks[code[j - 2]];
            let decl = sep.text == ":" && name.kind == TokKind::Ident;
            let ctor_bind = sep.text == "=" && name.kind == TokKind::Ident;
            if (decl || ctor_bind) && name.text != "use" {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// r2-hash-iter: iteration over identifiers known to be hash
/// collections, via iterator methods or `for .. in` loops.
fn rule_hash_iter(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let names = hash_names(toks);
    if names.is_empty() {
        return;
    }
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` and friends.
        if names.contains(&toks[i].text) {
            let dot = code.get(w + 1).is_some_and(|&k| toks[k].text == ".");
            let method = code.get(w + 2).map(|&k| toks[k].text.as_str());
            let called = code.get(w + 3).is_some_and(|&k| toks[k].text == "(");
            if dot && called && method.is_some_and(|m| HASH_ITER_METHODS.contains(&m)) {
                out.push(Violation {
                    rule: "r2-hash-iter",
                    path: String::new(),
                    line: toks[i].line,
                    msg: format!(
                        "iteration over hash-ordered `{}`: use a `BTreeMap`/sorted \
                         snapshot so eviction/merge order is deterministic",
                        toks[i].text
                    ),
                });
            }
        }
        // `for pat in [&[mut]] [self.]name {`.
        if toks[i].text == "for" {
            let mut k = w + 1;
            let mut saw_in = false;
            while k < code.len() && k < w + 24 {
                if toks[code[k]].text == "in" {
                    saw_in = true;
                    break;
                }
                k += 1;
            }
            if !saw_in {
                continue;
            }
            // Expression tokens between `in` and the loop body `{`.
            let mut expr: Vec<&Tok> = Vec::new();
            let mut m = k + 1;
            while m < code.len() && toks[code[m]].text != "{" && expr.len() < 12 {
                expr.push(&toks[code[m]]);
                m += 1;
            }
            // Simple chains only: [& [mut]] (ident .)* ident
            let chain_ok = expr
                .iter()
                .all(|t| t.kind == TokKind::Ident || matches!(t.text.as_str(), "&" | "." | "mut"));
            let last_ident = expr.iter().rev().find(|t| t.kind == TokKind::Ident);
            if chain_ok && last_ident.is_some_and(|t| names.contains(&t.text)) {
                out.push(Violation {
                    rule: "r2-hash-iter",
                    path: String::new(),
                    line: toks[i].line,
                    msg: format!(
                        "`for` over hash-ordered `{}`: iteration order is \
                         nondeterministic across runs",
                        last_ident.map_or("", |t| t.text.as_str())
                    ),
                });
            }
        }
    }
}

/// r2-float-reduce: `.sum::<f32>()` / `.product::<f64>()` inside the
/// argument list of a parallel combinator (`map_partitions`, `spawn`).
fn rule_float_reduce(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    let mut depth = 0i32;
    // Paren depths at which a parallel call's argument list opened.
    let mut par_depths: Vec<i32> = Vec::new();
    for (w, &i) in code.iter().enumerate() {
        match toks[i].text.as_str() {
            "(" => {
                let callee = w
                    .checked_sub(1)
                    .map(|k| toks[code[k]].text.as_str())
                    .unwrap_or("");
                if callee == "map_partitions" || callee == "spawn" {
                    par_depths.push(depth);
                }
                depth += 1;
            }
            ")" => {
                depth -= 1;
                if par_depths.last().is_some_and(|d| *d >= depth) {
                    par_depths.pop();
                }
            }
            "sum" | "product" if toks[i].kind == TokKind::Ident => {
                if test_mask[i] || par_depths.is_empty() {
                    continue;
                }
                let turbofish_float = code.get(w + 1).is_some_and(|&k| toks[k].text == "::")
                    && code.get(w + 2).is_some_and(|&k| toks[k].text == "<")
                    && code
                        .get(w + 3)
                        .is_some_and(|&k| toks[k].text == "f32" || toks[k].text == "f64");
                let after_dot = w >= 1 && toks[code[w - 1]].text == ".";
                if after_dot && turbofish_float {
                    out.push(Violation {
                        rule: "r2-float-reduce",
                        path: String::new(),
                        line: toks[i].line,
                        msg: format!(
                            "float `.{}` inside a parallel closure: reduction order \
                             is not fixed; merge partials sequentially",
                            toks[i].text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// r3-raw-spawn: `thread::spawn` outside the sanctioned layers.
fn rule_raw_spawn(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident || toks[i].text != "thread" {
            continue;
        }
        let sep = code.get(w + 1).is_some_and(|&k| toks[k].text == "::");
        let spawn = code.get(w + 2).is_some_and(|&k| toks[k].text == "spawn");
        if sep && spawn {
            out.push(Violation {
                rule: "r3-raw-spawn",
                path: String::new(),
                line: toks[i].line,
                msg: "raw `thread::spawn`: route threading through \
                      `shims/crossbeam` scopes or `core::workers` so shutdown \
                      and panics stay contained"
                    .to_string(),
            });
        }
    }
}

/// r3-adhoc-scope: `thread::scope` fork/join outside the sanctioned
/// layers. Scoped spawns re-pay thread startup per call and dodge the
/// persistent pool's task/utilization accounting.
fn rule_adhoc_scope(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident || toks[i].text != "thread" {
            continue;
        }
        let sep = code.get(w + 1).is_some_and(|&k| toks[k].text == "::");
        let scope = code.get(w + 2).is_some_and(|&k| toks[k].text == "scope");
        if sep && scope {
            out.push(Violation {
                rule: "r3-adhoc-scope",
                path: String::new(),
                line: toks[i].line,
                msg: "ad-hoc `thread::scope`: fork/join must go through the \
                      persistent `crossbeam::pool::Pool` so workers are \
                      reused and task accounting stays accurate"
                    .to_string(),
            });
        }
    }
}

/// r2-wall-clock: `Instant::now` / `SystemTime::now` in the
/// deterministic crates. Simulated behavior must be timed by `SimTime`;
/// a wall-clock read that leaks into scheduling or eviction decisions
/// breaks bit-identical replay.
fn rule_wall_clock(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        let sep = code.get(w + 1).is_some_and(|&k| toks[k].text == "::");
        let now = code.get(w + 2).is_some_and(|&k| toks[k].text == "now");
        if sep && now {
            out.push(Violation {
                rule: "r2-wall-clock",
                path: String::new(),
                line: toks[i].line,
                msg: format!(
                    "`{name}::now` in a deterministic crate: simulated behavior \
                     must be driven by `SimTime` (wall-clock observability reads \
                     need a reasoned suppression proving they never feed results)"
                ),
            });
        }
    }
}

/// Ambient (unseeded) randomness sources banned in the deterministic
/// crates (r2-ambient-rng).
const AMBIENT_RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// r2-ambient-rng: unseeded randomness in the deterministic crates.
/// Every stochastic decision must draw from a seeded `SplitMix64`
/// stream so fault schedules and arrivals replay bit-identically.
fn rule_ambient_rng(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let ambient = AMBIENT_RNG_IDENTS.contains(&name)
            || (name == "rand"
                && code.get(w + 1).is_some_and(|&k| toks[k].text == "::")
                && code.get(w + 2).is_some_and(|&k| toks[k].text == "random"));
        if ambient {
            out.push(Violation {
                rule: "r2-ambient-rng",
                path: String::new(),
                line: toks[i].line,
                msg: format!(
                    "ambient randomness (`{name}`) in a deterministic crate: draw \
                     from a seeded `SplitMix64` stream so runs replay bit-identically"
                ),
            });
        }
    }
}

/// The worker-pool dispatch surface guarded by the r5 rules: calling any
/// of these fans work out to pool threads.
const DISPATCH_FNS: &[&str] = &[
    "map_partitions",
    "for_each_mut",
    "matmul_pool",
    "matmul_pool_ungated",
    "paged_multi_token_pool",
    "paged_multi_token_pool_ungated",
    "step_replicas_to",
];

/// Methods that produce a lock guard when `let`-bound.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Compound-assignment and assignment operators (mutation sites for the
/// capture rule).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// A `let`-bound lock guard's liveness interval, in code positions.
struct GuardLive {
    name: String,
    bind: usize,
    end: usize,
    line: u32,
}

/// True for identifiers that are type-ish rather than value-ish
/// (uppercase initial or primitive) — used to ignore `&mut T` in nested
/// closure parameter types.
fn type_like(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
        || matches!(
            name,
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
                | "f32"
                | "f64"
                | "bool"
                | "str"
                | "char"
                | "self"
        )
}

/// Identifiers declared with an interior-mutability cell type in this
/// file (`name: RefCell<..>`, `let name = Cell::new(..)`).
fn cell_names(toks: &[Tok]) -> BTreeSet<String> {
    let code = code_indices(toks);
    let mut names = BTreeSet::new();
    for (w, &i) in code.iter().enumerate() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if !matches!(toks[i].text.as_str(), "RefCell" | "Cell" | "UnsafeCell") {
            continue;
        }
        // Walk back over an optional `std::cell::`-style path prefix.
        let mut j = w;
        while j >= 1 {
            let prev = &toks[code[j - 1]];
            let is_path = prev.text == "::"
                || (prev.kind == TokKind::Ident
                    && matches!(prev.text.as_str(), "std" | "core" | "cell"));
            if is_path {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 {
            let sep = &toks[code[j - 1]];
            let name = &toks[code[j - 2]];
            if (sep.text == ":" || sep.text == "=")
                && name.kind == TokKind::Ident
                && name.text != "use"
            {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// Collects `let`-bound lock-guard liveness intervals. Both method
/// guards (`x.lock()`, `x.read()`, `x.write()`) and the workspace's
/// poison-riding free helper (`lock(&x)`) count; a guard lives from its
/// binding to its enclosing scope's end, or to an explicit
/// `drop(guard)`.
fn collect_guards(toks: &[Tok], tree: &ScopeTree) -> Vec<GuardLive> {
    let code = tree.code();
    let tok = |p: usize| &toks[code[p]];
    let mut guards = Vec::new();
    for w in 0..code.len() {
        if tok(w).kind != TokKind::Ident {
            continue;
        }
        let name = tok(w).text.as_str();
        let called = w + 1 < code.len() && tok(w + 1).text == "(";
        if !called {
            continue;
        }
        let after_dot = w >= 1 && tok(w - 1).text == ".";
        let is_method_guard = GUARD_METHODS.contains(&name) && after_dot;
        let is_free_guard = name == "lock" && !after_dot && (w == 0 || tok(w - 1).text != "fn");
        if !is_method_guard && !is_free_guard {
            continue;
        }
        // Start of the receiver chain (`self.inner.state.lock`), or the
        // call ident itself for the free helper.
        let mut j = w;
        if is_method_guard {
            j = w - 1; // the dot
            while j >= 1 {
                let prev = tok(j - 1);
                match prev.kind {
                    TokKind::Ident => {}
                    TokKind::Punct if prev.text == "." || prev.text == "::" => {}
                    _ => break,
                }
                j -= 1;
            }
        }
        // Binding shape: `let [mut] name = <chain>.lock()`.
        let Some(eq) = j.checked_sub(1) else { continue };
        if tok(eq).text != "=" {
            continue;
        }
        let Some(nm) = eq.checked_sub(1) else {
            continue;
        };
        if tok(nm).kind != TokKind::Ident || tok(nm).text == "_" {
            continue;
        }
        let let_ok = nm
            .checked_sub(1)
            .is_some_and(|p| tok(p).text == "let" || tok(p).text == "mut");
        if !let_ok {
            continue;
        }
        let bound = tok(nm).text.clone();
        let scope_end = tree.enclosing_end(w);
        // An explicit `drop(name)` ends the guard early.
        let mut end = scope_end;
        for d in w + 1..scope_end.min(code.len()) {
            if tok(d).text == "drop"
                && tok(d).kind == TokKind::Ident
                && d + 2 < code.len()
                && tok(d + 1).text == "("
                && tok(d + 2).text == bound
            {
                end = d;
                break;
            }
        }
        guards.push(GuardLive {
            name: bound,
            bind: w,
            end,
            line: tok(w).line,
        });
    }
    guards
}

/// r5-lock-across-pool + r5-pool-capture: the scope-tree concurrency
/// rules over the pool dispatch surface.
fn rule_pool_concurrency(
    toks: &[Tok],
    tree: &ScopeTree,
    test_mask: &[bool],
    out: &mut Vec<Violation>,
) {
    let code = tree.code();
    let tok = |p: usize| &toks[code[p]];
    let guards = collect_guards(toks, tree);
    let cells = cell_names(toks);
    // Dedup: a closure body can hit the same capture on one line twice.
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for w in 0..code.len() {
        if tok(w).kind != TokKind::Ident || !DISPATCH_FNS.contains(&tok(w).text.as_str()) {
            continue;
        }
        if test_mask[code[w]] {
            continue;
        }
        let called = w + 1 < code.len() && tok(w + 1).text == "(";
        let definition = w >= 1 && tok(w - 1).text == "fn";
        if !called || definition {
            continue;
        }
        // -- r5-lock-across-pool: any guard live over this dispatch.
        for g in &guards {
            if g.bind < w && w < g.end {
                out.push(Violation {
                    rule: "r5-lock-across-pool",
                    path: String::new(),
                    line: tok(w).line,
                    msg: format!(
                        "lock guard `{}` (bound at line {}) is live across the \
                         `{}` pool dispatch: drop it before fanning out — a \
                         partition taking the same lock deadlocks the pool, and \
                         holding it serializes the batch",
                        g.name,
                        g.line,
                        tok(w).text
                    ),
                });
            }
        }
        // -- r5-pool-capture: closures in this call's argument list.
        let open = w + 1;
        let mut depth = 0i32;
        let mut close = code.len();
        for p in open..code.len() {
            match tok(p).text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        close = p;
                        break;
                    }
                }
                _ => {}
            }
        }
        for (cid, c) in tree.scopes().iter().enumerate() {
            if c.kind != ScopeKind::Closure || c.start <= open || c.start >= close {
                continue;
            }
            // Only outermost pool closures: captures of a *nested*
            // closure from its parent closure stay inside one partition
            // task and are sequential there.
            let mut p = c.parent;
            let nested = loop {
                let s = &tree.scopes()[p];
                if s.kind == ScopeKind::Closure && s.start > open && s.start < close {
                    break true;
                }
                if p == s.parent {
                    break false;
                }
                p = s.parent;
            };
            if nested {
                continue;
            }
            check_pool_closure(toks, tree, cid, &cells, test_mask, &mut seen, out);
        }
    }
}

/// Scans one pool closure for captured-state mutation and
/// interior-mutability use. `boundary` is the closure scope id; a name
/// declared at or below it (params, `let`, `for`) is partition-local and
/// exempt.
fn check_pool_closure(
    toks: &[Tok],
    tree: &ScopeTree,
    boundary: usize,
    cells: &BTreeSet<String>,
    test_mask: &[bool],
    seen: &mut BTreeSet<(u32, String)>,
    out: &mut Vec<Violation>,
) {
    let code = tree.code();
    let tok = |p: usize| &toks[code[p]];
    let c = &tree.scopes()[boundary];
    let body = c.start..c.end.min(code.len());
    let mut emit = |line: u32, what: String, out: &mut Vec<Violation>| {
        if seen.insert((line, what.clone())) {
            out.push(Violation {
                rule: "r5-pool-capture",
                path: String::new(),
                line,
                msg: format!(
                    "{what} inside a pool closure: partitions must stay \
                     independent and merge results through the ordered return \
                     path, not shared mutable state"
                ),
            });
        }
    };
    for p in body {
        if test_mask[code[p]] {
            continue;
        }
        let t = tok(p);
        // Mutation of a captured place: `<chain> op= ...`.
        if t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()) {
            if let Some(name) = assignment_target(toks, tree, p) {
                let inner = tree.innermost_at(p);
                if !tree.declared_within(inner, boundary, &name) && !type_like(&name) {
                    emit(t.line, format!("assignment to captured `{name}`"), out);
                }
            }
        }
        // `&mut <ident>` borrow of a captured place.
        if t.kind == TokKind::Punct
            && t.text == "&"
            && p + 2 < code.len()
            && tok(p + 1).text == "mut"
            && tok(p + 2).kind == TokKind::Ident
        {
            let name = tok(p + 2).text.clone();
            let inner = tree.innermost_at(p + 2);
            if !tree.declared_within(inner, boundary, &name) && !type_like(&name) {
                emit(
                    t.line,
                    format!("`&mut {name}` borrow of captured state"),
                    out,
                );
            }
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        // Interior mutability: `.borrow_mut()` always, and any use of an
        // identifier declared as a cell type in this file.
        if t.text == "borrow_mut"
            && p >= 1
            && tok(p - 1).text == "."
            && p + 1 < code.len()
            && tok(p + 1).text == "("
        {
            emit(t.line, "`.borrow_mut()`".to_string(), out);
        }
        if cells.contains(&t.text) {
            let inner = tree.innermost_at(p);
            if !tree.declared_within(inner, boundary, &t.text) {
                emit(
                    t.line,
                    format!("captured interior-mutability cell `{}`", t.text),
                    out,
                );
            }
        }
    }
}

/// For an assignment operator at code position `p`, resolves the
/// leftmost identifier of the assigned place (`self.replicas[i] = ..` →
/// `self`), or `None` when the shape is a declaration (`let x = ..`) or
/// not an assignment (`==`/`=>` are distinct tokens already).
fn assignment_target(toks: &[Tok], tree: &ScopeTree, p: usize) -> Option<String> {
    let code = tree.code();
    let tok = |q: usize| &toks[code[q]];
    let mut q = p.checked_sub(1)?;
    // Walk left over the place expression: `]`/`)` skip to their
    // opener; ident/`.`/`::` continue the chain.
    let mut leading: Option<String> = None;
    loop {
        let t = tok(q);
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "]" | ")") => {
                let close = t.text.clone();
                let open = if close == "]" { "[" } else { "(" };
                let mut depth = 1i32;
                while depth > 0 {
                    q = q.checked_sub(1)?;
                    if tok(q).text == close {
                        depth += 1;
                    } else if tok(q).text == open {
                        depth -= 1;
                    }
                }
            }
            (TokKind::Punct, "." | "::") => {}
            (TokKind::Ident, name) => {
                if matches!(name, "let" | "mut" | "ref") {
                    // Declaration, not mutation.
                    return None;
                }
                leading = Some(name.to_string());
            }
            (TokKind::Punct, "*") => {} // deref layers: `*x = ..`
            _ => break,
        }
        let Some(next) = q.checked_sub(1) else { break };
        q = next;
    }
    // `let <pat> = ..` where the pattern start was not adjacent (tuple
    // patterns): the token right before the chain is the discriminator.
    if tok(q).text == "let" || tok(q).text == "mut" {
        return None;
    }
    // A `:` right before the `=`'s chain start means a struct-literal
    // field or type ascription — not a mutation of a place.
    if tok(q).text == ":" {
        return None;
    }
    leading
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let mut a = Analyzer::new();
        a.analyze_file(path, src);
        a.finish().violations
    }

    #[test]
    fn panics_flagged_in_scope_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(run("crates/core/src/engine.rs", src).len(), 1);
        assert!(run("crates/workload/src/driver.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { panic!(\"x\") }\n}\n";
        assert!(run("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_are_exempt() {
        let src = "/// cache.append(c).unwrap();\nfn ok() {}\n";
        assert!(run("crates/kvcache/src/tiered.rs", src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(r1-panic): \
                   documented construction-time invariant\n    x.unwrap()\n}\n";
        assert!(run("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn bare_suppression_is_a_violation() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(r1-panic)\n    x.unwrap()\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}"); // bare allow + unsuppressed unwrap
        assert!(v.iter().any(|v| v.rule == "r4-suppression"));
        assert!(v.iter().any(|v| v.rule == "r1-panic"));
    }

    #[test]
    fn unknown_rule_in_suppression_is_a_violation() {
        let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "r4-suppression");
    }

    #[test]
    fn hash_iteration_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { convs: HashMap<u64, u32> }\n\
                   impl S { fn walk(&self) { for (k, v) in &self.convs { let _ = (k, v); } \
                   let _n = self.convs.keys().count(); } }\n";
        let v = run("crates/kvcache/src/tiered.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r2-hash-iter").count(), 2);
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "use std::collections::BTreeMap;\nstruct S { convs: BTreeMap<u64, u32> }\n\
                   impl S { fn walk(&self) { for (_k, _v) in &self.convs {} } }\n";
        assert!(run("crates/kvcache/src/tiered.rs", src).is_empty());
    }

    #[test]
    fn lock_cycle_detected() {
        let src = "fn ab(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n\
                   fn ba(a: &M, b: &M) { let g = b.lock(); let h = a.lock(); }\n";
        let v = run("crates/core/src/anywhere.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r3-lock-order").count(), 1);
    }

    #[test]
    fn nested_same_order_is_fine() {
        let src = "fn ab(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n\
                   fn also_ab(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n";
        assert!(run("crates/core/src/anywhere.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_outside_sanctioned_files() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(run("crates/sim/src/gpu.rs", src).len(), 1);
        assert!(run("crates/core/src/workers.rs", src).is_empty());
        assert!(run("shims/crossbeam/src/lib.rs", src).is_empty());
    }

    #[test]
    fn adhoc_scope_flagged_outside_sanctioned_files() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        let v = run("crates/kernels/src/ops.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r3-adhoc-scope").count(), 1);
        assert!(run("shims/crossbeam/src/lib.rs", src).is_empty());
        assert!(run("crates/core/src/workers.rs", src).is_empty());
        // Test code may still fork ad hoc.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { \
                        std::thread::scope(|s| { let _ = s; }); }\n}\n";
        assert!(run("crates/kernels/src/ops.rs", test_src).is_empty());
    }

    #[test]
    fn float_reduce_inside_parallel_closure() {
        let src = "fn f(p: &P, xs: &[f32]) { p.map_partitions(|c| \
                   c.iter().map(|x| x * x).sum::<f32>()); }\n";
        let v = run("crates/kernels/src/ops.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r2-float-reduce").count(), 1);
        // The same reduction outside any parallel combinator is fine.
        let seq = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
        assert!(run("crates/kernels/src/ops.rs", seq).is_empty());
    }

    #[test]
    fn fixture_header_overrides_scope() {
        let src = "// analyzer-fixture: crates/core/src/hot.rs\nfn f(x: Option<u32>) \
                   -> u32 { x.unwrap() }\n";
        let v = run("crates/analyzer/fixtures/bad/p.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "r1-panic");
    }
}
