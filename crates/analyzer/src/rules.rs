//! The project-invariant rules and the engine that applies them.
//!
//! Each rule encodes a convention the compiler cannot check but the
//! system's correctness arguments rely on (see DESIGN.md §8):
//!
//! - **r1-panic** — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` in non-test code of the hot-path crates
//!   (`core`, `kvcache`, `kernels`, `sim`). Fallible paths must use the
//!   typed `PensieveError` hierarchy; deliberate documented panics carry
//!   a reasoned suppression.
//! - **r1-index** — no unchecked `x[i]` indexing/slicing in the cache
//!   hot-path files (`kvcache/src/tiered.rs`, `kvcache/src/store.rs`):
//!   the swap-in/eviction path must be total.
//! - **r2-hash-iter** — no iteration over `HashMap`/`HashSet` in
//!   scheduler/cache/kernel code: eviction victim selection and
//!   partition merges are bit-identity-tested, so walk order must be
//!   deterministic (`BTreeMap` or explicitly sorted snapshots).
//! - **r2-float-reduce** — no `.sum::<f32>()`-style float reductions
//!   inside parallel closures (`map_partitions`, `spawn`): float
//!   addition does not commute, so cross-thread reduction order must be
//!   fixed by sequential merges.
//! - **r3-raw-spawn** — no raw `thread::spawn` outside the sanctioned
//!   concurrency layers (`shims/crossbeam`, `core::workers`).
//! - **r3-adhoc-scope** — no ad-hoc `thread::scope` fork/join outside
//!   the same sanctioned layers: scoped spawns re-pay thread startup on
//!   every call and bypass the persistent pool's accounting, so all
//!   data parallelism must route through `crossbeam::pool::Pool`.
//! - **r3-lock-order** — the static graph of nested `.lock()`
//!   acquisitions must be acyclic across the workspace.
//! - **r4-suppression** — `// lint:allow(<rule>): <reason>` is the only
//!   suppression form; a missing or empty reason, or an unknown rule
//!   id, is itself a violation.
//!
//! The engine is token-stream based (see [`crate::lexer`]): it tracks
//! just enough context — `#[cfg(test)]` regions, brace depth, attribute
//! boundaries — to apply the rules without a full parse.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};

/// Every rule id the suppression grammar accepts.
pub const RULE_IDS: &[&str] = &[
    "r1-panic",
    "r1-index",
    "r2-hash-iter",
    "r2-float-reduce",
    "r3-raw-spawn",
    "r3-adhoc-scope",
    "r3-lock-order",
    "r4-suppression",
    "lex-error",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Path the file was analyzed under (workspace-relative).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// A nested lock acquisition observed while one lock is held.
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    acquired: String,
    path: String,
    line: u32,
}

/// Final analysis results for a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations surviving suppression, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Violations silenced by a reasoned suppression.
    pub suppressed: usize,
}

/// Accumulates per-file findings and the cross-file lock graph.
#[derive(Debug, Default)]
pub struct Analyzer {
    violations: Vec<Violation>,
    lock_edges: Vec<LockEdge>,
    files_scanned: usize,
    suppressed: usize,
}

/// Paths are matched workspace-relative with forward slashes.
fn norm(path: &str) -> String {
    path.replace('\\', "/").trim_start_matches("./").to_string()
}

/// Crates whose non-test code must be panic-free (r1-panic).
fn in_panic_scope(p: &str) -> bool {
    [
        "crates/core/src/",
        "crates/kvcache/src/",
        "crates/kernels/src/",
        "crates/sim/src/",
        "crates/obs/src/",
        "crates/cluster/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// Cache hot-path files where unchecked indexing is banned (r1-index).
fn in_index_scope(p: &str) -> bool {
    p == "crates/kvcache/src/tiered.rs" || p == "crates/kvcache/src/store.rs"
}

/// Scheduler/cache/kernel code where hash-order iteration is banned.
fn in_hash_scope(p: &str) -> bool {
    [
        "crates/core/src/",
        "crates/kvcache/src/",
        "crates/kernels/src/",
        "crates/obs/src/",
        "crates/cluster/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

/// The sanctioned spawn sites: the vendored concurrency shim and the
/// tensor-parallel worker fleet.
fn spawn_allowed(p: &str) -> bool {
    p.starts_with("shims/crossbeam/") || p == "crates/core/src/workers.rs"
}

/// Whole-file test-ish locations: integration tests, benches, examples.
fn is_test_path(p: &str) -> bool {
    p.starts_with("tests/")
        || p.starts_with("examples/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
}

/// A parsed `lint:allow` suppression.
#[derive(Debug)]
struct Suppression {
    rule: String,
    /// Line of the suppression comment itself.
    line: u32,
    /// Line of the first code token after the comment (the statement the
    /// suppression annotates); equals `line` for trailing comments.
    target_line: u32,
    file_level: bool,
}

impl Analyzer {
    /// Creates an empty analyzer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes one file. `path` determines rule scoping; fixture files
    /// may override it with a `// analyzer-fixture: <path>` header so
    /// the corpus exercises scoped rules from outside the scoped trees.
    pub fn analyze_file(&mut self, path: &str, src: &str) {
        self.files_scanned += 1;
        let real_path = norm(path);
        let toks = match lex(src) {
            Ok(t) => t,
            Err(e) => {
                self.violations.push(Violation {
                    rule: "lex-error",
                    path: real_path,
                    line: e.line,
                    msg: format!("cannot tokenize file: {}", e.msg),
                });
                return;
            }
        };
        // Virtual path header, for the fixture corpus.
        let scope_path = toks
            .first()
            .filter(|t| t.kind == TokKind::LineComment)
            .and_then(|t| t.text.strip_prefix("// analyzer-fixture:"))
            .map_or_else(|| real_path.clone(), |v| norm(v.trim()));

        let (sups, mut sup_violations) = collect_suppressions(&toks);
        let test_mask = compute_test_mask(&toks, &scope_path);

        let mut found = Vec::new();
        if in_panic_scope(&scope_path) {
            rule_panic(&toks, &test_mask, &mut found);
        }
        if in_index_scope(&scope_path) {
            rule_index(&toks, &test_mask, &mut found);
        }
        if in_hash_scope(&scope_path) {
            rule_hash_iter(&toks, &test_mask, &mut found);
            rule_float_reduce(&toks, &test_mask, &mut found);
        }
        if !spawn_allowed(&scope_path) {
            rule_raw_spawn(&toks, &test_mask, &mut found);
            rule_adhoc_scope(&toks, &test_mask, &mut found);
        }
        self.collect_lock_edges(&toks, &real_path);

        // Apply suppressions: file-level allows silence the whole file;
        // a line-level allow covers its own line and the next line (so
        // the comment can trail the code or sit on its own line above).
        let file_allows: BTreeSet<&str> = sups
            .iter()
            .filter(|s| s.file_level)
            .map(|s| s.rule.as_str())
            .collect();
        let mut line_allows: BTreeMap<(u32, &str), ()> = BTreeMap::new();
        for s in sups.iter().filter(|s| !s.file_level) {
            line_allows.insert((s.line, s.rule.as_str()), ());
            line_allows.insert((s.target_line, s.rule.as_str()), ());
        }
        for v in found {
            let line_hit = line_allows.contains_key(&(v.line, v.rule));
            if file_allows.contains(v.rule) || line_hit {
                self.suppressed += 1;
            } else {
                self.violations.push(Violation {
                    path: real_path.clone(),
                    ..v
                });
            }
        }
        for v in &mut sup_violations {
            v.path.clone_from(&real_path);
        }
        self.violations.append(&mut sup_violations);
    }

    /// Finishes the run: detects lock-order cycles across every analyzed
    /// file and returns the sorted report.
    #[must_use]
    pub fn finish(mut self) -> Report {
        self.detect_lock_cycles();
        self.violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        Report {
            violations: self.violations,
            files_scanned: self.files_scanned,
            suppressed: self.suppressed,
        }
    }

    /// Walks function bodies recording which locks are held when another
    /// `.lock()` is acquired. Heuristic: a guard bound with `let` is
    /// held until its enclosing block closes; a temporary guard lives
    /// for its statement only. Receivers are identified by their token
    /// text (`self.inner.state`), which is exactly the granularity the
    /// lock-order convention is written in.
    fn collect_lock_edges(&mut self, toks: &[Tok], path: &str) {
        let code: Vec<(usize, &Tok)> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
            .collect();
        let mut depth: i32 = 0;
        // (receiver, depth at binding); cleared when depth drops below.
        let mut held: Vec<(String, i32)> = Vec::new();
        for w in 0..code.len() {
            let t = code[w].1;
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => {
                    depth -= 1;
                    held.retain(|(_, d)| *d <= depth);
                }
                // A new top-level item resets the held set (closures keep
                // it — they run on the same thread with guards live).
                (TokKind::Ident, "fn") if depth == 0 => held.clear(),
                (TokKind::Ident, "lock") => {
                    let is_call = w >= 1
                        && code[w - 1].1.text == "."
                        && code.get(w + 1).is_some_and(|(_, n)| n.text == "(");
                    if !is_call {
                        continue;
                    }
                    // Receiver: the longest ident/`.` chain before `.lock`.
                    let mut parts: Vec<&str> = Vec::new();
                    let mut j = w - 1; // points at the `.`
                    while j >= 1 {
                        let prev = code[j - 1].1;
                        match prev.kind {
                            TokKind::Ident => parts.push(&prev.text),
                            TokKind::Punct if prev.text == "." => {}
                            _ => break,
                        }
                        j -= 1;
                    }
                    parts.reverse();
                    if parts.is_empty() {
                        continue;
                    }
                    let recv = parts.join(".");
                    for (h, _) in &held {
                        if *h != recv {
                            self.lock_edges.push(LockEdge {
                                held: h.clone(),
                                acquired: recv.clone(),
                                path: path.to_string(),
                                line: t.line,
                            });
                        }
                    }
                    // Held only if bound: `let [mut] g = recv.lock()...`.
                    // The preceding-token check rejects `==` comparisons.
                    let bound = j >= 2
                        && code[j - 1].1.text == "="
                        && code[j - 2].1.kind == TokKind::Ident
                        && code[j - 2].1.text != "=";
                    if bound {
                        held.push((recv, depth));
                    }
                }
                _ => {}
            }
        }
    }

    /// DFS over the acquisition graph; every distinct cycle becomes one
    /// violation at the edge that closes it.
    fn detect_lock_cycles(&mut self) {
        let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in &self.lock_edges {
            adj.entry(&e.held).or_default().push(e);
        }
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut cycle_violations = Vec::new();
        for start in adj.keys().copied().collect::<Vec<_>>() {
            // Path-stack DFS from each node, small graphs only.
            let mut stack: Vec<(&str, Vec<String>)> = vec![(start, vec![start.to_string()])];
            while let Some((node, path_nodes)) = stack.pop() {
                for e in adj.get(node).map_or(&[][..], |v| v) {
                    if e.acquired == start {
                        let mut key = path_nodes.clone();
                        key.sort();
                        if reported.insert(key) {
                            cycle_violations.push(Violation {
                                rule: "r3-lock-order",
                                path: e.path.clone(),
                                line: e.line,
                                msg: format!(
                                    "lock-order cycle: {} -> {} closes a cycle through [{}]",
                                    e.held,
                                    e.acquired,
                                    path_nodes.join(" -> ")
                                ),
                            });
                        }
                    } else if !path_nodes.contains(&e.acquired) && path_nodes.len() < 16 {
                        let mut p = path_nodes.clone();
                        p.push(e.acquired.clone());
                        stack.push((&e.acquired, p));
                    }
                }
            }
        }
        self.violations.append(&mut cycle_violations);
    }
}

/// Parses every `lint:allow(...)` comment. Returns well-formed
/// suppressions plus r4 violations for malformed ones (bare allows,
/// unknown rule ids).
fn collect_suppressions(toks: &[Tok]) -> (Vec<Suppression>, Vec<Violation>) {
    let mut sups = Vec::new();
    let mut violations = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        // The statement a suppression annotates is the next code token,
        // possibly several comment lines below (multi-line reasons).
        let target_line = toks[ti + 1..]
            .iter()
            .find(|n| n.kind != TokKind::LineComment && n.kind != TokKind::BlockComment)
            .map_or(t.line, |n| n.line);
        // Strip the comment opener; doc comments (`///`, `//!`, `/**`,
        // `/*!`) are prose, never suppressions — a doc sentence that
        // *mentions* the grammar must not activate it.
        let body = if let Some(rest) = t.text.strip_prefix("//") {
            if rest.starts_with('/') || rest.starts_with('!') {
                continue;
            }
            rest
        } else if let Some(rest) = t.text.strip_prefix("/*") {
            if rest.starts_with('*') || rest.starts_with('!') {
                continue;
            }
            rest.trim_end_matches("*/")
        } else {
            continue;
        };
        // The marker must lead the comment (modulo whitespace): the
        // suppression is the comment's whole job, not an aside.
        let body = body.trim_start();
        let (after_marker, file_level) = if let Some(r) = body.strip_prefix("lint:allow-file") {
            (r, true)
        } else if let Some(r) = body.strip_prefix("lint:allow") {
            (r, false)
        } else {
            continue;
        };
        let Some(after) = after_marker.strip_prefix('(') else {
            violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: "malformed suppression: expected `(` after `lint:allow`".to_string(),
            });
            continue;
        };
        let Some(close) = after.find(')') else {
            violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: "malformed suppression: missing `)` after rule id".to_string(),
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        if !RULE_IDS.contains(&rule.as_str()) {
            violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: format!("suppression names unknown rule `{rule}`"),
            });
            continue;
        }
        let rest = after[close + 1..].trim_start();
        let reason = rest.strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => sups.push(Suppression {
                rule,
                line: t.line,
                target_line,
                file_level,
            }),
            _ => violations.push(Violation {
                rule: "r4-suppression",
                path: String::new(),
                line: t.line,
                msg: format!(
                    "bare suppression of `{rule}`: a written reason is mandatory \
                     (`// lint:allow({rule}): <why this is sound>`)"
                ),
            }),
        }
    }
    (sups, violations)
}

/// Marks every token inside test code: `#[cfg(test)]` / `#[test]`
/// items, and whole files under test-ish paths.
fn compute_test_mask(toks: &[Tok], scope_path: &str) -> Vec<bool> {
    let mut mask = vec![is_test_path(scope_path); toks.len()];
    if mask.first().copied().unwrap_or(false) {
        return mask;
    }
    let n = toks.len();
    let mut i = 0;
    while i < n {
        let is_attr_start = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[");
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Collect the attribute tokens between the matching brackets.
        let mut j = i + 2;
        let mut brackets = 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < n && brackets > 0 {
            match toks[j].text.as_str() {
                "[" => brackets += 1,
                "]" => brackets -= 1,
                "test" if toks[j].kind == TokKind::Ident => has_test = true,
                "not" if toks[j].kind == TokKind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Mark from the attribute through the end of the annotated item:
        // skip any further attributes, then either a `;`-terminated item
        // or a braced body.
        let start = i;
        let mut k = j;
        loop {
            // Skip subsequent attributes wholesale.
            if k < n && toks[k].text == "#" && toks.get(k + 1).is_some_and(|t| t.text == "[") {
                let mut b = 1;
                k += 2;
                while k < n && b > 0 {
                    match toks[k].text.as_str() {
                        "[" => b += 1,
                        "]" => b -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            break;
        }
        let mut braces = 0;
        let mut entered = false;
        while k < n {
            match toks[k].text.as_str() {
                "{" => {
                    braces += 1;
                    entered = true;
                }
                "}" => {
                    braces -= 1;
                    if entered && braces == 0 {
                        k += 1;
                        break;
                    }
                }
                ";" if !entered => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(k.min(n)).skip(start) {
            *m = true;
        }
        i = k;
    }
    mask
}

/// Non-comment code tokens with their original indices.
fn code_indices(toks: &[Tok]) -> Vec<usize> {
    (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::LineComment && toks[i].kind != TokKind::BlockComment)
        .collect()
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// r1-panic: `.unwrap()`/`.expect(` calls and panic-family macros.
fn rule_panic(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if PANIC_METHODS.contains(&name) {
            let after_dot = w >= 1 && toks[code[w - 1]].text == ".";
            let called = code.get(w + 1).is_some_and(|&k| toks[k].text == "(");
            if after_dot && called {
                out.push(Violation {
                    rule: "r1-panic",
                    path: String::new(),
                    line: toks[i].line,
                    msg: format!(
                        "`.{name}()` on a hot path: convert to a typed `PensieveError` \
                         or annotate the documented invariant"
                    ),
                });
            }
        } else if PANIC_MACROS.contains(&name)
            && code.get(w + 1).is_some_and(|&k| toks[k].text == "!")
        {
            out.push(Violation {
                rule: "r1-panic",
                path: String::new(),
                line: toks[i].line,
                msg: format!("`{name}!` on a hot path: return a typed error instead"),
            });
        }
    }
}

/// r1-index: `expr[...]` indexing/slicing in the cache hot-path files.
fn rule_index(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].text != "[" || toks[i].kind != TokKind::Punct {
            continue;
        }
        let Some(&p) = w.checked_sub(1).and_then(|k| code.get(k)) else {
            continue;
        };
        let prev = &toks[p];
        let indexes = prev.kind == TokKind::Ident
            || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]" | "?"));
        if indexes {
            out.push(Violation {
                rule: "r1-index",
                path: String::new(),
                line: toks[i].line,
                msg: "unchecked index/slice on a cache hot path: use `.get()` and a \
                      typed error (or a reasoned suppression for a proven invariant)"
                    .to_string(),
            });
        }
    }
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers declared as `HashMap`/`HashSet` in this file: field and
/// binding type annotations (`name: HashMap<..>`) and constructor
/// bindings (`let name = HashMap::new()`).
fn hash_names(toks: &[Tok]) -> BTreeSet<String> {
    let code = code_indices(toks);
    let mut names = BTreeSet::new();
    for (w, &i) in code.iter().enumerate() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if toks[i].text != "HashMap" && toks[i].text != "HashSet" {
            continue;
        }
        // Walk back over an optional `std::collections::` path prefix.
        let mut j = w;
        while j >= 1 {
            let prev = &toks[code[j - 1]];
            let is_path = prev.text == "::"
                || (prev.kind == TokKind::Ident
                    && (prev.text == "std" || prev.text == "collections"));
            if is_path {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 {
            let sep = &toks[code[j - 1]];
            let name = &toks[code[j - 2]];
            let decl = sep.text == ":" && name.kind == TokKind::Ident;
            let ctor_bind = sep.text == "=" && name.kind == TokKind::Ident;
            if (decl || ctor_bind) && name.text != "use" {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// r2-hash-iter: iteration over identifiers known to be hash
/// collections, via iterator methods or `for .. in` loops.
fn rule_hash_iter(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let names = hash_names(toks);
    if names.is_empty() {
        return;
    }
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` and friends.
        if names.contains(&toks[i].text) {
            let dot = code.get(w + 1).is_some_and(|&k| toks[k].text == ".");
            let method = code.get(w + 2).map(|&k| toks[k].text.as_str());
            let called = code.get(w + 3).is_some_and(|&k| toks[k].text == "(");
            if dot && called && method.is_some_and(|m| HASH_ITER_METHODS.contains(&m)) {
                out.push(Violation {
                    rule: "r2-hash-iter",
                    path: String::new(),
                    line: toks[i].line,
                    msg: format!(
                        "iteration over hash-ordered `{}`: use a `BTreeMap`/sorted \
                         snapshot so eviction/merge order is deterministic",
                        toks[i].text
                    ),
                });
            }
        }
        // `for pat in [&[mut]] [self.]name {`.
        if toks[i].text == "for" {
            let mut k = w + 1;
            let mut saw_in = false;
            while k < code.len() && k < w + 24 {
                if toks[code[k]].text == "in" {
                    saw_in = true;
                    break;
                }
                k += 1;
            }
            if !saw_in {
                continue;
            }
            // Expression tokens between `in` and the loop body `{`.
            let mut expr: Vec<&Tok> = Vec::new();
            let mut m = k + 1;
            while m < code.len() && toks[code[m]].text != "{" && expr.len() < 12 {
                expr.push(&toks[code[m]]);
                m += 1;
            }
            // Simple chains only: [& [mut]] (ident .)* ident
            let chain_ok = expr
                .iter()
                .all(|t| t.kind == TokKind::Ident || matches!(t.text.as_str(), "&" | "." | "mut"));
            let last_ident = expr.iter().rev().find(|t| t.kind == TokKind::Ident);
            if chain_ok && last_ident.is_some_and(|t| names.contains(&t.text)) {
                out.push(Violation {
                    rule: "r2-hash-iter",
                    path: String::new(),
                    line: toks[i].line,
                    msg: format!(
                        "`for` over hash-ordered `{}`: iteration order is \
                         nondeterministic across runs",
                        last_ident.map_or("", |t| t.text.as_str())
                    ),
                });
            }
        }
    }
}

/// r2-float-reduce: `.sum::<f32>()` / `.product::<f64>()` inside the
/// argument list of a parallel combinator (`map_partitions`, `spawn`).
fn rule_float_reduce(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    let mut depth = 0i32;
    // Paren depths at which a parallel call's argument list opened.
    let mut par_depths: Vec<i32> = Vec::new();
    for (w, &i) in code.iter().enumerate() {
        match toks[i].text.as_str() {
            "(" => {
                let callee = w
                    .checked_sub(1)
                    .map(|k| toks[code[k]].text.as_str())
                    .unwrap_or("");
                if callee == "map_partitions" || callee == "spawn" {
                    par_depths.push(depth);
                }
                depth += 1;
            }
            ")" => {
                depth -= 1;
                if par_depths.last().is_some_and(|d| *d >= depth) {
                    par_depths.pop();
                }
            }
            "sum" | "product" if toks[i].kind == TokKind::Ident => {
                if test_mask[i] || par_depths.is_empty() {
                    continue;
                }
                let turbofish_float = code.get(w + 1).is_some_and(|&k| toks[k].text == "::")
                    && code.get(w + 2).is_some_and(|&k| toks[k].text == "<")
                    && code
                        .get(w + 3)
                        .is_some_and(|&k| toks[k].text == "f32" || toks[k].text == "f64");
                let after_dot = w >= 1 && toks[code[w - 1]].text == ".";
                if after_dot && turbofish_float {
                    out.push(Violation {
                        rule: "r2-float-reduce",
                        path: String::new(),
                        line: toks[i].line,
                        msg: format!(
                            "float `.{}` inside a parallel closure: reduction order \
                             is not fixed; merge partials sequentially",
                            toks[i].text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// r3-raw-spawn: `thread::spawn` outside the sanctioned layers.
fn rule_raw_spawn(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident || toks[i].text != "thread" {
            continue;
        }
        let sep = code.get(w + 1).is_some_and(|&k| toks[k].text == "::");
        let spawn = code.get(w + 2).is_some_and(|&k| toks[k].text == "spawn");
        if sep && spawn {
            out.push(Violation {
                rule: "r3-raw-spawn",
                path: String::new(),
                line: toks[i].line,
                msg: "raw `thread::spawn`: route threading through \
                      `shims/crossbeam` scopes or `core::workers` so shutdown \
                      and panics stay contained"
                    .to_string(),
            });
        }
    }
}

/// r3-adhoc-scope: `thread::scope` fork/join outside the sanctioned
/// layers. Scoped spawns re-pay thread startup per call and dodge the
/// persistent pool's task/utilization accounting.
fn rule_adhoc_scope(toks: &[Tok], test_mask: &[bool], out: &mut Vec<Violation>) {
    let code = code_indices(toks);
    for (w, &i) in code.iter().enumerate() {
        if test_mask[i] || toks[i].kind != TokKind::Ident || toks[i].text != "thread" {
            continue;
        }
        let sep = code.get(w + 1).is_some_and(|&k| toks[k].text == "::");
        let scope = code.get(w + 2).is_some_and(|&k| toks[k].text == "scope");
        if sep && scope {
            out.push(Violation {
                rule: "r3-adhoc-scope",
                path: String::new(),
                line: toks[i].line,
                msg: "ad-hoc `thread::scope`: fork/join must go through the \
                      persistent `crossbeam::pool::Pool` so workers are \
                      reused and task accounting stays accurate"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let mut a = Analyzer::new();
        a.analyze_file(path, src);
        a.finish().violations
    }

    #[test]
    fn panics_flagged_in_scope_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(run("crates/core/src/engine.rs", src).len(), 1);
        assert!(run("crates/workload/src/driver.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { panic!(\"x\") }\n}\n";
        assert!(run("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_are_exempt() {
        let src = "/// cache.append(c).unwrap();\nfn ok() {}\n";
        assert!(run("crates/kvcache/src/tiered.rs", src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(r1-panic): \
                   documented construction-time invariant\n    x.unwrap()\n}\n";
        assert!(run("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn bare_suppression_is_a_violation() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(r1-panic)\n    x.unwrap()\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}"); // bare allow + unsuppressed unwrap
        assert!(v.iter().any(|v| v.rule == "r4-suppression"));
        assert!(v.iter().any(|v| v.rule == "r1-panic"));
    }

    #[test]
    fn unknown_rule_in_suppression_is_a_violation() {
        let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "r4-suppression");
    }

    #[test]
    fn hash_iteration_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { convs: HashMap<u64, u32> }\n\
                   impl S { fn walk(&self) { for (k, v) in &self.convs { let _ = (k, v); } \
                   let _n = self.convs.keys().count(); } }\n";
        let v = run("crates/kvcache/src/tiered.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r2-hash-iter").count(), 2);
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "use std::collections::BTreeMap;\nstruct S { convs: BTreeMap<u64, u32> }\n\
                   impl S { fn walk(&self) { for (_k, _v) in &self.convs {} } }\n";
        assert!(run("crates/kvcache/src/tiered.rs", src).is_empty());
    }

    #[test]
    fn lock_cycle_detected() {
        let src = "fn ab(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n\
                   fn ba(a: &M, b: &M) { let g = b.lock(); let h = a.lock(); }\n";
        let v = run("crates/core/src/anywhere.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r3-lock-order").count(), 1);
    }

    #[test]
    fn nested_same_order_is_fine() {
        let src = "fn ab(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n\
                   fn also_ab(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n";
        assert!(run("crates/core/src/anywhere.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_outside_sanctioned_files() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(run("crates/sim/src/gpu.rs", src).len(), 1);
        assert!(run("crates/core/src/workers.rs", src).is_empty());
        assert!(run("shims/crossbeam/src/lib.rs", src).is_empty());
    }

    #[test]
    fn adhoc_scope_flagged_outside_sanctioned_files() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        let v = run("crates/kernels/src/ops.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r3-adhoc-scope").count(), 1);
        assert!(run("shims/crossbeam/src/lib.rs", src).is_empty());
        assert!(run("crates/core/src/workers.rs", src).is_empty());
        // Test code may still fork ad hoc.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { \
                        std::thread::scope(|s| { let _ = s; }); }\n}\n";
        assert!(run("crates/kernels/src/ops.rs", test_src).is_empty());
    }

    #[test]
    fn float_reduce_inside_parallel_closure() {
        let src = "fn f(p: &P, xs: &[f32]) { p.map_partitions(|c| \
                   c.iter().map(|x| x * x).sum::<f32>()); }\n";
        let v = run("crates/kernels/src/ops.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "r2-float-reduce").count(), 1);
        // The same reduction outside any parallel combinator is fine.
        let seq = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
        assert!(run("crates/kernels/src/ops.rs", seq).is_empty());
    }

    #[test]
    fn fixture_header_overrides_scope() {
        let src = "// analyzer-fixture: crates/core/src/hot.rs\nfn f(x: Option<u32>) \
                   -> u32 { x.unwrap() }\n";
        let v = run("crates/analyzer/fixtures/bad/p.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "r1-panic");
    }
}
