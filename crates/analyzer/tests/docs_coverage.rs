//! Keeps `docs/ANALYZER.md` in sync with the rule engine: every id in
//! `RULE_IDS` must appear (backticked) in the reference doc. Adding a
//! rule without documenting it fails this test.

use pensieve_analyzer::RULE_IDS;

fn doc_text() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("docs")
        .join("ANALYZER.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("docs/ANALYZER.md must exist ({e})"))
}

#[test]
fn every_rule_id_is_documented() {
    let doc = doc_text();
    let missing: Vec<&str> = RULE_IDS
        .iter()
        .filter(|r| !doc.contains(&format!("`{r}`")))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "docs/ANALYZER.md is missing rule ids: {missing:?}"
    );
}

#[test]
fn every_documented_rule_has_a_table_row() {
    // The summary table is the at-a-glance contract: each rule id must
    // appear in a `| \`rule\` |` row, not just in prose.
    let doc = doc_text();
    let missing: Vec<&str> = RULE_IDS
        .iter()
        .filter(|r| !doc.contains(&format!("| `{r}` |")))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "docs/ANALYZER.md summary table is missing rows for: {missing:?}"
    );
}
