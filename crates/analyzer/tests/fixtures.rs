//! Runs the analyzer over its own fixture corpus.
//!
//! Files under `fixtures/good/` must produce no violations. Files under
//! `fixtures/bad/` carry `//~ <rule>` expectation markers (or `//~^` for
//! the previous line, rustc-UI-test style) and must produce *exactly*
//! the expected `(line, rule)` set — no more, no fewer.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use pensieve_analyzer::{Analyzer, Violation};

fn fixture_files(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures under {}", dir.display());
    files
}

fn analyze(path: &Path, src: &str) -> Vec<Violation> {
    let mut a = Analyzer::new();
    // The analysis path is only used for reporting; scoping comes from
    // the `// analyzer-fixture:` header each fixture carries.
    a.analyze_file(&path.file_name().unwrap().to_string_lossy(), src);
    a.finish().violations
}

/// Parses `//~ rule [rule ...]` (this line) and `//~^ rule` (previous
/// line) markers into an expected `(line, rule)` set.
fn expectations(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let rest = &line[pos + 3..];
        let (target, rest) = match rest.strip_prefix('^') {
            Some(r) => (lineno - 1, r),
            None => (lineno, rest),
        };
        for rule in rest.split_whitespace() {
            out.insert((target, rule.to_string()));
        }
    }
    out
}

#[test]
fn good_fixtures_are_clean() {
    for path in fixture_files("good") {
        let src = std::fs::read_to_string(&path).unwrap();
        let violations = analyze(&path, &src);
        assert!(
            violations.is_empty(),
            "{} should be clean, got: {violations:#?}",
            path.display()
        );
    }
}

#[test]
fn bad_fixtures_report_exactly_the_marked_violations() {
    for path in fixture_files("bad") {
        let src = std::fs::read_to_string(&path).unwrap();
        let expected = expectations(&src);
        assert!(
            !expected.is_empty(),
            "{} has no //~ markers",
            path.display()
        );
        let got: BTreeSet<(u32, String)> = analyze(&path, &src)
            .into_iter()
            .map(|v| (v.line, v.rule.to_string()))
            .collect();
        assert_eq!(
            got,
            expected,
            "{}: reported violations differ from //~ markers\nmissing: {:?}\nunexpected: {:?}",
            path.display(),
            expected.difference(&got).collect::<Vec<_>>(),
            got.difference(&expected).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn every_rule_id_is_exercised_by_the_bad_corpus() {
    let mut seen = BTreeSet::new();
    for path in fixture_files("bad") {
        let src = std::fs::read_to_string(&path).unwrap();
        for v in analyze(&path, &src) {
            seen.insert(v.rule);
        }
    }
    for rule in [
        "r1-panic",
        "r1-index",
        "r2-hash-iter",
        "r2-float-reduce",
        "r2-wall-clock",
        "r2-ambient-rng",
        "r3-raw-spawn",
        "r3-adhoc-scope",
        "r3-lock-order",
        "r4-suppression",
        "r5-lock-across-pool",
        "r5-pool-capture",
    ] {
        assert!(seen.contains(rule), "no bad fixture triggers {rule}");
    }
}
