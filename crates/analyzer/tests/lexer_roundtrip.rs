//! Property test: rendering a token stream and re-lexing it reproduces
//! the same `(kind, text)` sequence.
//!
//! The vocabulary is chosen adversarially for a hand-rolled lexer: raw
//! and byte strings, nested block comments, lifetimes next to char
//! literals, exponent/hex numbers, and maximal-munch operator prefixes
//! (`<` vs `<<` vs `<<=`).

use pensieve_analyzer::lexer::{lex, render, TokKind};
use proptest::prelude::*;

/// Every entry must lex, in isolation and in any space-separated
/// sequence, to exactly one token of the given kind.
fn vocab() -> Vec<(TokKind, &'static str)> {
    vec![
        (TokKind::Ident, "unwrap"),
        (TokKind::Ident, "fn"),
        (TokKind::Ident, "r"),
        (TokKind::Ident, "b"),
        (TokKind::Ident, "_x1"),
        (TokKind::Ident, "HashMap"),
        (TokKind::Lifetime, "'a"),
        (TokKind::Lifetime, "'static"),
        (TokKind::Lifetime, "'_"),
        (TokKind::Number, "0"),
        (TokKind::Number, "42_000u64"),
        (TokKind::Number, "1.5"),
        (TokKind::Number, "1e-5"),
        (TokKind::Number, "2.5E+3"),
        (TokKind::Number, "0xFF_u8"),
        (TokKind::Number, "0b1010"),
        (TokKind::Str, "\"plain\""),
        (TokKind::Str, "\"esc \\\" aped\""),
        (TokKind::Str, "r\"raw\""),
        (TokKind::Str, "r#\"raw \" inner\"#"),
        (TokKind::Str, "b\"bytes\""),
        (TokKind::Str, "br#\"raw bytes\"#"),
        (TokKind::Char, "'x'"),
        (TokKind::Char, "'\\n'"),
        (TokKind::Char, "'\\''"),
        (TokKind::Char, "'\\u{41}'"),
        (TokKind::Char, "b'q'"),
        (TokKind::LineComment, "// a line comment"),
        (TokKind::LineComment, "/// doc with code: x.unwrap()"),
        (TokKind::BlockComment, "/* flat */"),
        (TokKind::BlockComment, "/* nested /* deeper */ ok */"),
        (TokKind::Punct, "::"),
        (TokKind::Punct, "..="),
        (TokKind::Punct, "..."),
        (TokKind::Punct, "<<="),
        (TokKind::Punct, "<<"),
        (TokKind::Punct, "<"),
        (TokKind::Punct, "=="),
        (TokKind::Punct, "="),
        (TokKind::Punct, "->"),
        (TokKind::Punct, "{"),
        (TokKind::Punct, "}"),
        (TokKind::Punct, "("),
        (TokKind::Punct, ")"),
        (TokKind::Punct, "#"),
        (TokKind::Punct, "&&"),
        (TokKind::Punct, "&"),
        (TokKind::Punct, "!"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lex_render_roundtrip(
        picks in prop::collection::vec(prop::sample::select(vocab()), 0..40),
    ) {
        let src: String = picks
            .iter()
            .map(|(k, t)| {
                // render() appends the newline itself for line comments;
                // build the source the same way so they stay terminated.
                if *k == TokKind::LineComment {
                    format!("{t}\n")
                } else {
                    format!("{t} ")
                }
            })
            .collect();
        let toks = lex(&src).expect("vocab streams always lex");
        let got: Vec<(TokKind, String)> =
            toks.iter().map(|t| (t.kind, t.text.clone())).collect();
        let want: Vec<(TokKind, String)> =
            picks.iter().map(|(k, t)| (*k, (*t).to_string())).collect();
        prop_assert_eq!(&got, &want, "source was: {:?}", src);

        // And the canonical round trip: render(lex(s)) lexes identically.
        let again = lex(&render(&toks)).expect("rendered stream lexes");
        let got2: Vec<(TokKind, String)> =
            again.iter().map(|t| (t.kind, t.text.clone())).collect();
        prop_assert_eq!(&got2, &want, "rendered was: {:?}", render(&toks));
    }

    #[test]
    fn line_numbers_match_newlines_seen(
        picks in prop::collection::vec(prop::sample::select(vocab()), 1..20),
    ) {
        let src: String = picks
            .iter()
            .map(|(k, t)| {
                if *k == TokKind::LineComment {
                    format!("{t}\n")
                } else {
                    format!("{t}\n ")
                }
            })
            .collect();
        let toks = lex(&src).expect("vocab streams always lex");
        // Token i starts on line i+1: one newline after every token.
        for (i, t) in toks.iter().enumerate() {
            prop_assert_eq!(t.line, (i + 1) as u32);
        }
    }
}
