//! Property tests: the scope-tree pass is *total* — it never panics and
//! always produces a well-formed tree — on arbitrary brace-balanced
//! token streams, and stays total even when the balance is destroyed.
//!
//! The vocabulary is chosen adversarially for the closure heuristic and
//! binder collection: pipes next to `||`, `move`/`let`/`for`/`fn`
//! keywords in odd positions, `->` return arrows, path separators, and
//! stray pattern punctuation.

use pensieve_analyzer::lexer::lex;
use pensieve_analyzer::{ScopeKind, ScopeTree};
use proptest::prelude::*;

/// Atoms that never open or close a delimiter themselves.
const ATOMS: &[&str] = &[
    "x",
    "acc",
    "pool",
    "move",
    "let",
    "mut",
    "for",
    "in",
    "fn",
    "f",
    "return",
    "else",
    "SplitMix64",
    "self",
    "|",
    "||",
    ",",
    ";",
    "=",
    "==",
    "=>",
    "->",
    "::",
    ".",
    "..",
    "..=",
    "&",
    "*",
    ":",
    "0",
    "42",
    "1.5",
    "'a",
    "\"s\"",
    "#",
    "!",
    "?",
    "+=",
    "<",
    ">",
];

/// Opcode space: one code per atom, then open-brace/paren/bracket, then
/// "close the innermost group".
const OPS: usize = ATOMS.len() + 4;

/// Interprets sampled opcodes as a delimiter-balanced token stream:
/// opens push, the close opcode pops the matching delimiter, and every
/// group still open at the end is closed. Balance holds by
/// construction for any opcode sequence.
fn build_balanced(ops: &[usize]) -> String {
    let mut out: Vec<&'static str> = Vec::new();
    let mut stack: Vec<&'static str> = Vec::new();
    for &op in ops {
        if let Some(&atom) = ATOMS.get(op) {
            out.push(atom);
        } else {
            match op - ATOMS.len() {
                0 => {
                    out.push("{");
                    stack.push("}");
                }
                1 => {
                    out.push("(");
                    stack.push(")");
                }
                2 => {
                    out.push("[");
                    stack.push("]");
                }
                _ => {
                    if let Some(close) = stack.pop() {
                        out.push(close);
                    }
                }
            }
        }
    }
    while let Some(close) = stack.pop() {
        out.push(close);
    }
    out.join(" ")
}

/// Structural invariants every build must satisfy, balanced or not.
fn assert_well_formed(src: &str) {
    let toks = lex(src).expect("vocab streams always lex");
    let tree = ScopeTree::build(&toks);
    let n = tree.code().len();
    let scopes = tree.scopes();
    assert!(!scopes.is_empty(), "root scope always exists");
    assert_eq!(scopes[0].kind, ScopeKind::Root);
    for (id, s) in scopes.iter().enumerate() {
        assert!(s.start <= s.end, "scope {id} has start > end");
        assert!(s.end <= n, "scope {id} ends past the stream");
        if id > 0 {
            assert!(s.parent < id, "scope {id} has a forward parent");
            let p = &scopes[s.parent];
            assert!(
                p.start <= s.start && s.end <= p.end,
                "scope {id} escapes its parent"
            );
        }
    }
    for pos in 0..n {
        let inner = tree.innermost_at(pos);
        assert!(inner < scopes.len(), "innermost_at out of range");
        assert!(tree.enclosing_end(pos) <= n, "enclosing_end past stream");
        // Lookups are total for any name, declared or not.
        let _ = tree.declared_within(inner, 0, "x");
        let _ = tree.declared_within(inner, 0, "no_such_name");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn balanced_streams_build_well_formed_trees(
        ops in prop::collection::vec(0usize..OPS, 0..160),
    ) {
        assert_well_formed(&build_balanced(&ops));
    }

    #[test]
    fn unbalanced_streams_never_panic(
        ops in prop::collection::vec(0usize..OPS, 0..80),
        extra in prop::collection::vec(0usize..6, 1..8),
    ) {
        // Destroy the balance with stray delimiters on either side: the
        // pass must clamp at EOF / ignore over-closes, never panic.
        let delims = ["{", "}", "(", ")", "[", "]"];
        let noise: Vec<&str> = extra.iter().map(|&i| delims[i % 6]).collect();
        let src = build_balanced(&ops);
        assert_well_formed(&format!("{src} {}", noise.join(" ")));
        assert_well_formed(&format!("{} {src}", noise.join(" ")));
    }
}
