//! Threaded tensor-parallel execution: one worker thread per GPU shard
//! (paper Figure 7 and §4.4.2).
//!
//! Pensieve's architecture is a single scheduler plus one worker per GPU;
//! each worker owns its model partition and its slice of the KV cache and
//! executes the scheduler's plan. [`ThreadedTpEngine`] reproduces that
//! structure with real threads: each worker owns a
//! [`ShardRunner`] (weight slices +
//! paged KV pool + block tables) and communicates with the scheduler over
//! crossbeam channels; the scheduler performs the replicated work
//! (embeddings, norms, residuals) and the all-reduce summations between
//! the column- and row-parallel halves of every layer.
//!
//! Partial sums are accumulated in fixed shard order, so results are
//! deterministic and bit-identical to the single-threaded
//! [`TpModel`].

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use pensieve_kernels::model::{SegmentInput, TinyModel};
use pensieve_kernels::ops::argmax;
use pensieve_kernels::paged::OutOfBlocks;
use pensieve_kernels::tp::{ReplicatedWeights, ShardRunner, TpModel};
use pensieve_kernels::Matrix;
use pensieve_model::ModelConfig;

use crate::error::WorkerError;

/// Scheduler-to-worker commands.
enum Cmd {
    BeginPass {
        conv: u64,
        segments: Vec<(usize, usize)>,
    },
    AttnPartial {
        layer: usize,
        xn: Arc<Matrix>,
    },
    MlpPartial {
        layer: usize,
        xn: Arc<Matrix>,
    },
    LmHead {
        hidden: Arc<Vec<f32>>,
    },
    Shutdown,
}

/// Worker-to-scheduler responses, tagged with the worker's shard index.
enum Res {
    Began(Result<(), OutOfBlocks>),
    Partial(usize, Matrix),
    Logits(usize, Vec<f32>),
}

/// A multi-worker tensor-parallel serving engine over real threads.
pub struct ThreadedTpEngine {
    replicated: ReplicatedWeights,
    cmd_txs: Vec<Sender<Cmd>>,
    res_rx: Receiver<Res>,
    handles: Vec<JoinHandle<()>>,
    /// Context length per conversation (scheduler-side bookkeeping).
    contexts: HashMap<u64, usize>,
    /// Each conversation's not-yet-processed final token from its
    /// previous turn.
    tails: HashMap<u64, Vec<u32>>,
    /// Fail-stop flag: set on the first detected shard failure. A fleet
    /// with a dead shard can never complete an all-reduce, and replies
    /// from the surviving shards may still sit in `res_rx`; poisoning
    /// makes every later call fail fast with a typed error instead of
    /// hanging or consuming stale partials.
    poisoned: bool,
    /// Passive trace sink; `None` (the default) records nothing. The
    /// functional engine has no simulated clock, so its `TpPass` events
    /// carry a logical pass counter instead of a timestamp.
    recorder: Option<pensieve_obs::SharedRecorder>,
    /// Forward passes issued, for `TpPass` event numbering.
    pass_count: u64,
}

impl ThreadedTpEngine {
    /// Shards `model` across `num_shards` worker threads.
    ///
    /// # Panics
    ///
    /// Panics under the same divisibility conditions as
    /// [`TpModel::new`].
    #[must_use]
    pub fn new(
        model: &TinyModel,
        num_shards: usize,
        block_size: usize,
        blocks_per_shard: usize,
    ) -> Self {
        Self::with_intra_threads(model, num_shards, block_size, blocks_per_shard, 1)
    }

    /// Like [`ThreadedTpEngine::new`], but each worker additionally fans
    /// its own per-layer shard math (blocked GEMM row partitions,
    /// attention (sequence, KV-head) partitions) out over `intra_threads`
    /// scoped threads.
    ///
    /// The two axes compose: `num_shards` splits the model Megatron-style,
    /// `intra_threads` splits each shard's operators. Results are
    /// bit-identical at every combination — partials are accumulated in
    /// fixed shard order and intra-operator partitions are merged in fixed
    /// partition order.
    ///
    /// # Panics
    ///
    /// Panics under the same divisibility conditions as [`TpModel::new`].
    #[must_use]
    pub fn with_intra_threads(
        model: &TinyModel,
        num_shards: usize,
        block_size: usize,
        blocks_per_shard: usize,
        intra_threads: usize,
    ) -> Self {
        let (replicated, mut shards) =
            TpModel::new(model, num_shards, block_size, blocks_per_shard).into_parts();
        for shard in &mut shards {
            shard.set_threads(intra_threads);
        }
        let (res_tx, res_rx) = unbounded();
        let mut cmd_txs = Vec::with_capacity(num_shards);
        let mut handles = Vec::with_capacity(num_shards);
        for (idx, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx): (Sender<Cmd>, Receiver<Cmd>) = unbounded();
            let res_tx = res_tx.clone();
            cmd_txs.push(tx);
            handles.push(std::thread::spawn(move || {
                worker_loop(idx, &mut shard, &rx, &res_tx)
            }));
        }
        ThreadedTpEngine {
            replicated,
            cmd_txs,
            res_rx,
            handles,
            contexts: HashMap::new(),
            tails: HashMap::new(),
            poisoned: false,
            recorder: None,
            pass_count: 0,
        }
    }

    /// Attaches a trace recorder; each forward pass then records a
    /// `TpPass` event. Recording is passive and does not change results.
    pub fn set_recorder(&mut self, recorder: Option<pensieve_obs::SharedRecorder>) {
        self.recorder = recorder;
    }

    /// Number of worker threads.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.cmd_txs.len()
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        self.replicated.config()
    }

    /// True if a shard failure has been detected; every subsequent call
    /// returns [`WorkerError::ShardDisconnected`] immediately.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Test/chaos hook: shuts down one worker shard as if its process
    /// crashed. The next forward pass detects the dead shard via channel
    /// disconnect and fails with a typed error instead of hanging.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn kill_shard(&mut self, shard: usize) {
        // A send error here means the shard is already gone — the goal
        // state, so it is not an error.
        let _ = self.cmd_txs[shard].send(Cmd::Shutdown);
        if let Some(h) = self.handles.get_mut(shard) {
            // Join so the crash is fully materialized (the worker's
            // command receiver is dropped) before the caller's next
            // pass. JoinHandle::join consumes, so swap in a no-op thread.
            let dead = std::mem::replace(h, std::thread::spawn(|| ()));
            let _ = dead.join();
        }
    }

    /// Sends one command to every shard, detecting dead shards at the
    /// send side.
    fn broadcast(&mut self, mut make: impl FnMut() -> Cmd) -> Result<(), WorkerError> {
        for (i, tx) in self.cmd_txs.iter().enumerate() {
            if tx.send(make()).is_err() {
                self.poisoned = true;
                return Err(WorkerError::ShardDisconnected { shard: Some(i) });
            }
        }
        Ok(())
    }

    /// Receives one response, detecting a fleet-wide disconnect.
    fn recv_res(&mut self) -> Result<Res, WorkerError> {
        self.res_rx.recv().map_err(|_| {
            self.poisoned = true;
            WorkerError::ShardDisconnected { shard: None }
        })
    }

    /// Collects one tagged partial from every worker, summing into shard
    /// order for determinism.
    fn collect_partials(&mut self, tokens: usize, width: usize) -> Result<Matrix, WorkerError> {
        let n = self.cmd_txs.len();
        let mut by_shard: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.recv_res()? {
                Res::Partial(idx, m) => by_shard[idx] = Some(m),
                _ => {
                    self.poisoned = true;
                    return Err(WorkerError::Protocol("expected partial"));
                }
            }
        }
        let mut acc = Matrix::zeros(tokens, width);
        for m in by_shard {
            let Some(m) = m else {
                self.poisoned = true;
                return Err(WorkerError::Protocol("duplicate shard partial"));
            };
            for (a, p) in acc.as_mut_slice().iter_mut().zip(m.as_slice()) {
                *a += p;
            }
        }
        Ok(acc)
    }

    /// One tensor-parallel forward pass over the worker fleet, returning
    /// the last token's logits. Segment semantics match
    /// [`TinyModel::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkerError::OutOfBlocks`] if any worker's KV pool is
    /// exhausted, and [`WorkerError::ShardDisconnected`] if a worker
    /// thread died (detected via channel disconnect — the pass fails with
    /// a typed error instead of hanging on the dead shard's reply). After
    /// a disconnect the engine is poisoned: all later calls fail fast.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    pub fn forward_seq(
        &mut self,
        conv: u64,
        segments: &[SegmentInput],
    ) -> Result<Vec<f32>, WorkerError> {
        assert!(!segments.is_empty());
        if self.poisoned {
            return Err(WorkerError::ShardDisconnected { shard: None });
        }
        let shapes: Vec<(usize, usize)> = segments
            .iter()
            .map(|s| (s.start_pos, s.tokens.len()))
            .collect();
        self.broadcast(|| Cmd::BeginPass {
            conv,
            segments: shapes.clone(),
        })?;
        let mut begin_err: Option<OutOfBlocks> = None;
        for _ in 0..self.cmd_txs.len() {
            match self.recv_res()? {
                Res::Began(Err(e)) => begin_err = Some(e),
                Res::Began(Ok(())) => {}
                _ => {
                    self.poisoned = true;
                    return Err(WorkerError::Protocol("expected begin ack"));
                }
            }
        }
        if let Some(e) = begin_err {
            return Err(WorkerError::OutOfBlocks(e));
        }

        let h = self.replicated.config().hidden_size;
        let layers = self.replicated.config().num_layers;
        let total_q: usize = segments.iter().map(|s| s.tokens.len()).sum();
        {
            use pensieve_obs::Recorder as _;
            if self.recorder.enabled() {
                self.recorder.record(pensieve_obs::TraceEvent::TpPass {
                    at: pensieve_model::SimTime::ZERO,
                    pass: self.pass_count,
                    conv,
                    query_tokens: total_q,
                    shards: self.cmd_txs.len(),
                });
            }
            self.pass_count += 1;
        }
        let mut x = Matrix::zeros(total_q, h);
        let mut row = 0;
        for seg in segments {
            for (j, &tok) in seg.tokens.iter().enumerate() {
                x.row_mut(row)
                    .copy_from_slice(&self.replicated.embed_token(tok, seg.start_pos + j));
                row += 1;
            }
        }
        for l in 0..layers {
            let xn = Arc::new(self.replicated.norm1(l, &x));
            self.broadcast(|| Cmd::AttnPartial {
                layer: l,
                xn: Arc::clone(&xn),
            })?;
            let acc = self.collect_partials(total_q, h)?;
            for (xv, av) in x.as_mut_slice().iter_mut().zip(acc.as_slice()) {
                *xv += av;
            }
            let xn = Arc::new(self.replicated.norm2(l, &x));
            self.broadcast(|| Cmd::MlpPartial {
                layer: l,
                xn: Arc::clone(&xn),
            })?;
            let acc = self.collect_partials(total_q, h)?;
            for (xv, av) in x.as_mut_slice().iter_mut().zip(acc.as_slice()) {
                *xv += av;
            }
        }
        let hidden = Arc::new(self.replicated.final_norm(x.row(total_q - 1)));
        self.broadcast(|| Cmd::LmHead {
            hidden: Arc::clone(&hidden),
        })?;
        let n = self.cmd_txs.len();
        let mut slices: Vec<Option<Vec<f32>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.recv_res()? {
                Res::Logits(idx, v) => slices[idx] = Some(v),
                _ => {
                    self.poisoned = true;
                    return Err(WorkerError::Protocol("expected logits"));
                }
            }
        }
        let mut logits = Vec::with_capacity(self.replicated.config().vocab_size);
        for s in slices {
            let Some(s) = s else {
                self.poisoned = true;
                return Err(WorkerError::Protocol("duplicate shard logits"));
            };
            logits.extend(s);
        }
        Ok(logits)
    }

    /// Serves one conversation turn with greedy decoding, like
    /// [`FunctionalEngine::serve_turn`](crate::functional::FunctionalEngine::serve_turn)
    /// but across the worker fleet.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerError::OutOfBlocks`] when a worker pool is
    /// exhausted (the threaded engine does not implement eviction; size
    /// the pools for the workload) and
    /// [`WorkerError::ShardDisconnected`] when a worker thread died.
    /// The conversation's scheduler-side bookkeeping is only updated on
    /// success, so a failed turn does not corrupt later ones.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `max_new` is zero.
    pub fn serve_turn(
        &mut self,
        conv: u64,
        prompt: &[u32],
        max_new: usize,
    ) -> Result<Vec<u32>, WorkerError> {
        assert!(!prompt.is_empty() && max_new > 0);
        let start = self.contexts.get(&conv).copied().unwrap_or(0);
        // The previous turn's final token was emitted but never processed
        // (its KV is absent); prepend it, exactly like the "tail" the
        // serving engine recomputes with each new prompt. Peek rather
        // than remove: the tail is consumed only if the turn succeeds.
        let mut input = self.tails.get(&conv).cloned().unwrap_or_default();
        input.extend_from_slice(prompt);
        let input_len = input.len();
        let logits = self.forward_seq(
            conv,
            &[SegmentInput {
                tokens: input,
                start_pos: start,
            }],
        )?;
        let mut next = argmax(&logits) as u32;
        let mut generated = vec![next];
        let mut pos = start + input_len;
        for _ in 1..max_new {
            let logits = self.forward_seq(
                conv,
                &[SegmentInput {
                    tokens: vec![next],
                    start_pos: pos,
                }],
            )?;
            next = argmax(&logits) as u32;
            generated.push(next);
            pos += 1;
        }
        self.tails.remove(&conv);
        self.contexts.insert(conv, pos);
        self.tails.insert(conv, vec![next]);
        Ok(generated)
    }
}

impl Drop for ThreadedTpEngine {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The worker loop: executes scheduler commands against its shard.
fn worker_loop(idx: usize, shard: &mut ShardRunner, rx: &Receiver<Cmd>, res: &Sender<Res>) {
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::BeginPass { conv, segments } => Res::Began(shard.begin_pass(conv, &segments)),
            Cmd::AttnPartial { layer, xn } => Res::Partial(idx, shard.attn_partial(layer, &xn)),
            Cmd::MlpPartial { layer, xn } => Res::Partial(idx, shard.mlp_partial(layer, &xn)),
            Cmd::LmHead { hidden } => Res::Logits(idx, shard.lm_head_partial(&hidden)),
            Cmd::Shutdown => break,
        };
        if res.send(reply).is_err() {
            break; // Scheduler gone; exit quietly.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt(seed: u32, len: usize, vocab: u32) -> Vec<u32> {
        (0..len as u32)
            .map(|i| (seed * 41 + i * 13) % vocab)
            .collect()
    }

    /// Two worker threads produce exactly the tokens of the unsharded
    /// stateless reference, across multiple turns.
    #[test]
    fn threaded_tp_matches_dense_reference() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 91);
        let mut engine = ThreadedTpEngine::new(&model, 2, 4, 128);
        assert_eq!(engine.num_shards(), 2);
        let mut full: Vec<u32> = Vec::new();
        for turn in 0..3u32 {
            let p = prompt(turn, 6, cfg.vocab_size as u32);
            let got = engine.serve_turn(1, &p, 4).unwrap();
            full.extend_from_slice(&p);
            // Stateless reference decode on the original model.
            let mut ctx = full.clone();
            let mut expect = Vec::new();
            for _ in 0..4 {
                let logits = model.forward_dense(&ctx);
                let t = argmax(&logits) as u32;
                expect.push(t);
                ctx.push(t);
            }
            assert_eq!(got, expect, "turn {turn}");
            full.extend_from_slice(&got);
        }
    }

    /// Four OPT-family workers, interleaved conversations.
    #[test]
    fn four_workers_interleaved_conversations() {
        let cfg = ModelConfig::tiny_opt();
        let model = TinyModel::new_random(&cfg, 92);
        let mut engine = ThreadedTpEngine::new(&model, 4, 4, 128);
        let vocab = cfg.vocab_size as u32;
        let mut transcripts: HashMap<u64, Vec<u32>> = HashMap::new();
        for round in 0..2u32 {
            for conv in 1..=2u64 {
                let p = prompt(round * 2 + conv as u32, 5, vocab);
                let got = engine.serve_turn(conv, &p, 3).unwrap();
                let t = transcripts.entry(conv).or_default();
                t.extend_from_slice(&p);
                let mut ctx = t.clone();
                let mut expect = Vec::new();
                for _ in 0..3 {
                    let logits = model.forward_dense(&ctx);
                    let tok = argmax(&logits) as u32;
                    expect.push(tok);
                    ctx.push(tok);
                }
                assert_eq!(got, expect, "conv {conv} round {round}");
                t.extend_from_slice(&got);
            }
        }
    }

    /// The threaded engine is bit-identical to the single-threaded TP
    /// orchestrator (fixed-order all-reduce).
    #[test]
    fn threaded_matches_single_threaded_tp() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 93);
        let mut threaded = ThreadedTpEngine::new(&model, 2, 4, 64);
        let mut single = TpModel::new(&model, 2, 4, 64);
        let p = prompt(9, 7, cfg.vocab_size as u32);
        let seg = SegmentInput {
            tokens: p,
            start_pos: 0,
        };
        let a = threaded.forward_seq(5, std::slice::from_ref(&seg)).unwrap();
        let b = single.forward_seq(5, &[seg]).unwrap();
        assert_eq!(a, b, "fixed-order all-reduce must be bit-identical");
    }

    /// Intra-shard data parallelism (scoped worker pool inside each shard)
    /// must not change a single bit of the logits either.
    #[test]
    fn intra_threads_bit_identical() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 96);
        let p = prompt(4, 9, cfg.vocab_size as u32);
        let seg = SegmentInput {
            tokens: p,
            start_pos: 0,
        };
        let mut serial = ThreadedTpEngine::new(&model, 2, 4, 64);
        let base = serial.forward_seq(5, std::slice::from_ref(&seg)).unwrap();
        for intra in [2usize, 4] {
            let mut engine = ThreadedTpEngine::with_intra_threads(&model, 2, 4, 64, intra);
            let got = engine.forward_seq(5, std::slice::from_ref(&seg)).unwrap();
            assert_eq!(got, base, "intra_threads={intra}");
        }
    }

    /// A dead worker shard surfaces as a typed error, never a hang, and
    /// poisons the fleet fail-stop.
    #[test]
    fn dead_shard_yields_typed_error_not_hang() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 94);
        let mut engine = ThreadedTpEngine::new(&model, 2, 4, 64);
        // A healthy turn first.
        let p = prompt(3, 5, cfg.vocab_size as u32);
        engine.serve_turn(1, &p, 2).unwrap();
        assert!(!engine.is_poisoned());
        // Crash shard 1, then try again.
        engine.kill_shard(1);
        let err = engine.serve_turn(1, &p, 2).unwrap_err();
        assert!(
            matches!(err, WorkerError::ShardDisconnected { .. }),
            "got {err}"
        );
        assert!(engine.is_poisoned());
        // Every later call fails fast with the same typed error.
        let err2 = engine
            .forward_seq(
                1,
                &[SegmentInput {
                    tokens: vec![0],
                    start_pos: 0,
                }],
            )
            .unwrap_err();
        assert_eq!(err2, WorkerError::ShardDisconnected { shard: None });
    }

    /// Exhausting the paged pool is a typed, non-poisoning error.
    #[test]
    fn pool_exhaustion_is_typed_and_recoverable() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 95);
        // Tiny pool: 4 blocks of 4 tokens per shard.
        let mut engine = ThreadedTpEngine::new(&model, 2, 4, 4);
        let p = prompt(1, 64, cfg.vocab_size as u32);
        let err = engine.serve_turn(1, &p, 1).unwrap_err();
        assert!(matches!(err, WorkerError::OutOfBlocks(_)), "got {err}");
        // The fleet is not poisoned: the workers are alive and later
        // calls keep returning typed errors instead of hanging (the
        // failed pass's blocks stay installed, so the pool stays full).
        assert!(!engine.is_poisoned());
        let small = prompt(2, 3, cfg.vocab_size as u32);
        let err = engine.serve_turn(2, &small, 1).unwrap_err();
        assert!(matches!(err, WorkerError::OutOfBlocks(_)), "got {err}");
    }
}
