//! Threaded tensor-parallel execution: one worker thread per GPU shard
//! (paper Figure 7 and §4.4.2).
//!
//! Pensieve's architecture is a single scheduler plus one worker per GPU;
//! each worker owns its model partition and its slice of the KV cache and
//! executes the scheduler's plan. [`ThreadedTpEngine`] reproduces that
//! structure with real threads: each worker owns a
//! [`ShardRunner`] (weight slices +
//! paged KV pool + block tables) and communicates with the scheduler over
//! crossbeam channels; the scheduler performs the replicated work
//! (embeddings, norms, residuals) and the all-reduce summations between
//! the column- and row-parallel halves of every layer.
//!
//! Partial sums are accumulated in fixed shard order, so results are
//! deterministic and bit-identical to the single-threaded
//! [`TpModel`].

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use pensieve_kernels::model::{SegmentInput, TinyModel};
use pensieve_kernels::ops::argmax;
use pensieve_kernels::paged::OutOfBlocks;
use pensieve_kernels::tp::{ReplicatedWeights, ShardRunner, TpModel};
use pensieve_kernels::Matrix;
use pensieve_model::ModelConfig;

/// Scheduler-to-worker commands.
enum Cmd {
    BeginPass {
        conv: u64,
        segments: Vec<(usize, usize)>,
    },
    AttnPartial {
        layer: usize,
        xn: Arc<Matrix>,
    },
    MlpPartial {
        layer: usize,
        xn: Arc<Matrix>,
    },
    LmHead {
        hidden: Arc<Vec<f32>>,
    },
    Shutdown,
}

/// Worker-to-scheduler responses, tagged with the worker's shard index.
enum Res {
    Began(Result<(), OutOfBlocks>),
    Partial(usize, Matrix),
    Logits(usize, Vec<f32>),
}

/// A multi-worker tensor-parallel serving engine over real threads.
pub struct ThreadedTpEngine {
    replicated: ReplicatedWeights,
    cmd_txs: Vec<Sender<Cmd>>,
    res_rx: Receiver<Res>,
    handles: Vec<JoinHandle<()>>,
    /// Context length per conversation (scheduler-side bookkeeping).
    contexts: HashMap<u64, usize>,
    /// Each conversation's not-yet-processed final token from its
    /// previous turn.
    tails: HashMap<u64, Vec<u32>>,
}

impl ThreadedTpEngine {
    /// Shards `model` across `num_shards` worker threads.
    ///
    /// # Panics
    ///
    /// Panics under the same divisibility conditions as
    /// [`TpModel::new`].
    #[must_use]
    pub fn new(
        model: &TinyModel,
        num_shards: usize,
        block_size: usize,
        blocks_per_shard: usize,
    ) -> Self {
        let (replicated, shards) =
            TpModel::new(model, num_shards, block_size, blocks_per_shard).into_parts();
        let (res_tx, res_rx) = unbounded();
        let mut cmd_txs = Vec::with_capacity(num_shards);
        let mut handles = Vec::with_capacity(num_shards);
        for (idx, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx): (Sender<Cmd>, Receiver<Cmd>) = unbounded();
            let res_tx = res_tx.clone();
            cmd_txs.push(tx);
            handles.push(std::thread::spawn(move || {
                worker_loop(idx, &mut shard, &rx, &res_tx)
            }));
        }
        ThreadedTpEngine {
            replicated,
            cmd_txs,
            res_rx,
            handles,
            contexts: HashMap::new(),
            tails: HashMap::new(),
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.cmd_txs.len()
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        self.replicated.config()
    }

    fn broadcast(&self, mut make: impl FnMut() -> Cmd) {
        for tx in &self.cmd_txs {
            tx.send(make()).expect("worker alive");
        }
    }

    /// Collects one tagged partial from every worker, summing into shard
    /// order for determinism.
    fn collect_partials(&self, tokens: usize, width: usize) -> Matrix {
        let n = self.cmd_txs.len();
        let mut by_shard: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.res_rx.recv().expect("worker alive") {
                Res::Partial(idx, m) => by_shard[idx] = Some(m),
                _ => unreachable!("protocol violation: expected partial"),
            }
        }
        let mut acc = Matrix::zeros(tokens, width);
        for m in by_shard.into_iter().map(|m| m.expect("all shards replied")) {
            for (a, p) in acc.as_mut_slice().iter_mut().zip(m.as_slice()) {
                *a += p;
            }
        }
        acc
    }

    /// One tensor-parallel forward pass over the worker fleet, returning
    /// the last token's logits. Segment semantics match
    /// [`TinyModel::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if any worker's KV pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or a worker thread died.
    pub fn forward_seq(
        &mut self,
        conv: u64,
        segments: &[SegmentInput],
    ) -> Result<Vec<f32>, OutOfBlocks> {
        assert!(!segments.is_empty());
        let shapes: Vec<(usize, usize)> = segments
            .iter()
            .map(|s| (s.start_pos, s.tokens.len()))
            .collect();
        self.broadcast(|| Cmd::BeginPass {
            conv,
            segments: shapes.clone(),
        });
        let mut begin_err = None;
        for _ in 0..self.cmd_txs.len() {
            match self.res_rx.recv().expect("worker alive") {
                Res::Began(Err(e)) => begin_err = Some(e),
                Res::Began(Ok(())) => {}
                _ => unreachable!("protocol violation: expected begin ack"),
            }
        }
        if let Some(e) = begin_err {
            return Err(e);
        }

        let h = self.replicated.config().hidden_size;
        let layers = self.replicated.config().num_layers;
        let total_q: usize = segments.iter().map(|s| s.tokens.len()).sum();
        let mut x = Matrix::zeros(total_q, h);
        let mut row = 0;
        for seg in segments {
            for (j, &tok) in seg.tokens.iter().enumerate() {
                x.row_mut(row)
                    .copy_from_slice(&self.replicated.embed_token(tok, seg.start_pos + j));
                row += 1;
            }
        }
        for l in 0..layers {
            let xn = Arc::new(self.replicated.norm1(l, &x));
            self.broadcast(|| Cmd::AttnPartial {
                layer: l,
                xn: Arc::clone(&xn),
            });
            let acc = self.collect_partials(total_q, h);
            for (xv, av) in x.as_mut_slice().iter_mut().zip(acc.as_slice()) {
                *xv += av;
            }
            let xn = Arc::new(self.replicated.norm2(l, &x));
            self.broadcast(|| Cmd::MlpPartial {
                layer: l,
                xn: Arc::clone(&xn),
            });
            let acc = self.collect_partials(total_q, h);
            for (xv, av) in x.as_mut_slice().iter_mut().zip(acc.as_slice()) {
                *xv += av;
            }
        }
        let hidden = Arc::new(self.replicated.final_norm(x.row(total_q - 1)));
        self.broadcast(|| Cmd::LmHead {
            hidden: Arc::clone(&hidden),
        });
        let n = self.cmd_txs.len();
        let mut slices: Vec<Option<Vec<f32>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.res_rx.recv().expect("worker alive") {
                Res::Logits(idx, v) => slices[idx] = Some(v),
                _ => unreachable!("protocol violation: expected logits"),
            }
        }
        let mut logits = Vec::with_capacity(self.replicated.config().vocab_size);
        for s in slices {
            logits.extend(s.expect("all shards replied"));
        }
        Ok(logits)
    }

    /// Serves one conversation turn with greedy decoding, like
    /// [`FunctionalEngine::serve_turn`](crate::functional::FunctionalEngine::serve_turn)
    /// but across the worker fleet.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty, `max_new` is zero, or a worker pool is
    /// exhausted (the threaded engine does not implement eviction; size
    /// the pools for the workload).
    pub fn serve_turn(&mut self, conv: u64, prompt: &[u32], max_new: usize) -> Vec<u32> {
        assert!(!prompt.is_empty() && max_new > 0);
        let start = self.contexts.get(&conv).copied().unwrap_or(0);
        // The previous turn's final token was emitted but never processed
        // (its KV is absent); prepend it, exactly like the "tail" the
        // serving engine recomputes with each new prompt.
        let mut input = self.tails.remove(&conv).unwrap_or_default();
        input.extend_from_slice(prompt);
        let input_len = input.len();
        let logits = self
            .forward_seq(
                conv,
                &[SegmentInput {
                    tokens: input,
                    start_pos: start,
                }],
            )
            .expect("pool exhausted: size blocks_per_shard for the workload");
        let mut next = argmax(&logits) as u32;
        let mut generated = vec![next];
        let mut pos = start + input_len;
        for _ in 1..max_new {
            let logits = self
                .forward_seq(
                    conv,
                    &[SegmentInput {
                        tokens: vec![next],
                        start_pos: pos,
                    }],
                )
                .expect("pool exhausted: size blocks_per_shard for the workload");
            next = argmax(&logits) as u32;
            generated.push(next);
            pos += 1;
        }
        self.contexts.insert(conv, pos);
        self.tails.insert(conv, vec![next]);
        generated
    }
}

impl Drop for ThreadedTpEngine {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The worker loop: executes scheduler commands against its shard.
fn worker_loop(idx: usize, shard: &mut ShardRunner, rx: &Receiver<Cmd>, res: &Sender<Res>) {
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::BeginPass { conv, segments } => Res::Began(shard.begin_pass(conv, &segments)),
            Cmd::AttnPartial { layer, xn } => Res::Partial(idx, shard.attn_partial(layer, &xn)),
            Cmd::MlpPartial { layer, xn } => Res::Partial(idx, shard.mlp_partial(layer, &xn)),
            Cmd::LmHead { hidden } => Res::Logits(idx, shard.lm_head_partial(&hidden)),
            Cmd::Shutdown => break,
        };
        if res.send(reply).is_err() {
            break; // Scheduler gone; exit quietly.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt(seed: u32, len: usize, vocab: u32) -> Vec<u32> {
        (0..len as u32)
            .map(|i| (seed * 41 + i * 13) % vocab)
            .collect()
    }

    /// Two worker threads produce exactly the tokens of the unsharded
    /// stateless reference, across multiple turns.
    #[test]
    fn threaded_tp_matches_dense_reference() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 91);
        let mut engine = ThreadedTpEngine::new(&model, 2, 4, 128);
        assert_eq!(engine.num_shards(), 2);
        let mut full: Vec<u32> = Vec::new();
        for turn in 0..3u32 {
            let p = prompt(turn, 6, cfg.vocab_size as u32);
            let got = engine.serve_turn(1, &p, 4);
            full.extend_from_slice(&p);
            // Stateless reference decode on the original model.
            let mut ctx = full.clone();
            let mut expect = Vec::new();
            for _ in 0..4 {
                let logits = model.forward_dense(&ctx);
                let t = argmax(&logits) as u32;
                expect.push(t);
                ctx.push(t);
            }
            assert_eq!(got, expect, "turn {turn}");
            full.extend_from_slice(&got);
        }
    }

    /// Four OPT-family workers, interleaved conversations.
    #[test]
    fn four_workers_interleaved_conversations() {
        let cfg = ModelConfig::tiny_opt();
        let model = TinyModel::new_random(&cfg, 92);
        let mut engine = ThreadedTpEngine::new(&model, 4, 4, 128);
        let vocab = cfg.vocab_size as u32;
        let mut transcripts: HashMap<u64, Vec<u32>> = HashMap::new();
        for round in 0..2u32 {
            for conv in 1..=2u64 {
                let p = prompt(round * 2 + conv as u32, 5, vocab);
                let got = engine.serve_turn(conv, &p, 3);
                let t = transcripts.entry(conv).or_default();
                t.extend_from_slice(&p);
                let mut ctx = t.clone();
                let mut expect = Vec::new();
                for _ in 0..3 {
                    let logits = model.forward_dense(&ctx);
                    let tok = argmax(&logits) as u32;
                    expect.push(tok);
                    ctx.push(tok);
                }
                assert_eq!(got, expect, "conv {conv} round {round}");
                t.extend_from_slice(&got);
            }
        }
    }

    /// The threaded engine is bit-identical to the single-threaded TP
    /// orchestrator (fixed-order all-reduce).
    #[test]
    fn threaded_matches_single_threaded_tp() {
        let cfg = ModelConfig::tiny_llama();
        let model = TinyModel::new_random(&cfg, 93);
        let mut threaded = ThreadedTpEngine::new(&model, 2, 4, 64);
        let mut single = TpModel::new(&model, 2, 4, 64);
        let p = prompt(9, 7, cfg.vocab_size as u32);
        let seg = SegmentInput {
            tokens: p,
            start_pos: 0,
        };
        let a = threaded.forward_seq(5, std::slice::from_ref(&seg)).unwrap();
        let b = single.forward_seq(5, &[seg]).unwrap();
        assert_eq!(a, b, "fixed-order all-reduce must be bit-identical");
    }
}
